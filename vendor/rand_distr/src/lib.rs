//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Implements the distributions this workspace samples — [`Normal`],
//! [`LogNormal`], [`Exp`], [`Poisson`] and [`StandardNormal`] — on top of
//! the vendored `rand` crate. Algorithms are textbook (Box–Muller,
//! inversion, exponential inter-arrival counting) and deterministic for a
//! seeded RNG.

use std::fmt;

pub use rand::distributions::Distribution;
use rand::Rng;
use std::marker::PhantomData;

/// Uniform draw in [0, 1) usable with unsized `R` (unlike `Rng::gen`).
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Alias matching `rand_distr::NormalError`.
pub type NormalError = ParamError;
/// Alias matching `rand_distr::ExpError`.
pub type ExpError = ParamError;
/// Alias matching `rand_distr::PoissonError`.
pub type PoissonError = ParamError;

/// Draws one standard-normal variate via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1: f64 = unit_f64(rng).max(f64::MIN_POSITIVE);
    let u2: f64 = unit_f64(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal(rng)
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Fails if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("std_dev must be finite and non-negative"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F = f64> {
    mu: f64,
    sigma: f64,
    _float: PhantomData<F>,
}

impl LogNormal<f64> {
    /// Creates a log-normal distribution from the underlying normal's
    /// parameters.
    ///
    /// # Errors
    ///
    /// Fails if `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError("sigma must be finite and non-negative"));
        }
        Ok(LogNormal {
            mu,
            sigma,
            _float: PhantomData,
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// The exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    ///
    /// Fails if `lambda` is not positive and finite.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError("lambda must be positive and finite"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion: -ln(1 - U) / lambda, with U in [0, 1).
        -(1.0 - unit_f64(rng)).ln() / self.lambda
    }
}

/// The Poisson distribution with mean `lambda`. Samples are returned as
/// `f64` to match `rand_distr` 0.4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Fails if `lambda` is not positive and finite.
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError("lambda must be positive and finite"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Count unit-rate exponential inter-arrivals in a window of length
        // lambda. Exact, numerically safe for every lambda, and O(lambda) —
        // fine for the arrival rates this workspace simulates.
        let mut t = 0.0;
        let mut k: u64 = 0;
        loop {
            t += -(1.0 - unit_f64(rng)).ln();
            if t >= self.lambda {
                return k as f64;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let s: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&s);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = Exp::new(4.0).unwrap();
        let s: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&s);
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = SmallRng::seed_from_u64(3);
        for lambda in [0.5, 3.0, 25.0] {
            let d = Poisson::new(lambda).unwrap();
            let s: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
            let (mean, _) = moments(&s);
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn lognormal_is_exp_of_normal() {
        let mut rng = SmallRng::seed_from_u64(4);
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let s: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(s.iter().all(|&x| x > 0.0));
        let log_mean = s.iter().map(|x| x.ln()).sum::<f64>() / s.len() as f64;
        assert!(log_mean.abs() < 0.02, "log mean {log_mean}");
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
    }
}
