//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! serde crate.
//!
//! No `syn`/`quote`: the input item is parsed with a small hand-rolled
//! walker over [`proc_macro::TokenTree`]s and the impl is generated as a
//! string. Supports what this workspace derives on:
//!
//! * named-field structs, newtype structs, tuple structs, unit structs
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, matching real serde_json's JSON conventions)
//! * field attributes `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(skip)]`, `#[serde(skip, default = "path")]` and
//!   `#[serde(with = "module")]`
//!
//! Generics are intentionally unsupported; the workspace derives only on
//! concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Per-field serde configuration parsed from `#[serde(...)]`.
#[derive(Default, Clone)]
struct FieldAttrs {
    /// `#[serde(skip)]`: never serialized, rebuilt from a default.
    skip: bool,
    /// `#[serde(default)]` (`Some(None)`) or `#[serde(default = "path")]`
    /// (`Some(Some(path))`).
    default: Option<Option<String>>,
    /// `#[serde(with = "module")]`.
    with: Option<String>,
}

/// One struct or enum-variant field.
#[derive(Clone)]
struct Field {
    name: String,
    ty: String,
    attrs: FieldAttrs,
}

/// The shape of a struct body or an enum variant's payload.
#[derive(Clone)]
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => gen_struct_serialize(name, shape),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => gen_struct_deserialize(name, shape),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes (doc comments, other derives' helpers) are ignored.
    while is_attr_start(&tokens, i) {
        i += 2;
    }
    skip_visibility(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn is_attr_start(tokens: &[TokenTree], i: usize) -> bool {
    matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#')
        && matches!(tokens.get(i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Collects leading attributes at `i`, folding any `#[serde(...)]` contents
/// into a [`FieldAttrs`].
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while is_attr_start(tokens, *i) {
        if let TokenTree::Group(g) = &tokens[*i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_serde_args(args.stream(), &mut attrs);
                }
            }
        }
        *i += 2;
    }
    attrs
}

fn parse_serde_args(stream: TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: unexpected token in #[serde(...)]: {other}"),
        };
        i += 1;
        let mut value = None;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            match &tokens[i] {
                TokenTree::Literal(lit) => {
                    let s = lit.to_string();
                    value = Some(s.trim_matches('"').to_string());
                }
                other => panic!("serde_derive: expected string after `{key} =`, found {other}"),
            }
            i += 1;
        }
        match key.as_str() {
            "skip" => attrs.skip = true,
            "default" => attrs.default = Some(value),
            "with" => attrs.with = value,
            other => panic!("serde_derive (vendored): unsupported serde attribute `{other}`"),
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

/// Reads type tokens until a top-level comma, tracking `<`/`>` depth (angle
/// brackets are plain puncts in a token stream).
fn take_type(tokens: &[TokenTree], i: &mut usize) -> String {
    let mut depth = 0i32;
    let mut parts: Vec<String> = Vec::new();
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if depth == 0 => break,
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        parts.push(tok.to_string());
        *i += 1;
    }
    parts.join(" ")
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        let ty = take_type(&tokens, &mut i);
        fields.push(Field { name, ty, attrs });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut index = 0usize;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let ty = take_type(&tokens, &mut i);
        fields.push(Field {
            name: index.to_string(),
            ty,
            attrs,
        });
        index += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip a discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            loop {
                match tokens.get(i) {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                    _ => i += 1,
                }
            }
        }
        variants.push(Variant { name, shape });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

const ALLOWS: &str = "#[automatically_derived]\n#[allow(clippy::all, clippy::pedantic, clippy::nursery, unused_mut, unused_variables, unused_imports)]\n";

/// A `Serialize` wrapper expression for one field: plain fields serialize by
/// reference, `with = "m"` fields go through a generated adapter struct.
///
/// `expr` must be a `&FieldType` expression; returns (prelude items, expr).
fn ser_field_expr(field: &Field, expr: &str, idx: usize) -> (String, String) {
    match &field.attrs.with {
        Some(module) => {
            let wrapper = format!("__SerdeWith{idx}");
            let prelude = format!(
                "struct {wrapper}<'a>(&'a {ty});\n\
                 impl<'a> serde::Serialize for {wrapper}<'a> {{\n\
                     fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                         {module}::serialize(self.0, serializer)\n\
                     }}\n\
                 }}\n",
                ty = field.ty,
            );
            (prelude, format!("&{wrapper}({expr})"))
        }
        None => (String::new(), expr.to_string()),
    }
}

fn gen_struct_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "serializer.serialize_unit()".to_string(),
        Shape::Tuple(fields) if fields.len() == 1 => {
            format!("serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Shape::Tuple(fields) => {
            let mut out = String::new();
            out.push_str(&format!(
                "let mut state = serializer.serialize_tuple({})?;\n",
                fields.len()
            ));
            for f in fields {
                out.push_str(&format!(
                    "serde::ser::SerializeSeq::serialize_element(&mut state, &self.{})?;\n",
                    f.name
                ));
            }
            out.push_str("serde::ser::SerializeSeq::end(state)");
            out
        }
        Shape::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
            let mut out = String::new();
            out.push_str(&format!(
                "let mut state = serializer.serialize_struct(\"{name}\", {})?;\n",
                live.len()
            ));
            for (idx, f) in live.iter().enumerate() {
                let (prelude, expr) = ser_field_expr(f, &format!("&self.{}", f.name), idx);
                out.push_str(&prelude);
                out.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut state, \"{}\", {expr})?;\n",
                    f.name
                ));
            }
            out.push_str("serde::ser::SerializeStruct::end(state)");
            out
        }
    };
    format!(
        "{ALLOWS}impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (vi, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => serializer.serialize_unit_variant(\"{name}\", {vi}, \"{vname}\"),\n"
                ));
            }
            Shape::Tuple(fields) if fields.len() == 1 => {
                arms.push_str(&format!(
                    "{name}::{vname}(inner) => serializer.serialize_newtype_variant(\"{name}\", {vi}, \"{vname}\", inner),\n"
                ));
            }
            Shape::Tuple(fields) => {
                let binders: Vec<String> = (0..fields.len()).map(|k| format!("__f{k}")).collect();
                let mut body = format!(
                    "let mut state = serializer.serialize_tuple_variant(\"{name}\", {vi}, \"{vname}\", {})?;\n",
                    fields.len()
                );
                for b in &binders {
                    body.push_str(&format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut state, {b})?;\n"
                    ));
                }
                body.push_str("serde::ser::SerializeTupleVariant::end(state)");
                arms.push_str(&format!(
                    "{name}::{vname}({binders_pat}) => {{ {body} }}\n",
                    binders_pat = binders.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut body = format!(
                    "let mut state = serializer.serialize_struct_variant(\"{name}\", {vi}, \"{vname}\", {})?;\n",
                    fields.len()
                );
                for (idx, f) in fields.iter().enumerate() {
                    let (prelude, expr) = ser_field_expr(f, &f.name, idx);
                    body.push_str(&prelude);
                    body.push_str(&format!(
                        "serde::ser::SerializeStructVariant::serialize_field(&mut state, \"{}\", {expr})?;\n",
                        f.name
                    ));
                }
                body.push_str("serde::ser::SerializeStructVariant::end(state)");
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{ {body} }}\n",
                    pat.join(", ")
                ));
            }
        }
    }
    format!(
        "{ALLOWS}impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Emits `let <binder>: <ty> = ...;` pulling one named field out of
/// `fields`, honouring skip/default/with.
fn de_named_field(f: &Field, binder: &str) -> String {
    let name = &f.name;
    let ty = &f.ty;
    if f.attrs.skip {
        let init = match &f.attrs.default {
            Some(Some(path)) => format!("{path}()"),
            _ => "Default::default()".to_string(),
        };
        return format!("let {binder}: {ty} = {init};\n");
    }
    let from_value = match &f.attrs.with {
        Some(module) => {
            format!("{module}::deserialize(serde::value::ValueDeserializer::<D::Error>::new(__v))?")
        }
        None => "serde::value::from_value::<_, D::Error>(__v)?".to_string(),
    };
    let missing = match &f.attrs.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "Default::default()".to_string(),
        None => format!("return Err(serde::de::Error::missing_field(\"{name}\"))"),
    };
    format!(
        "let {binder}: {ty} = match serde::de::opt_field(&mut fields, \"{name}\") {{\n\
             Some(__v) => {from_value},\n\
             None => {missing},\n\
         }};\n"
    )
}

fn gen_struct_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("let _ = deserializer.take_value()?;\nOk({name})"),
        Shape::Tuple(fields) if fields.len() == 1 => format!(
            "serde::value::from_value::<{ty}, D::Error>(deserializer.take_value()?).map({name})",
            ty = fields[0].ty
        ),
        Shape::Tuple(fields) => {
            let mut out = format!(
                "let items = serde::de::expect_array::<D::Error>(deserializer.take_value()?, \"tuple struct {name}\")?;\n\
                 if items.len() != {n} {{\n\
                     return Err(serde::de::Error::custom(\"wrong tuple struct length\"));\n\
                 }}\n\
                 let mut iter = items.into_iter();\n",
                n = fields.len()
            );
            let mut ctor = Vec::new();
            for (k, f) in fields.iter().enumerate() {
                out.push_str(&format!(
                    "let __f{k}: {ty} = serde::value::from_value::<_, D::Error>(iter.next().expect(\"length checked\"))?;\n",
                    ty = f.ty
                ));
                ctor.push(format!("__f{k}"));
            }
            out.push_str(&format!("Ok({name}({}))", ctor.join(", ")));
            out
        }
        Shape::Named(fields) => {
            let mut out = format!(
                "let mut fields = serde::de::expect_object::<D::Error>(deserializer.take_value()?, \"struct {name}\")?;\n"
            );
            let mut ctor = Vec::new();
            for f in fields {
                out.push_str(&de_named_field(f, &format!("__v_{}", f.name)));
                ctor.push(format!("{}: __v_{}", f.name, f.name));
            }
            out.push_str(&format!("Ok({name} {{ {} }})", ctor.join(", ")));
            out
        }
    };
    format!(
        "{ALLOWS}impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => {
                unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
            }
            Shape::Tuple(fields) if fields.len() == 1 => {
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => serde::value::from_value::<{ty}, D::Error>(__inner).map({name}::{vname}),\n",
                    ty = fields[0].ty
                ));
            }
            Shape::Tuple(fields) => {
                let mut body = format!(
                    "let items = serde::de::expect_array::<D::Error>(__inner, \"variant {vname}\")?;\n\
                     if items.len() != {n} {{\n\
                         return Err(serde::de::Error::custom(\"wrong tuple variant length\"));\n\
                     }}\n\
                     let mut iter = items.into_iter();\n",
                    n = fields.len()
                );
                let mut ctor = Vec::new();
                for (k, f) in fields.iter().enumerate() {
                    body.push_str(&format!(
                        "let __f{k}: {ty} = serde::value::from_value::<_, D::Error>(iter.next().expect(\"length checked\"))?;\n",
                        ty = f.ty
                    ));
                    ctor.push(format!("__f{k}"));
                }
                body.push_str(&format!("Ok({name}::{vname}({}))", ctor.join(", ")));
                tagged_arms.push_str(&format!("\"{vname}\" => {{ {body} }}\n"));
            }
            Shape::Named(fields) => {
                let mut body = format!(
                    "let mut fields = serde::de::expect_object::<D::Error>(__inner, \"variant {vname}\")?;\n"
                );
                let mut ctor = Vec::new();
                for f in fields {
                    body.push_str(&de_named_field(f, &format!("__v_{}", f.name)));
                    ctor.push(format!("{}: __v_{}", f.name, f.name));
                }
                body.push_str(&format!("Ok({name}::{vname} {{ {} }})", ctor.join(", ")));
                tagged_arms.push_str(&format!("\"{vname}\" => {{ {body} }}\n"));
            }
        }
    }
    format!(
        "{ALLOWS}impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 match deserializer.take_value()? {{\n\
                     serde::value::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(serde::de::Error::custom(format!(\n\
                             \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                     }},\n\
                     serde::value::Value::Object(mut __fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = __fields.remove(0);\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => Err(serde::de::Error::custom(format!(\n\
                                 \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                         }}\n\
                     }},\n\
                     __other => Err(serde::de::Error::custom(format!(\n\
                         \"invalid value for enum {name}: {{}}\", __other.kind()))),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
