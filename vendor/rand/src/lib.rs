//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors a minimal, dependency-free implementation of exactly
//! the `rand` 0.8 API surface it uses: [`Rng`], [`SeedableRng`],
//! [`rngs::SmallRng`], [`seq::SliceRandom`] and the
//! [`distributions::Distribution`] trait.
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ seeded through
//! SplitMix64, so seeded streams are deterministic across runs and
//! platforms (which the repo's reproducibility tests rely on). Streams are
//! *not* bit-compatible with upstream `rand`; nothing in this repo depends
//! on upstream streams.

use std::ops::{Range, RangeInclusive};

pub mod distributions {
    use super::RngCore;

    /// Types that can produce random values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a primitive: uniform over the full
    /// domain for integers, uniform on `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Helper: uniform integer in `[0, bound)` by widening multiply
    /// (Lemire's method, without the rejection refinement — the tiny bias
    /// is irrelevant for simulation workloads).
    pub(crate) fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// The low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors upstream's trait
/// of the same name so `SampleRange` can be one generic impl per range
/// shape — which is what lets float-literal ranges (`0.0..30.0`) infer.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                let off = distributions::uniform_below(rng, span);
                (lo as i128 + off as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-domain u64/i64 range: any draw is valid.
                    return rng.next_u64() as $t;
                }
                let off = distributions::uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u: f64 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = (lo as f64 + u * (hi as f64 - lo as f64)) as $t;
                // Rounding can land exactly on `hi`; clamp back inside.
                if v >= hi { lo } else { v }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u: f64 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + u * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of `T` from its [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` (the only constructor this
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for external persistence (e.g.
        /// training checkpoints). Restoring via [`SmallRng::from_state`]
        /// resumes the stream exactly where it left off.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs an RNG from a state captured by
        /// [`SmallRng::state`]. An all-zero state (invalid for xoshiro) is
        /// replaced with the same fallback `from_seed` uses.
        #[must_use]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::distributions::uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::distributions::uniform_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        use super::RngCore;
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        use super::RngCore;
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // All-zero state must map onto the same valid fallback as from_seed.
        assert_eq!(SmallRng::from_state([0; 4]), SmallRng::from_seed([0; 32]));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(0..7);
            assert!(n < 7);
            let m: u64 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&m));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should permute");
    }
}
