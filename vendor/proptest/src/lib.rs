//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, strategies for
//! numeric ranges and tuples, [`collection::vec`], [`sample::subsequence`],
//! the [`proptest!`] macro and the `prop_assert*` family. Cases are
//! generated from a deterministic per-test RNG; there is **no shrinking** —
//! failures report the exact failing inputs instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRunner,
    };
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs did not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    #[must_use]
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// Creates a rejection.
    #[must_use]
    pub fn reject(msg: impl fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Maximum rejected cases before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Generates values for property tests.
///
/// Unlike upstream there is no value tree: strategies produce plain values
/// and failing cases are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it,
    /// and draws from that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut SmallRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<V> {
    inner: Box<dyn ErasedStrategy<V>>,
}

trait ErasedStrategy<V> {
    fn erased_generate(&self, rng: &mut SmallRng) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut SmallRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        self.inner.erased_generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut SmallRng) -> V {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// A collection-size specification: an exact size or a (half-open or
/// inclusive) range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut SmallRng) -> usize {
        if self.min >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, SmallRng, Strategy};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size` (`usize` for an exact length, or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Rng, SizeRange, SmallRng, Strategy};

    /// See [`subsequence`].
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<T> {
            let n = self.items.len();
            let len = self.size.pick(rng).min(n);
            // Floyd's algorithm would avoid the scratch vec, but n is tiny
            // in tests: partial Fisher–Yates then restore index order.
            let mut indices: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = rng.gen_range(i..n);
                indices.swap(i, j);
            }
            let mut chosen = indices[..len].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }

    /// Generates order-preserving subsequences of `items` whose length lies
    /// in `size`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }
}

/// Drives one property: generates inputs and evaluates the body.
pub struct TestRunner {
    config: ProptestConfig,
    rng: SmallRng,
}

impl TestRunner {
    /// Creates a runner. The RNG seed is fixed so test runs are
    /// deterministic.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: SmallRng::seed_from_u64(0x70726f70_74657374),
        }
    }

    /// Runs the property against `config.cases` generated inputs.
    ///
    /// # Errors
    ///
    /// Returns the first failure, annotated with the generated input, or an
    /// error when too many inputs were rejected.
    pub fn run<S: Strategy, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
    where
        S::Value: Clone + fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let input = strategy.generate(&mut self.rng);
            match test(input.clone()) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "too many prop_assume rejections ({rejected}) after {passed} cases"
                        ));
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    return Err(format!(
                        "property failed after {passed} passing cases: {msg}\ninput: {input:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Declares property tests. Mirrors upstream's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($config);
                let result = runner.run(&($($strategy,)+), |($($pat,)+)| {
                    $body
                    Ok(())
                });
                if let Err(message) = result {
                    panic!("{}", message);
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not panicking)
/// when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(200));
        runner
            .run(&(0u64..10, -2.0f64..2.0), |(n, x)| {
                if n >= 10 {
                    return Err(TestCaseError::fail("n out of range"));
                }
                if !(-2.0..2.0).contains(&x) {
                    return Err(TestCaseError::fail("x out of range"));
                }
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(50));
        let err = runner
            .run(&(0u64..100,), |(n,)| {
                if n > 90 {
                    Err(TestCaseError::fail("too big"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.contains("too big"), "{err}");
        assert!(err.contains("input:"), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_size_range(
            v in proptest::collection::vec(0u32..5, 2..7),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn subsequence_preserves_order(
            sub in proptest::sample::subsequence((0..20).collect::<Vec<i32>>(), 0..=20),
        ) {
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn flat_map_and_assume_work(
            (n, k) in (1usize..10).prop_flat_map(|n| (Just(n), 0usize..10)),
        ) {
            prop_assume!(k < n * 10);
            prop_assert!(n >= 1 && k < n * 10);
        }
    }

    // The macro refers to the crate as `$crate`, but the doctest-style usage
    // in dependent crates says `proptest::collection::vec`; mimic that here.
    use crate as proptest;
    use crate::Just;
}
