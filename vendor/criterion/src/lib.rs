//! Offline vendored stand-in for the `criterion` crate.
//!
//! Keeps the criterion 0.5 API shape this workspace's benches use —
//! [`Criterion::benchmark_group`], `group.sample_size(..)`,
//! `group.bench_function(name, |b| b.iter(..))`, [`black_box`],
//! [`criterion_group!`]/[`criterion_main!`] — over a simple
//! warmup-then-sample timing loop. Results print per benchmark
//! (mean/median/min per iteration) and append machine-readable JSON lines
//! to `target/bench-results.jsonl` for downstream tooling.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark. The closure receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            samples,
            per_iter_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.group, id);
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(&mut self) {}
}

/// Times a closure under test.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`: warms up, then records `samples` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibration of iterations per batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for measurement_time split across the samples, ≥1 iter each.
        let batch = ((self.measurement_time.as_secs_f64() / self.samples as f64) / per_iter)
            .ceil()
            .max(1.0) as u64;

        self.per_iter_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.per_iter_ns.push(elapsed / batch as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.per_iter_ns.is_empty() {
            println!("  {id}: no measurements (Bencher::iter not called)");
            return;
        }
        let mut sorted = self.per_iter_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "  {id}: median {} | mean {} | min {} ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            sorted.len()
        );
        // Machine-readable record for tooling (BENCH_*.json extraction).
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"group\":\"{group}\",\"bench\":\"{id}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"min_ns\":{min:.1}}}"
        );
        let _ = std::fs::create_dir_all("target");
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open("target/bench-results.jsonl")
        {
            use std::io::Write as _;
            let _ = writeln!(file, "{line}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
