//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no crates-registry access, so this workspace
//! vendors a minimal serde look-alike. It keeps the upstream *trait shapes*
//! — `Serialize`/`Serializer` with `SerializeStruct`, `Deserialize<'de>` /
//! `Deserializer<'de>`, `ser::Error`/`de::Error` — so the repo's hand-written
//! impls and `#[derive(Serialize, Deserialize)]` code compile unchanged, but
//! routes everything through a single JSON-like [`value::Value`] tree
//! instead of upstream's visitor machinery. `serde_json` (also vendored)
//! prints and parses that tree using the standard serde JSON conventions
//! (externally tagged enums, newtype transparency), so artifacts written by
//! real serde_json load correctly.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The one concrete error type shared by the vendored serde stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub(crate) String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn msg(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
