//! The JSON-like value tree every serializer and deserializer in the
//! vendored stack routes through.

use std::fmt;
use std::marker::PhantomData;

use crate::{de, ser, Deserialize, Serialize};

/// A dynamically typed value.
///
/// Numbers keep their lexical class (`Int`/`UInt`/`Float`) so integers
/// round-trip exactly and floats use Rust's shortest round-trip formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative or signed integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serializes `value` into a [`Value`] tree.
///
/// # Errors
///
/// Propagates any error the type's `Serialize` impl raises.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, crate::Error> {
    value.serialize(ValueSerializer)
}

/// Deserializes a `T` out of a [`Value`] tree, reporting failures through
/// any [`de::Error`] type (so derive-generated code can surface errors as
/// `D::Error` for the deserializer `D` it was invoked with).
///
/// # Errors
///
/// Fails when the value's shape does not match `T`.
pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(value: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::new(value))
}

/// A [`crate::Deserializer`] over an in-memory [`Value`], generic in its
/// error type.
pub struct ValueDeserializer<E> {
    value: Value,
    _err: PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps a value.
    #[must_use]
    pub fn new(value: Value) -> Self {
        ValueDeserializer {
            value,
            _err: PhantomData,
        }
    }
}

impl<'de, E: de::Error> crate::Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn take_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// The [`crate::Serializer`] that builds a [`Value`] tree — the stack's
/// single concrete serializer.
pub struct ValueSerializer;

/// Builder for struct-like shapes (structs, maps, struct variants).
pub struct ValueStructBuilder {
    fields: Vec<(String, Value)>,
    /// For struct variants: wrap the object under this key when done.
    variant: Option<&'static str>,
}

/// Builder for sequence-like shapes (seqs, tuples, tuple variants).
pub struct ValueSeqBuilder {
    items: Vec<Value>,
    variant: Option<&'static str>,
}

impl ser::SerializeStruct for ValueStructBuilder {
    type Ok = Value;
    type Error = crate::Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), crate::Error> {
        let v = value.serialize(ValueSerializer)?;
        self.fields.push((key.to_string(), v));
        Ok(())
    }

    fn end(self) -> Result<Value, crate::Error> {
        let obj = Value::Object(self.fields);
        Ok(match self.variant {
            Some(name) => Value::Object(vec![(name.to_string(), obj)]),
            None => obj,
        })
    }
}

impl ser::SerializeStructVariant for ValueStructBuilder {
    type Ok = Value;
    type Error = crate::Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), crate::Error> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<Value, crate::Error> {
        ser::SerializeStruct::end(self)
    }
}

impl ser::SerializeSeq for ValueSeqBuilder {
    type Ok = Value;
    type Error = crate::Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), crate::Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, crate::Error> {
        let arr = Value::Array(self.items);
        Ok(match self.variant {
            Some(name) => Value::Object(vec![(name.to_string(), arr)]),
            None => arr,
        })
    }
}

impl ser::SerializeTupleVariant for ValueSeqBuilder {
    type Ok = Value;
    type Error = crate::Error;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), crate::Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<Value, crate::Error> {
        ser::SerializeSeq::end(self)
    }
}

impl crate::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = crate::Error;
    type SerializeStruct = ValueStructBuilder;
    type SerializeStructVariant = ValueStructBuilder;
    type SerializeSeq = ValueSeqBuilder;
    type SerializeTupleVariant = ValueSeqBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, crate::Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, crate::Error> {
        Ok(Value::Int(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, crate::Error> {
        Ok(Value::UInt(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, crate::Error> {
        Ok(Value::Float(v))
    }

    fn serialize_str(self, v: &str) -> Result<Value, crate::Error> {
        Ok(Value::String(v.to_string()))
    }

    fn serialize_unit(self) -> Result<Value, crate::Error> {
        Ok(Value::Null)
    }

    fn serialize_none(self) -> Result<Value, crate::Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Value, crate::Error> {
        value.serialize(ValueSerializer)
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, crate::Error> {
        value.serialize(ValueSerializer)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<Value, crate::Error> {
        Ok(Value::String(variant.to_string()))
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, crate::Error> {
        Ok(Value::Object(vec![(
            variant.to_string(),
            value.serialize(ValueSerializer)?,
        )]))
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<ValueStructBuilder, crate::Error> {
        Ok(ValueStructBuilder {
            fields: Vec::with_capacity(len),
            variant: None,
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ValueStructBuilder, crate::Error> {
        Ok(ValueStructBuilder {
            fields: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeqBuilder, crate::Error> {
        Ok(ValueSeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
            variant: None,
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<ValueSeqBuilder, crate::Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ValueSeqBuilder, crate::Error> {
        Ok(ValueSeqBuilder {
            items: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }

    fn collect_object(self, fields: Vec<(String, Value)>) -> Result<Value, crate::Error> {
        Ok(Value::Object(fields))
    }
}

impl fmt::Display for Value {
    /// Debug-ish display; `serde_json` owns the canonical JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}
