//! Serialization traits, shaped after upstream serde.

use crate::value::Value;
use std::collections::VecDeque;
use std::fmt;

/// Errors a serializer can raise.
pub trait Error: Sized + fmt::Display {
    /// Creates an error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data structure that can serialize itself.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Struct-shaped output under construction.
pub trait SerializeStruct {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Appends one named field.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the struct.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant-shaped output under construction.
pub trait SerializeStructVariant {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Appends one named field.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sequence-shaped output under construction (also used for tuples).
pub trait SerializeSeq {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Appends one element.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;

    /// Finishes the sequence.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant-shaped output under construction.
pub trait SerializeTupleVariant {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Appends one field.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;

    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// The serializer interface. Mirrors upstream serde's shape; the vendored
/// stack has one concrete implementation ([`crate::value::ValueSerializer`]).
#[allow(missing_docs)]
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;

    /// Emits a fully built object with arbitrary (non-`'static`) keys.
    /// Only the value serializer supports this; it exists so `Value` can
    /// implement [`Serialize`] generically.
    ///
    /// # Errors
    ///
    /// Defaults to an error for serializers without object support.
    fn collect_object(self, fields: Vec<(String, Value)>) -> Result<Self::Ok, Self::Error> {
        let _ = fields;
        Err(Error::custom(
            "serializer cannot emit arbitrary-keyed objects",
        ))
    }

    // Narrower integer widths funnel into the 64-bit entry points.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(f64::from(v))
    }
}

macro_rules! serialize_int {
    ($($t:ty => $method:ident),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as _)
            }
        }
    )*};
}

serialize_int!(
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32, i64 => serialize_i64,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32, u64 => serialize_u64,
    f32 => serialize_f32, f64 => serialize_f64
);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_tuple($len)?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )*};
}

serialize_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Int(i) => serializer.serialize_i64(*i),
            Value::UInt(u) => serializer.serialize_u64(*u),
            Value::Float(f) => serializer.serialize_f64(*f),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(fields) => serializer.collect_object(fields.clone()),
        }
    }
}
