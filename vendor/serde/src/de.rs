//! Deserialization traits, shaped after upstream serde, plus the helper
//! functions derive-generated code calls.

use crate::value::Value;
use std::collections::VecDeque;
use std::fmt;

/// Errors a deserializer can raise.
pub trait Error: Sized + fmt::Display {
    /// Creates an error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// The input had an unexpected shape.
    fn invalid_type(unexpected: &str, expected: &str) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {expected}"
        ))
    }
}

/// A data structure that can deserialize itself.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from the given deserializer.
    ///
    /// # Errors
    ///
    /// Fails when the input's shape does not match `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The deserializer interface. The vendored stack is value-tree based: a
/// deserializer surrenders its whole input as a [`Value`], and the
/// `Deserialize` impls pattern-match on it.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes the deserializer, yielding the full input as a value tree.
    ///
    /// # Errors
    ///
    /// Fails if the input cannot be parsed at all (e.g. malformed JSON).
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Unwraps an object's fields, for derive-generated struct impls.
///
/// # Errors
///
/// Fails when the value is not an object.
pub fn expect_object<E: Error>(value: Value, what: &str) -> Result<Vec<(String, Value)>, E> {
    match value {
        Value::Object(fields) => Ok(fields),
        other => Err(E::invalid_type(other.kind(), what)),
    }
}

/// Unwraps an array's items, for sequence impls.
///
/// # Errors
///
/// Fails when the value is not an array.
pub fn expect_array<E: Error>(value: Value, what: &str) -> Result<Vec<Value>, E> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(E::invalid_type(other.kind(), what)),
    }
}

/// Removes and returns a field by name, if present. Order-insensitive.
pub fn opt_field(fields: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
    let idx = fields.iter().position(|(k, _)| k == name)?;
    Some(fields.swap_remove(idx).1)
}

/// Removes and returns a required field by name.
///
/// # Errors
///
/// Fails when the field is absent.
pub fn req_field<E: Error>(
    fields: &mut Vec<(String, Value)>,
    name: &'static str,
) -> Result<Value, E> {
    opt_field(fields, name).ok_or_else(|| E::missing_field(name))
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::invalid_type(other.kind(), "bool")),
        }
    }
}

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let wide: i64 = match value {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| D::Error::custom("integer out of range"))?,
                    other => return Err(D::Error::invalid_type(other.kind(), "integer")),
                };
                <$t>::try_from(wide).map_err(|_| D::Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let wide: u64 = match value {
                    Value::UInt(u) => u,
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| D::Error::custom("integer out of range"))?,
                    other => return Err(D::Error::invalid_type(other.kind(), "integer")),
                };
                <$t>::try_from(wide).map_err(|_| D::Error::custom("integer out of range"))
            }
        }
    )*};
}

deserialize_signed!(i8, i16, i32, i64, isize);
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    other => Err(D::Error::invalid_type(other.kind(), "number")),
                }
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) => Ok(s),
            other => Err(D::Error::invalid_type(other.kind(), "string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(()),
            other => Err(D::Error::invalid_type(other.kind(), "null")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            value => crate::value::from_value::<T, D::Error>(value).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = expect_array::<D::Error>(deserializer.take_value()?, "array")?;
        items
            .into_iter()
            .map(crate::value::from_value::<T, D::Error>)
            .collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(VecDeque::from)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format_args!("expected array of length {N}, got {got}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident),+) with $len:expr;)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let items = expect_array::<D::Error>(deserializer.take_value()?, "tuple")?;
                if items.len() != $len {
                    return Err(D::Error::custom(format_args!(
                        "expected tuple of length {}, got {}", $len, items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok(($(
                    crate::value::from_value::<$name, D::Error>(
                        iter.next().expect("length checked"),
                    )?,
                )+))
            }
        }
    )*};
}

deserialize_tuple! {
    (T0) with 1;
    (T0, T1) with 2;
    (T0, T1, T2) with 3;
    (T0, T1, T2, T3) with 4;
}
