//! Offline vendored stand-in for `serde_json`.
//!
//! Prints and parses the vendored serde [`Value`] tree using standard JSON
//! conventions, so artifacts written by real serde_json load unchanged:
//! structs as objects, sequences as arrays, `Option` as `null`/value, unit
//! enum variants as strings, data-carrying variants externally tagged.
//! Floats print with Rust's shortest round-trip formatting, so
//! serialize → parse round-trips are bit-exact.

use serde::value::{from_value, to_value, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised by JSON printing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Fails if the type's `Serialize` impl errors or a float is non-finite.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&tree, &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    from_value::<T, Error>(value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error("cannot serialize non-finite float".to_string()));
            }
            let text = f.to_string();
            out.push_str(&text);
            // Keep the float lexical class: `2` would re-parse as an integer.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect a `\uXXXX` low half.
                                self.expect(b'\\')?;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("expected low surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits of a `\uXXXX` escape. On entry `pos` is at
    /// the `u`; on exit it is past the last digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        self.pos += 1;
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("invalid hex digit")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<f64>("1e-8").unwrap(), 1e-8);
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[
            0.1,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            123456789.123456789,
            -0.0,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1.0, 2.5], vec![]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.0,2.5],[]]");
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));

        let pairs: Vec<(usize, usize)> = vec![(0, 1), (2, 3)];
        let json = to_string(&pairs).unwrap();
        assert_eq!(json, "[[0,1],[2,3]]");
        let back: Vec<(usize, usize)> = from_str(&json).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\t newline\n quote\" back\\ unicode \u{1F600} ctrl\u{01}";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Parses serde_json-style \u escapes, including surrogate pairs.
        let back: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("-3").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
