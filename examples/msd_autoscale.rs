//! MSD autoscaling under a request burst: MIRAS vs simple baselines.
//!
//! Trains a (fast-scale) MIRAS agent on the MSD ensemble, then injects the
//! paper's first burst — 300/200/300 requests of Type1–Type3 — and compares
//! how MIRAS, DRS (`stream`), HEFT, and a uniform split work the backlog
//! off, window by window.
//!
//! Run: `cargo run --release --example msd_autoscale`

use miras::prelude::*;

/// Runs one policy against a fresh burst scenario; returns
/// (per-window total WIP, total completions).
fn run(policy: &mut dyn Policy, seed: u64, steps: usize) -> (Vec<usize>, usize) {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    env.inject_burst(&BurstSpec::new(vec![300, 200, 300]));
    let mut wip_series = Vec::new();
    let mut completions = 0;
    let mut prev: Option<WindowMetrics> = None;
    for step in 0..steps {
        let wip = env.state();
        let m = policy
            .decide(&Observation::new(&wip, prev.as_ref(), step))
            .allocations;
        let out = env.step(&m);
        wip_series.push(out.metrics.total_wip());
        completions += out.metrics.completions.iter().sum::<usize>();
        prev = Some(out.metrics);
    }
    (wip_series, completions)
}

fn main() {
    let seed = 42;
    let steps = 25;
    let ensemble = Ensemble::msd();

    // Train MIRAS (fast scale, a few iterations).
    println!("training MIRAS (fast scale, 12 iterations)...");
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut train_env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    let mut trainer = MirasTrainer::new(&train_env, MirasConfig::msd_fast(seed));
    for _ in 0..12 {
        let r = trainer.run_iteration(&mut train_env);
        println!("  iter {}: eval return {:.1}", r.iteration, r.eval_return);
    }
    // Every contender — trained or static — comes out of the one policy
    // registry.
    let cfg = PolicyConfig::new(&ensemble).with_miras_agent(trainer.agent());
    let mut miras = miras::baselines::by_name("miras", &cfg).unwrap();
    let mut drs = miras::baselines::by_name("stream", &cfg).unwrap();
    let mut heft = miras::baselines::by_name("heft", &cfg).unwrap();
    let mut uniform = miras::baselines::by_name("uniform", &cfg).unwrap();

    println!("\nburst 300/200/300 on top of Poisson background, {steps} windows of 30 s:");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "step", "miras", "stream", "heft", "uniform"
    );
    let (m_wip, m_done) = run(miras.as_mut(), seed, steps);
    let (d_wip, d_done) = run(drs.as_mut(), seed, steps);
    let (h_wip, h_done) = run(heft.as_mut(), seed, steps);
    let (u_wip, u_done) = run(uniform.as_mut(), seed, steps);
    for i in 0..steps {
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>8}",
            i, m_wip[i], d_wip[i], h_wip[i], u_wip[i]
        );
    }
    println!("\nworkflows completed over the run:");
    println!("  miras   {m_done}");
    println!("  stream  {d_done}");
    println!("  heft    {h_done}");
    println!("  uniform {u_done}");
}
