//! Chaos day: diurnal load waves plus consumer crashes.
//!
//! The paper motivates MIRAS with dynamic workloads and an infrastructure
//! that keeps requests safe across container churn. This example stresses
//! both at once: a sinusoidal ("diurnal") arrival wave is replayed into the
//! MSD cluster while consumers crash at a configurable rate, and an adaptive
//! allocator keeps re-planning. At the end, the at-least-once guarantee is
//! checked: nothing submitted was lost.
//!
//! Run: `cargo run --release --example chaos_day`

use miras::microsim::{Cluster, SimConfig};
use miras::prelude::*;
use rand::SeedableRng;

fn main() {
    let ensemble = Ensemble::msd();
    let horizon = SimTime::from_secs(3_600); // one simulated hour

    // A load wave: base rates swinging ±80% over a 20-minute period.
    let wave = ModulatedPoisson::new(
        ensemble.default_arrival_rates().to_vec(),
        RatePattern::Sine {
            period: SimTime::from_secs(1_200),
            amplitude: 0.8,
        },
    );
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let trace = wave.generate(horizon, &mut rng);
    println!(
        "generated {} arrivals over {} (diurnal wave)",
        trace.len(),
        horizon
    );

    // A flaky cluster: ~12 crashes per consumer-hour of busy time.
    let sim = SimConfig::new(7).with_failure_rate(12.0);
    let mut cluster = Cluster::new(ensemble.clone(), sim);
    for arrival in trace.arrivals() {
        cluster.submit(arrival.time, arrival.workflow_type);
    }

    // Re-plan every 30 s with the WIP-proportional heuristic.
    let mut policy =
        miras::baselines::by_name("wip-proportional", &PolicyConfig::new(&ensemble)).unwrap();
    let window = SimTime::from_secs(30);
    let mut t = SimTime::ZERO;
    let mut peak_wip = 0usize;
    while t < horizon {
        let wip: Vec<f64> = cluster.wip().iter().map(|&w| w as f64).collect();
        let m = policy.decide(&Observation::first(&wip)).allocations;
        cluster.set_consumers(&m);
        t += window;
        cluster.run_until(t);
        peak_wip = peak_wip.max(cluster.total_wip());
    }
    // Let the tail drain with full capacity.
    cluster.set_consumers(&vec![
        ensemble.default_consumer_budget();
        ensemble.num_task_types()
    ]);
    cluster.run_until(horizon + SimTime::from_secs(1_200));

    let completed = cluster.drain_completions().len();
    let submitted: u64 = cluster.workflows_submitted().iter().sum();
    println!("submitted  : {submitted}");
    println!("completed  : {completed}");
    println!("in flight  : {}", cluster.workflows_in_flight());
    println!("crashes    : {}", cluster.consumer_failures());
    println!("peak WIP   : {peak_wip}");
    assert_eq!(
        submitted as usize,
        completed + cluster.workflows_in_flight(),
        "at-least-once violated: workflows were lost"
    );
    println!("at-least-once guarantee held despite the crashes ✔");
}
