//! Bring your own workflows: define a custom ensemble and autoscale it.
//!
//! MIRAS is not tied to the paper's two datasets. This example defines a
//! small genomics-style ensemble — alignment and variant-calling pipelines
//! sharing a quality-control stage — wires it through the same emulator,
//! and runs both a queueing-theoretic allocator (DRS) and a miniature MIRAS
//! training loop against it.
//!
//! Run: `cargo run --release --example custom_workflow`

use miras::prelude::*;
use miras::workflow::{TaskTypeDef, WorkflowDef};

fn genomics_ensemble() -> Ensemble {
    let t = TaskTypeId::new;
    // 0 Ingest, 1 QC, 2 Align, 3 CallVariants, 4 Annotate
    let task_types = vec![
        TaskTypeDef::new("Ingest", 1.5, 0.4),
        TaskTypeDef::new("QC", 2.5, 0.5),
        TaskTypeDef::new("Align", 8.0, 0.6),
        TaskTypeDef::new("CallVariants", 5.0, 0.5),
        TaskTypeDef::new("Annotate", 3.0, 0.4),
    ];
    let workflows = vec![
        WorkflowDef {
            name: "AlignOnly".to_string(),
            // Ingest → QC → Align
            dag: Dag::chain(vec![t(0), t(1), t(2)]).expect("valid DAG"),
        },
        WorkflowDef {
            name: "FullPipeline".to_string(),
            // Ingest → QC → Align → CallVariants → Annotate
            dag: Dag::chain(vec![t(0), t(1), t(2), t(3), t(4)]).expect("valid DAG"),
        },
        WorkflowDef {
            name: "Reannotate".to_string(),
            // QC → (CallVariants ∥ Annotate)
            dag: Dag::new(vec![t(1), t(3), t(4)], vec![(0, 1), (0, 2)]).expect("valid DAG"),
        },
    ];
    Ensemble::new(
        "Genomics",
        task_types,
        workflows,
        12,                     // consumer budget
        vec![0.25, 0.20, 0.30], // background arrival rates (req/s)
    )
}

fn main() {
    let ensemble = genomics_ensemble();
    println!(
        "custom ensemble '{}': offered load {:.1} consumer-s/s vs budget {}",
        ensemble.name(),
        ensemble.offered_load(ensemble.default_arrival_rates()),
        ensemble.default_consumer_budget()
    );

    // Queueing-theoretic allocation straight out of the box — the registry
    // works for custom ensembles too.
    let cfg = PolicyConfig::new(&ensemble);
    let mut drs = miras::baselines::by_name("stream", &cfg).unwrap();
    let steady = drs
        .decide(&Observation::first(&vec![0.0; ensemble.num_task_types()]))
        .allocations;
    println!("DRS steady-state allocation: {steady:?}");

    // A miniature MIRAS loop on the custom ensemble.
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(7);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    let mut config = MirasConfig::msd_fast(7);
    config.real_steps_per_iter = 120;
    config.rollouts_per_iter = 15;
    let mut trainer = MirasTrainer::new(&env, config);
    for _ in 0..3 {
        let r = trainer.run_iteration(&mut env);
        println!(
            "MIRAS iter {}: model loss {:.4}, eval return {:.1}",
            r.iteration, r.model_loss, r.eval_return
        );
    }
    let agent = trainer.agent();
    let allocation = agent.allocate(&[10.0, 4.0, 25.0, 8.0, 2.0]);
    println!(
        "MIRAS allocation for a backlogged Align queue: {allocation:?} (total {})",
        allocation.iter().sum::<usize>()
    );
}
