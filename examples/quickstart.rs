//! Quickstart: train a miniature MIRAS agent on the MSD ensemble and use it.
//!
//! This walks the full pipeline end to end in under a minute:
//! build the emulated microservice workflow system → run a few iterations
//! of the model-based training loop → deploy the learnt allocation policy.
//!
//! Run: `cargo run --release --example quickstart`

use miras::prelude::*;

fn main() {
    // 1. The workload: the paper's Material Science Data ensemble —
    //    3 workflow types over 4 shared task types, consumer budget C = 14.
    let ensemble = Ensemble::msd();
    println!(
        "ensemble {}: {} workflows over {} task types, budget {}",
        ensemble.name(),
        ensemble.num_workflow_types(),
        ensemble.num_task_types(),
        ensemble.default_consumer_budget()
    );

    // 2. The "real environment": a discrete-event emulation of the
    //    microservice cluster (queues, consumers, container start-up
    //    delays, 30 s decision windows).
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(42);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));

    // 3. MIRAS training (scaled down so this example is quick): each
    //    iteration collects real transitions, retrains the environment
    //    model, and improves the DDPG policy against the refined model.
    let mut config = MirasConfig::msd_fast(42);
    config.real_steps_per_iter = 100; // keep the example fast
    config.rollouts_per_iter = 15;
    let mut trainer = MirasTrainer::new(&env, config);
    for i in 0..3 {
        let report = trainer.run_iteration(&mut env);
        println!(
            "iteration {i}: model loss {:.4}, eval return {:.1}, dataset {}",
            report.model_loss, report.eval_return, report.dataset_size
        );
    }

    // 4. Deployment: the agent maps observed per-microservice WIP to a
    //    consumer allocation that always respects the budget.
    let agent = trainer.agent();
    for wip in [
        vec![0.0, 0.0, 0.0, 0.0],
        vec![40.0, 5.0, 10.0, 2.0],
        vec![3.0, 80.0, 1.0, 30.0],
    ] {
        let allocation = agent.allocate(&wip);
        println!(
            "WIP {wip:?} -> consumers {allocation:?} (total {})",
            allocation.iter().sum::<usize>()
        );
        assert!(allocation.iter().sum::<usize>() <= agent.consumer_budget());
    }
}
