//! LIGO burst recovery: watch how an allocation policy sequences work.
//!
//! The paper's most interesting qualitative finding (§VI-D): under large
//! LIGO bursts, the learnt policy "puts aside certain tasks, e.g., Coire…
//! at the beginning and focuses on other tasks", letting response times
//! spike briefly and then recovering below the baselines. This example
//! feeds the large burst (150, 150, 80, 50) to a trained (fast-scale) MIRAS
//! agent and prints the per-task-type allocation and WIP every window, so
//! the deferral pattern is visible directly.
//!
//! Run: `cargo run --release --example ligo_burst_recovery`

use miras::prelude::*;

fn main() {
    let seed = 42;
    let ensemble = Ensemble::ligo();
    let names: Vec<String> = ensemble
        .task_types()
        .iter()
        .map(|t| t.name.clone())
        .collect();

    println!("training MIRAS on LIGO (fast scale, 8 iterations)...");
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut train_env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    let mut trainer = MirasTrainer::new(&train_env, MirasConfig::ligo_fast(seed));
    for _ in 0..8 {
        let r = trainer.run_iteration(&mut train_env);
        println!("  iter {}: eval return {:.1}", r.iteration, r.eval_return);
    }
    let agent = trainer.agent();

    // Fresh environment, large burst.
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed + 1);
    let mut env = MicroserviceEnv::new(ensemble.clone(), config);
    let _ = env.reset();
    env.inject_burst(&BurstSpec::new(vec![150, 150, 80, 50]));

    println!("\nburst (150, 150, 80, 50) of DataFind/CAT/Full/Injection, C = 30:");
    println!("task types: {names:?}");
    println!(
        "{:>5} {:>42} {:>42} {:>10}",
        "step", "allocation m(k)", "WIP w(k+1)", "resp(s)"
    );
    for step in 0..30 {
        let wip = env.state();
        let m = agent.allocate(&wip);
        let out = env.step(&m);
        let resp = out
            .metrics
            .overall_mean_response_secs()
            .map_or("-".to_string(), |r| format!("{r:.0}"));
        println!(
            "{:>5} {:>42} {:>42} {:>10}",
            step,
            format!("{m:?}"),
            format!("{:?}", out.metrics.wip),
            resp
        );
    }

    // How much attention did each microservice get in the first vs second
    // half of the recovery?
    println!(
        "\n(the paper: MIRAS defers Coire-class queues early under large \
         bursts, then returns to them once upstream queues drain)"
    );
}
