//! `miras-serve` — the trained autoscaler as a long-running decision
//! service.
//!
//! Reads one JSON observation per line (stdin by default, or a TCP/Unix
//! socket with `--listen`), emits one JSON allocation decision per line on
//! stdout. Decision records contain no wall-clock, so output is a pure
//! function of the input stream and the policy: a streaming run is
//! byte-identical to `--replay` of the same stream at the same checkpoint.
//!
//! Overload hardening: `--listen` serves `--clients` concurrent
//! connections through a bounded admission queue (`--max-inflight`,
//! `--shed-policy`); refused windows get an immediate `status: "shed"`
//! reply. With a deadline (`--deadline-us`) and fallback (`--fallback`),
//! a primary decision that overruns its budget is answered by the cheap
//! deterministic fallback policy instead, stamped `degraded: true`.
//! Malformed input lines are skipped and counted (`serve.wire_rejected`),
//! never fatal. `--chaos` replays a seeded fault schedule against the
//! same machinery and exits nonzero if any robustness invariant breaks.
//!
//! Examples:
//!
//! ```text
//! # Record a 50-window observation stream, then serve it in shadow mode.
//! miras-serve --record 50 --ensemble msd --seed 7 > stream.jsonl
//! miras-serve --checkpoint ckpt.json --shadow < stream.jsonl > live.jsonl
//! miras-serve --checkpoint ckpt.json --replay stream.jsonl > batch.jsonl
//! cmp live.jsonl batch.jsonl
//!
//! # Long-running, multi-client, with hot-swap and a metrics scrape page.
//! miras-serve --checkpoint ckpt.json --listen tcp:0.0.0.0:7070 \
//!             --clients 8 --max-inflight 64 --shed-policy drop-oldest \
//!             --metrics 0.0.0.0:9090 --telemetry serve_telemetry.jsonl
//!
//! # Seeded chaos run (malformed lines, overload, stalls, corruption).
//! miras-serve --checkpoint ckpt.json --chaos seed=42 --stream stream.jsonl
//! ```

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use miras::baselines::{by_name, fallback, Policy, PolicyConfig, FALLBACK_POLICY};
use miras::prelude::{BurstSpec, Ensemble};
use miras::telemetry::{FanoutRecorder, JsonlSink, Recorder, ScrapeRecorder, Telemetry};
use serve::chaos::{generate_schedule, run_schedule, verify, ChaosConfig};
use serve::{
    load_policy, record_stream, serve_clients, spawn_metrics_endpoint, AdmissionConfig,
    CheckpointWatcher, DecisionService, Listener, ServerConfig, ShedPolicy,
};

const USAGE: &str = "\
usage: miras-serve [flags]

modes (default: serve observations from stdin, decisions to stdout):
  --record N     drive the emulator for N windows and print the
                 observation stream (input for the other modes)
  --replay FILE  batch-replay a recorded stream (the determinism
                 reference for shadow mode)
  --chaos SPEC   replay a seeded fault schedule (malformed lines,
                 disconnects, overload, stalls, checkpoint corruption)
                 against the serving stack and verify the robustness
                 invariants; SPEC is key=value pairs, e.g.
                 seed=42,malformed=0.2,clients=4,burst=5

policy source (default: --policy uniform):
  --checkpoint FILE  load a training checkpoint (or raw agent JSON) and
                     hot-swap whenever the file changes between windows
  --policy NAME      registry policy: uniform, wip-proportional, stream,
                     heft, monad

flags:
  --ensemble msd|ligo|gpu-serve   workload ensemble (default msd)
  --seed N              emulator seed for --record (default 42)
  --burst N,N,..        front-loaded burst for --record
  --shadow              quiet mode: stdout carries decisions only, no
                        stderr banner (decisions are never actuated)
  --listen SPEC         serve clients from tcp:HOST:PORT or unix:PATH
                        instead of stdin/stdout
  --clients N           connections to serve before graceful shutdown
                        (default 1; admitted windows are drained first)
  --max-inflight N      admission bound on undecided windows (default 64)
  --shed-policy P       reject (refuse new) or drop-oldest (evict stale)
                        when the queue is full (default reject)
  --deadline-us N       decision deadline; a primary-policy overrun is
                        answered by the fallback, stamped degraded
                        (default 1000; 0 disables; off by default in
                        --shadow/--replay so the byte-identity proof is
                        untouched by wall-clock noise)
  --fallback NAME       degraded-mode policy (default wip-proportional;
                        'none' serves late instead of degrading)
  --read-timeout-ms N   per-read socket timeout; timeouts get bounded
                        retry, then the client is disconnected
  --stream FILE         base observation stream for --chaos (default:
                        50 recorded windows)
  --metrics HOST:PORT   expose telemetry as a plaintext /metrics page
  --telemetry FILE      append telemetry records to a JSONL file
  --max-p99-us N        exit nonzero if p99 decision latency (admitted,
                        non-degraded windows) exceeds N";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, found '{flag}'"));
        };
        if name == "shadow" {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn numeric<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got '{v}'")),
    }
}

fn ensemble_from(flags: &Flags) -> Result<Ensemble, String> {
    match flags.get("ensemble").map(String::as_str) {
        Some("msd") | None => Ok(Ensemble::msd()),
        Some("ligo") => Ok(Ensemble::ligo()),
        Some("gpu-serve") => Ok(Ensemble::gpu_serve()),
        Some(other) => Err(format!(
            "unknown ensemble '{other}' (msd, ligo, or gpu-serve)"
        )),
    }
}

/// Builds the policy and, for checkpoint-backed policies, the hot-swap
/// watcher over the same path.
fn build_policy(
    flags: &Flags,
    ensemble: &Ensemble,
) -> Result<(Box<dyn Policy>, Option<CheckpointWatcher>), String> {
    match (flags.get("checkpoint"), flags.get("policy")) {
        (Some(_), Some(_)) => Err("--checkpoint and --policy are mutually exclusive".to_string()),
        (Some(path), None) => {
            let path = std::path::PathBuf::from(path);
            let (policy, _version) =
                load_policy(&path).map_err(|e| format!("loading {}: {e}", path.display()))?;
            let watcher = CheckpointWatcher::new_deployed(path);
            Ok((policy, Some(watcher)))
        }
        (None, name) => {
            let name = name.map_or("uniform", String::as_str);
            let cfg = PolicyConfig::new(ensemble);
            let policy = by_name(name, &cfg).map_err(|e| e.to_string())?;
            Ok((policy, None))
        }
    }
}

/// Assembles the telemetry pipeline from `--telemetry` and `--metrics`.
fn build_telemetry(flags: &Flags, shadow: bool) -> Result<Telemetry, String> {
    let mut recorders: Vec<Arc<dyn Recorder>> = Vec::new();
    if let Some(path) = flags.get("telemetry") {
        let sink = JsonlSink::create(path).map_err(|e| format!("opening {path}: {e}"))?;
        recorders.push(sink);
    }
    if let Some(addr) = flags.get("metrics") {
        let scrape = ScrapeRecorder::new();
        let (bound, _handle) = spawn_metrics_endpoint(addr, scrape.clone())
            .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
        if !shadow {
            eprintln!("metrics at http://{bound}/metrics");
        }
        recorders.push(scrape);
    }
    Ok(match recorders.len() {
        0 => Telemetry::noop(),
        1 => Telemetry::new(recorders.remove(0)),
        _ => Telemetry::new(FanoutRecorder::new(recorders)),
    })
}

fn burst_from(flags: &Flags, ensemble: &Ensemble) -> Result<Option<BurstSpec>, String> {
    let Some(v) = flags.get("burst") else {
        return Ok(None);
    };
    let counts: Vec<usize> = v
        .split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| "--burst expects comma-separated integers".to_string())
        })
        .collect::<Result<_, String>>()?;
    if counts.len() != ensemble.num_workflow_types() {
        return Err(format!(
            "--burst needs {} comma-separated counts",
            ensemble.num_workflow_types()
        ));
    }
    Ok(Some(BurstSpec::new(counts)))
}

/// `--record N`: drive the emulator and print the observation stream.
fn record(flags: &Flags, windows: usize) -> Result<(), String> {
    let ensemble = ensemble_from(flags)?;
    let seed = numeric(flags, "seed", 42u64)?;
    let burst = burst_from(flags, &ensemble)?;
    let (mut policy, _watcher) = build_policy(flags, &ensemble)?;
    let observations = record_stream(&ensemble, seed, windows, burst.as_ref(), policy.as_mut());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for obs in &observations {
        let line = serde_json::to_string(obs).map_err(|e| e.to_string())?;
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Parses the admission-control flags.
fn admission_from(flags: &Flags) -> Result<AdmissionConfig, String> {
    let max_inflight = numeric(flags, "max-inflight", 64usize)?;
    let shed: ShedPolicy = match flags.get("shed-policy") {
        None => ShedPolicy::Reject,
        Some(v) => v.parse()?,
    };
    Ok(AdmissionConfig { max_inflight, shed })
}

/// Applies the deadline/fallback hardening flags to a service.
///
/// The deadline defaults on (1000us, the paper's <1 ms budget) for live
/// serving, but off for `--shadow`/`--replay` unless explicitly set:
/// deadline enforcement reads the wall clock, and the shadow-vs-replay
/// byte-identity proof must not depend on scheduler noise.
fn harden(
    mut svc: DecisionService,
    flags: &Flags,
    ensemble: &Ensemble,
    determinism_mode: bool,
) -> Result<DecisionService, String> {
    svc = svc.with_expected_dims(ensemble.num_task_types());
    let deadline_us = numeric(flags, "deadline-us", 1000u64)?;
    let deadline_on = deadline_us > 0 && (flags.contains_key("deadline-us") || !determinism_mode);
    if deadline_on {
        svc = svc.with_deadline(Duration::from_micros(deadline_us));
        let fallback_name = flags
            .get("fallback")
            .map_or(FALLBACK_POLICY, String::as_str);
        if fallback_name != "none" {
            let cfg = PolicyConfig::new(ensemble);
            let fb = if fallback_name == FALLBACK_POLICY {
                fallback(&cfg)
            } else {
                by_name(fallback_name, &cfg).map_err(|e| e.to_string())?
            };
            svc = svc.with_fallback(fb);
        }
    }
    Ok(svc)
}

/// Runs the service over a line source, emitting decisions as they are
/// made (flushed per line so a socket peer sees each decision promptly).
/// Malformed lines are skipped and counted, never fatal.
fn serve_lines(
    svc: &mut DecisionService,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
) -> Result<(), String> {
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            return Ok(());
        }
        lineno += 1;
        if let Some(record) = svc.handle_line(&line, lineno) {
            writeln!(writer, "{}", record.to_line()).map_err(|e| e.to_string())?;
            writer.flush().map_err(|e| e.to_string())?;
        }
    }
}

/// `--chaos SPEC`: replay a seeded fault schedule and verify invariants.
fn run_chaos(mut svc: DecisionService, flags: &Flags, spec: &str) -> Result<(), String> {
    let config = ChaosConfig::from_spec(spec)?;
    let base_lines: Vec<String> = match flags.get("stream") {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))?
            .lines()
            .map(str::to_string)
            .collect(),
        None => {
            let ensemble = ensemble_from(flags)?;
            let seed = numeric(flags, "seed", 42u64)?;
            let mut driver =
                by_name("uniform", &PolicyConfig::new(&ensemble)).map_err(|e| e.to_string())?;
            record_stream(&ensemble, seed, 50, None, driver.as_mut())
                .iter()
                .map(|obs| serde_json::to_string(obs).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?
        }
    };
    let schedule = generate_schedule(&config, &base_lines, svc.max_line_bytes());
    let admission = admission_from(flags)?;
    let checkpoint = flags.get("checkpoint").map(std::path::PathBuf::from);
    let outcome = run_schedule(&mut svc, admission, &schedule, checkpoint.as_deref());
    let verdict = verify(&outcome);
    let summary = format!(
        "{{\"chaos_seed\":{},\"events\":{},\"replies\":{},\"decisions\":{},\"shed\":{},\"degraded\":{},\"wire_rejected\":{},\"dropped_replies\":{},\"disconnects\":{},\"swaps\":{},\"verified\":{}}}",
        config.seed,
        schedule.events.len(),
        outcome.replies.len(),
        outcome.decisions(),
        outcome.counters.shed,
        outcome.counters.degraded,
        outcome.counters.wire_rejected,
        outcome.counters.dropped_replies,
        outcome.counters.disconnects,
        outcome.swaps,
        verdict.is_ok(),
    );
    println!("{summary}");
    svc.finish();
    verdict.map_err(|v| format!("chaos invariant violated (seed {}): {v}", config.seed))
}

/// Prints the latency/overload summary and enforces `--max-p99-us`.
fn finish(svc: &DecisionService, flags: &Flags) -> Result<(), String> {
    svc.finish();
    let counters = svc.counters().snapshot();
    if counters.shed + counters.degraded + counters.wire_rejected + counters.disconnects > 0 {
        eprintln!(
            "serve: overload/robustness: {} shed, {} degraded, {} wire-rejected, {} retries, {} disconnects, {} dropped replies",
            counters.shed,
            counters.degraded,
            counters.wire_rejected,
            counters.retries,
            counters.disconnects,
            counters.dropped_replies
        );
    }
    let Some(stats) = svc.latency_stats() else {
        eprintln!("serve: no decisions made");
        return Ok(());
    };
    eprintln!(
        "serve: {} decisions via '{}' v{} ({} hot-swaps), latency p50 {:.1}us p99 {:.1}us max {:.1}us",
        stats.count,
        svc.policy_name(),
        svc.policy_version(),
        svc.swaps(),
        stats.p50_us,
        stats.p99_us,
        stats.max_us
    );
    let max_p99_us = numeric(flags, "max-p99-us", f64::INFINITY)?;
    if stats.p99_us > max_p99_us {
        return Err(format!(
            "p99 decision latency {:.1}us exceeds --max-p99-us {max_p99_us}",
            stats.p99_us
        ));
    }
    Ok(())
}

fn run(flags: &Flags) -> Result<(), String> {
    if let Some(windows) = flags.get("record") {
        let windows: usize = windows
            .parse()
            .map_err(|_| format!("--record expects a window count, got '{windows}'"))?;
        return record(flags, windows);
    }

    let shadow = flags.contains_key("shadow");
    let ensemble = ensemble_from(flags)?;
    let (policy, watcher) = build_policy(flags, &ensemble)?;
    let telemetry = build_telemetry(flags, shadow)?;
    let mut svc = DecisionService::new(policy, telemetry);
    // Replay is a batch reference run: the checkpoint is pinned, never
    // swapped mid-stream.
    let replaying = flags.contains_key("replay");
    let chaos = flags.get("chaos").cloned();
    if let Some(watcher) = watcher {
        if !replaying {
            svc = svc.with_watcher(watcher);
        }
    }
    svc = harden(svc, flags, &ensemble, shadow || replaying)?;

    if let Some(spec) = chaos {
        return run_chaos(svc, flags, &spec);
    }
    if !shadow {
        eprintln!(
            "serving '{}' v{} ({})",
            svc.policy_name(),
            svc.policy_version(),
            if replaying { "replay" } else { "live" }
        );
    }

    if let Some(path) = flags.get("replay") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let records = svc.handle_stream(&text);
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for record in &records {
            writeln!(out, "{}", record.to_line()).map_err(|e| e.to_string())?;
        }
    } else if let Some(spec) = flags.get("listen") {
        let listener = Listener::bind(spec).map_err(|e| format!("binding {spec}: {e}"))?;
        let config = ServerConfig {
            admission: admission_from(flags)?,
            clients: numeric(flags, "clients", 1usize)?,
            read_timeout: match numeric(flags, "read-timeout-ms", 0u64)? {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            retry: serve::RetryPolicy::default(),
        };
        if !shadow {
            let where_ = listener
                .local_addr()
                .map_or_else(|| spec.clone(), |addr| format!("tcp:{addr}"));
            eprintln!(
                "listening on {where_} ({} clients, max {} in flight, shed {})",
                config.clients, config.admission.max_inflight, config.admission.shed
            );
        }
        let report = serve_clients(&listener, &mut svc, &config).map_err(|e| e.to_string())?;
        if !shadow {
            eprintln!(
                "served {} clients, {} windows decided",
                report.clients, report.decided
            );
        }
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        serve_lines(&mut svc, &mut stdin.lock(), &mut stdout.lock())?;
    }

    finish(&svc, flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
