//! `miras-cli` — drive the MIRAS reproduction from the command line.
//!
//! Subcommands:
//!
//! * `simulate` — run a baseline allocator against the emulated cluster and
//!   print per-window metrics,
//! * `train`    — run the MIRAS training loop and save the agent as JSON,
//! * `evaluate` — replay a saved agent against a workload,
//! * `allocate` — one-shot: WIP vector in, consumer allocation out.
//!
//! Examples:
//!
//! ```text
//! miras-cli simulate --ensemble msd --policy drs --burst 300,200,300 --windows 25
//! miras-cli train --ensemble msd --iterations 12 --out agent.json
//! miras-cli evaluate --agent agent.json --burst 500,500,500 --windows 25
//! miras-cli allocate --agent agent.json --wip 12,3,40,7
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use miras::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "simulate" => simulate(&flags),
        "train" => train(&flags),
        "evaluate" => evaluate(&flags),
        "allocate" => allocate(&flags),
        "gen-trace" => gen_trace(&flags),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: miras-cli <command> [flags]

commands:
  simulate  --ensemble msd|ligo|gpu-serve [--policy NAME] [--burst N,N,..]
            [--trace FILE] [--windows N] [--seed N]
            (NAME is any registry policy: uniform, wip-proportional,
             stream/drs, heft, monad)
  train     --ensemble msd|ligo|gpu-serve [--iterations N] [--paper] [--smoke]
            [--seed N] [--out FILE] [--workers N] [--lanes B]
            (--workers 2+ runs the distributed actor-learner inner loop;
             --workers 1 is the lockstep loop on a worker thread)
  evaluate  --agent FILE [--ensemble msd|ligo|gpu-serve] [--burst N,N,..]
            [--trace FILE] [--windows N] [--seed N]
  allocate  --agent FILE --wip X,X,..
  gen-trace --ensemble msd|ligo|gpu-serve --out FILE [--horizon SECS] [--seed N]
            [--pattern constant|sine|ramp|step] [--period SECS]
            [--amplitude X] [--factor X] [--at SECS]";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, found '{flag}'"));
        };
        if name == "paper" || name == "smoke" {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn ensemble_from(flags: &Flags) -> Result<Ensemble, String> {
    match flags.get("ensemble").map(String::as_str) {
        Some("msd") | None => Ok(Ensemble::msd()),
        Some("ligo") => Ok(Ensemble::ligo()),
        Some("gpu-serve") => Ok(Ensemble::gpu_serve()),
        Some(other) => Err(format!(
            "unknown ensemble '{other}' (msd, ligo, or gpu-serve)"
        )),
    }
}

fn numeric<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got '{v}'")),
    }
}

fn list(flags: &Flags, name: &str) -> Result<Option<Vec<usize>>, String> {
    match flags.get(name) {
        None => Ok(None),
        Some(v) => v
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .map_err(|_| format!("--{name} expects comma-separated integers"))
            })
            .collect::<Result<Vec<usize>, String>>()
            .map(Some),
    }
}

fn float_list(flags: &Flags, name: &str) -> Result<Option<Vec<f64>>, String> {
    match flags.get(name) {
        None => Ok(None),
        Some(v) => v
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .map_err(|_| format!("--{name} expects comma-separated numbers"))
            })
            .collect::<Result<Vec<f64>, String>>()
            .map(Some),
    }
}

/// Runs an allocation policy against the emulator, printing one row per
/// decision window.
fn run_policy(
    ensemble: Ensemble,
    seed: u64,
    burst: Option<Vec<usize>>,
    trace_path: Option<&str>,
    windows: usize,
    policy: &mut dyn Policy,
) -> Result<(), String> {
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    if let Some(counts) = burst {
        if counts.len() != env.num_workflow_types() {
            return Err(format!(
                "--burst needs {} comma-separated counts",
                env.num_workflow_types()
            ));
        }
        env.inject_burst(&BurstSpec::new(counts));
    }
    if let Some(path) = trace_path {
        let trace = ArrivalTrace::load_json(path).map_err(|e| format!("loading {path}: {e}"))?;
        println!("replaying {} arrivals from {path}", trace.len());
        env.inject_trace(&trace);
    }
    println!(
        "{:>6} {:>10} {:>9} {:>13} {:>12} {:>24}",
        "window", "total_wip", "reward", "completions", "resp_secs", "allocation"
    );
    let mut previous: Option<WindowMetrics> = None;
    let mut total_reward = 0.0;
    let mut total_completions = 0usize;
    for w in 0..windows {
        let wip = env.state();
        let decision = policy.decide(&miras::baselines::Observation::new(
            &wip,
            previous.as_ref(),
            w,
        ));
        let m = decision.allocations;
        let out = env.step(&m);
        total_reward += out.reward;
        let completions: usize = out.metrics.completions.iter().sum();
        total_completions += completions;
        let resp = out
            .metrics
            .overall_mean_response_secs()
            .map_or("-".to_string(), |r| format!("{r:.1}"));
        println!(
            "{:>6} {:>10} {:>9.0} {:>13} {:>12} {:>24}",
            w,
            out.metrics.total_wip(),
            out.reward,
            completions,
            resp,
            format!("{m:?}")
        );
        previous = Some(out.metrics);
    }
    println!("\ntotal reward {total_reward:.0}, total completions {total_completions}");
    Ok(())
}

fn simulate(flags: &Flags) -> Result<(), String> {
    let ensemble = ensemble_from(flags)?;
    let seed = numeric(flags, "seed", 42u64)?;
    let windows = numeric(flags, "windows", 25usize)?;
    let burst = list(flags, "burst")?;
    let policy_name = flags
        .get("policy")
        .cloned()
        .unwrap_or_else(|| "drs".to_string());
    let mut policy = miras::baselines::by_name(&policy_name, &PolicyConfig::new(&ensemble))
        .map_err(|e| e.to_string())?;
    println!(
        "simulating {} under '{}' (seed {seed}, {windows} windows)",
        ensemble.name(),
        policy.name()
    );
    let trace = flags.get("trace").map(String::as_str);
    run_policy(ensemble, seed, burst, trace, windows, policy.as_mut())
}

fn train(flags: &Flags) -> Result<(), String> {
    let ensemble = ensemble_from(flags)?;
    let seed = numeric(flags, "seed", 42u64)?;
    let iterations = numeric(flags, "iterations", 12usize)?;
    let paper = flags.contains_key("paper");
    let smoke = flags.contains_key("smoke");
    if paper && smoke {
        return Err("--paper and --smoke are mutually exclusive".to_string());
    }
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("miras_agent_{}.json", ensemble.name().to_lowercase()));

    let mut config = if smoke {
        MirasConfig::smoke_test(seed)
    } else {
        match (ensemble.name(), paper) {
            ("MSD", false) => MirasConfig::msd_fast(seed),
            ("MSD", true) => MirasConfig::msd_paper(seed),
            ("LIGO", false) => MirasConfig::ligo_fast(seed),
            ("LIGO", true) => MirasConfig::ligo_paper(seed),
            ("GPU-SERVE", false) => MirasConfig::gpu_serve_fast(seed),
            ("GPU-SERVE", true) => MirasConfig::gpu_serve_paper(seed),
            _ => MirasConfig::msd_fast(seed),
        }
    };
    // --workers switches the inner loop to the distributed actor-learner
    // system; --lanes sets the lockstep width of each worker's env.
    let workers = numeric::<usize>(flags, "workers", 0)?;
    if workers > 0 {
        let lanes = numeric(flags, "lanes", 4usize)?;
        config = config
            .try_with_distributed(workers, lanes)
            .map_err(|e| e.to_string())?;
        println!("distributed inner loop: {workers} worker(s) x {lanes} lanes");
    } else if flags.contains_key("lanes") {
        return Err("--lanes needs --workers N".to_string());
    }
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
    let mut trainer = MirasTrainer::new(&env, config);
    println!("training MIRAS for {iterations} iterations…");
    for _ in 0..iterations {
        let r = trainer.run_iteration(&mut env);
        println!(
            "iteration {:>2}: model_loss {:.4}, eval_return {:>10.1}, dataset {}",
            r.iteration, r.model_loss, r.eval_return, r.dataset_size
        );
    }
    let agent = trainer.agent();
    let json = serde_json::to_string(&agent).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("agent saved to {out}");
    Ok(())
}

fn load_agent(flags: &Flags) -> Result<MirasAgent, String> {
    let path = flags.get("agent").ok_or("--agent FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn evaluate(flags: &Flags) -> Result<(), String> {
    let agent = load_agent(flags)?;
    let ensemble = ensemble_from(flags)?;
    if agent.num_task_types() != ensemble.num_task_types() {
        return Err(format!(
            "agent controls {} task types but {} has {}",
            agent.num_task_types(),
            ensemble.name(),
            ensemble.num_task_types()
        ));
    }
    let seed = numeric(flags, "seed", 42u64)?;
    let windows = numeric(flags, "windows", 25usize)?;
    let burst = list(flags, "burst")?;
    println!(
        "evaluating saved agent on {} (seed {seed}, {windows} windows)",
        ensemble.name()
    );
    let trace = flags.get("trace").map(String::as_str);
    let mut policy = AllocatorPolicy::new(agent);
    run_policy(ensemble, seed, burst, trace, windows, &mut policy)
}

fn gen_trace(flags: &Flags) -> Result<(), String> {
    use miras::workflow::{ModulatedPoisson, RatePattern};
    use rand::SeedableRng;
    let ensemble = ensemble_from(flags)?;
    let seed = numeric(flags, "seed", 42u64)?;
    let horizon_secs = numeric(flags, "horizon", 3_600u64)?;
    let out = flags.get("out").ok_or("--out FILE is required")?;
    let pattern = match flags.get("pattern").map(String::as_str) {
        Some("constant") | None => RatePattern::Constant,
        Some("sine") => RatePattern::Sine {
            period: SimTime::from_secs(numeric(flags, "period", 1_200u64)?),
            amplitude: numeric(flags, "amplitude", 0.5f64)?,
        },
        Some("ramp") => RatePattern::Ramp {
            from_factor: 1.0,
            to_factor: numeric(flags, "factor", 2.0f64)?,
            duration: SimTime::from_secs(horizon_secs),
        },
        Some("step") => RatePattern::Step {
            at: SimTime::from_secs(numeric(flags, "at", horizon_secs / 2)?),
            factor: numeric(flags, "factor", 2.0f64)?,
        },
        Some(other) => return Err(format!("unknown pattern '{other}'")),
    };
    let process = ModulatedPoisson::new(ensemble.default_arrival_rates().to_vec(), pattern);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let trace = process.generate(SimTime::from_secs(horizon_secs), &mut rng);
    trace
        .save_json(out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} arrivals over {horizon_secs}s to {out} (counts per type: {:?})",
        trace.len(),
        trace.counts(ensemble.num_workflow_types())
    );
    Ok(())
}

fn allocate(flags: &Flags) -> Result<(), String> {
    let agent = load_agent(flags)?;
    let wip = float_list(flags, "wip")?.ok_or("--wip X,X,.. is required")?;
    if wip.len() != agent.num_task_types() {
        return Err(format!(
            "agent expects {} WIP values, got {}",
            agent.num_task_types(),
            wip.len()
        ));
    }
    let dist = agent.distribution(&wip);
    let m = agent.allocate(&wip);
    println!("distribution: {dist:?}");
    println!(
        "allocation:   {m:?} (total {}, budget {})",
        m.iter().sum::<usize>(),
        agent.consumer_budget()
    );
    Ok(())
}
