//! # MIRAS — model-based RL for microservice resource allocation
//!
//! A full Rust reproduction of *MIRAS: Model-based Reinforcement Learning
//! for Microservice Resource Allocation over Scientific Workflows*
//! (Yang, Nguyen, Jin, Nahrstedt — ICDCS 2019).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`workflow`] — workflow DAGs, the MSD and LIGO ensembles, workload
//!   generators,
//! * [`microsim`] — the discrete-event microservice-cluster emulator (the
//!   "real environment"),
//! * [`nn`] — the neural-network library (MLPs, Adam, parameter noise),
//! * [`rl`] — DDPG with parameter-space exploration,
//! * [`miras_core`] — the MIRAS pipeline: dynamics model, Lend–Giveback
//!   refinement, synthetic environment, iterative trainer,
//! * [`baselines`] — DRS, HEFT, MONAD, model-free DDPG, static allocators,
//! * [`desim`] — the underlying simulation kernel.
//!
//! # Quickstart
//!
//! ```
//! use miras::prelude::*;
//!
//! // Build the paper's MSD workload and environment.
//! let ensemble = Ensemble::msd();
//! let config = EnvConfig::for_ensemble(&ensemble).with_seed(42);
//! let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config));
//!
//! // Run one (miniature) iteration of the MIRAS training loop.
//! let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(42));
//! let report = trainer.run_iteration(&mut env);
//! assert!(report.model_loss.is_finite());
//!
//! // Deploy the learnt policy: WIP in, consumer allocation out.
//! let agent = trainer.agent();
//! let allocation = agent.allocate(&[12.0, 3.0, 7.0, 1.0]);
//! assert!(allocation.iter().sum::<usize>() <= 14);
//! ```

#![forbid(unsafe_code)]

pub use baselines;
pub use desim;
pub use microsim;
pub use miras_core;
pub use nn;
pub use rl;
pub use telemetry;
pub use workflow;

/// Commonly used types, importable in one line.
pub mod prelude {
    pub use baselines::{
        Allocator, AllocatorPolicy, Decision, DrsAllocator, HeftAllocator, ModelFreeDdpg,
        MonadAllocator, Observation, Policy, PolicyConfig, PolicyError, UniformAllocator,
        WipProportionalAllocator,
    };
    pub use desim::SimTime;
    pub use microsim::{
        Cluster, ConfigError, EnvConfig, MicroserviceEnv, SimConfig, WindowMetrics,
    };
    pub use miras_core::{
        ClusterEnvAdapter, DynamicsModel, EnsembleDynamics, MirasAgent, MirasConfig, MirasTrainer,
        RefinedModel, SyntheticEnv, TransitionDataset,
    };
    pub use rl::{Ddpg, DdpgConfig, Environment, Exploration};
    pub use workflow::{
        ArrivalTrace, BurstSpec, Dag, Ensemble, ModulatedPoisson, PoissonProcess, RatePattern,
        TaskTypeId, WorkflowTypeId,
    };
}
