//! A stable min-priority queue of timestamped events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::wheel::TimingWheel;
use crate::SimTime;

/// An event together with its delivery time and a FIFO tie-breaking sequence
/// number.
///
/// Two events scheduled for the same [`SimTime`] are delivered in scheduling
/// order, which keeps simulations deterministic.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index used for stable ordering of ties.
    pub seq: u64,
    /// The caller's payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    // Reversed so that the std max-heap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which scheduler backs an [`EventQueue`] (or an
/// [`Engine`](crate::Engine)).
///
/// Both backends pop the exact same `(time, seq, event)` sequence — the
/// choice is purely a performance trade-off. The binary heap costs
/// `O(log n)` per operation in the total number of pending events; the
/// timing wheel buckets near-future events by coarse time tick so its cost
/// scales with the handful of events sharing a tick instead (see
/// [`crate::wheel`] internals and `DESIGN.md` §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueKind {
    /// A single global binary heap over all pending events.
    Heap,
    /// A calendar-queue timing wheel with a far-future overflow heap.
    #[default]
    Wheel,
}

// The wheel variant is large (inline slot headers + occupancy bitmap), but
// every `EventQueue` holds exactly one backend for its whole lifetime, so
// boxing would buy nothing except a pointer hop on every push/pop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Backend<E> {
    Heap(BinaryHeap<ScheduledEvent<E>>),
    Wheel(TimingWheel<E>),
}

/// A min-priority queue of events keyed by [`SimTime`], with stable FIFO
/// ordering for simultaneous events.
///
/// # Examples
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().map(|e| e.event), Some("sooner"));
/// assert_eq!(q.pop().map(|e| e.event), Some("later"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty binary-heap queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::with_kind(QueueKind::Heap)
    }

    /// Creates an empty queue on the given backend.
    #[must_use]
    pub fn with_kind(kind: QueueKind) -> Self {
        let backend = match kind {
            QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            QueueKind::Wheel => Backend::Wheel(TimingWheel::new()),
        };
        EventQueue {
            backend,
            next_seq: 0,
        }
    }

    /// Which backend this queue runs on.
    #[must_use]
    pub fn kind(&self) -> QueueKind {
        match &self.backend {
            Backend::Heap(_) => QueueKind::Heap,
            Backend::Wheel(_) => QueueKind::Wheel,
        }
    }

    /// Events moved from the far-future overflow heap into the wheel frame
    /// so far. Always 0 on the heap backend.
    #[must_use]
    pub fn cascades(&self) -> u64 {
        match &self.backend {
            Backend::Heap(_) => 0,
            Backend::Wheel(w) => w.cascades(),
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = ScheduledEvent { time, seq, event };
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(ev),
            Backend::Wheel(wheel) => wheel.insert(ev),
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.pop(),
            Backend::Wheel(wheel) => wheel.pop(),
        }
    }

    /// Returns the delivery time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.time),
            Backend::Wheel(wheel) => wheel.peek_time(),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len(),
        }
    }

    /// Returns true when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events, keeping the sequence counter so ordering
    /// stays stable across a clear.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.clear(),
            Backend::Wheel(wheel) => wheel.clear(),
        }
    }

    /// The next sequence number that [`EventQueue::push`] would assign.
    /// Captured by checkpoints so FIFO tie-breaking survives a restore.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Pending events as `(time, seq, event)` triples, sorted by delivery
    /// order. Used to serialise the queue into a checkpoint.
    #[must_use]
    pub fn snapshot_events(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        match &self.backend {
            Backend::Heap(heap) => {
                let mut events: Vec<(SimTime, u64, E)> = heap
                    .iter()
                    .map(|e| (e.time, e.seq, e.event.clone()))
                    .collect();
                events.sort_by_key(|(time, seq, _)| (*time, *seq));
                events
            }
            Backend::Wheel(wheel) => wheel.snapshot_events(),
        }
    }

    /// Consuming variant of [`EventQueue::snapshot_events`]: moves the
    /// pending events out instead of cloning them. Use on snapshot-then-drop
    /// paths where the queue is being discarded anyway.
    #[must_use]
    pub fn into_snapshot_events(self) -> Vec<(SimTime, u64, E)> {
        match self.backend {
            Backend::Heap(heap) => {
                let mut events: Vec<(SimTime, u64, E)> =
                    heap.into_iter().map(|e| (e.time, e.seq, e.event)).collect();
                events.sort_by_key(|(time, seq, _)| (*time, *seq));
                events
            }
            Backend::Wheel(wheel) => wheel.into_snapshot_events(),
        }
    }

    /// Rebuilds a binary-heap queue from a [`EventQueue::snapshot_events`]
    /// capture and the matching [`EventQueue::next_seq`], preserving the
    /// original sequence numbers so simultaneous events still pop in their
    /// original FIFO order.
    #[must_use]
    pub fn from_snapshot(events: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        EventQueue::from_snapshot_with(QueueKind::Heap, events, next_seq)
    }

    /// [`EventQueue::from_snapshot`] onto an explicit backend. Snapshots are
    /// backend-agnostic: both backends restore the exact same pop sequence,
    /// so a heap-era checkpoint can resume on the wheel and vice versa.
    #[must_use]
    pub fn from_snapshot_with(
        kind: QueueKind,
        events: Vec<(SimTime, u64, E)>,
        next_seq: u64,
    ) -> Self {
        let mut queue = EventQueue::with_kind(kind);
        queue.next_seq = next_seq;
        match &mut queue.backend {
            Backend::Heap(heap) => {
                heap.extend(events.into_iter().map(|(time, seq, event)| ScheduledEvent {
                    time,
                    seq,
                    event,
                }));
            }
            Backend::Wheel(wheel) => {
                for (time, seq, event) in events {
                    wheel.insert(ScheduledEvent { time, seq, event });
                }
            }
        }
        queue
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs every queue test against both backends.
    fn for_both(test: impl Fn(EventQueue<i32>)) {
        test(EventQueue::with_kind(QueueKind::Heap));
        test(EventQueue::with_kind(QueueKind::Wheel));
    }

    #[test]
    fn pops_in_time_order() {
        for_both(|mut q| {
            q.push(SimTime::from_secs(3), 3);
            q.push(SimTime::from_secs(1), 1);
            q.push(SimTime::from_secs(2), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        for_both(|mut q| {
            let t = SimTime::from_secs(5);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn peek_time_reports_earliest() {
        for_both(|mut q| {
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_secs(7), 0);
            q.push(SimTime::from_secs(4), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        });
    }

    #[test]
    fn clear_empties_but_keeps_fifo_stability() {
        for_both(|mut q| {
            q.push(SimTime::ZERO, 1);
            q.clear();
            assert!(q.is_empty());
            let t = SimTime::from_secs(1);
            q.push(t, 10);
            q.push(t, 11);
            assert_eq!(q.pop().unwrap().event, 10);
            assert_eq!(q.pop().unwrap().event, 11);
        });
    }

    #[test]
    fn snapshot_round_trip_preserves_fifo_ties() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_secs(2);
            q.push(SimTime::from_secs(3), 30);
            for i in 0..10 {
                q.push(t, i);
            }
            let restored = EventQueue::from_snapshot_with(kind, q.snapshot_events(), q.next_seq());
            let mut a = q;
            let mut b = restored;
            loop {
                match (a.pop(), b.pop()) {
                    (None, None) => break,
                    (x, y) => {
                        let x = x.expect("restored queue too long");
                        let y = y.expect("restored queue too short");
                        assert_eq!((x.time, x.seq, x.event), (y.time, y.seq, y.event));
                    }
                }
            }
            assert_eq!(a.next_seq(), b.next_seq());
        }
    }

    #[test]
    fn snapshots_are_backend_agnostic() {
        // A heap snapshot restored onto the wheel (and vice versa) pops the
        // identical sequence.
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        for i in 0..50u32 {
            heap.push(SimTime::from_millis(u64::from(i % 7) * 9000), i as i32);
        }
        let mut wheel = EventQueue::from_snapshot_with(
            QueueKind::Wheel,
            heap.snapshot_events(),
            heap.next_seq(),
        );
        assert_eq!(wheel.kind(), QueueKind::Wheel);
        loop {
            match (heap.pop(), wheel.pop()) {
                (None, None) => break,
                (a, b) => {
                    let a = a.expect("heap ended early");
                    let b = b.expect("wheel ended early");
                    assert_eq!((a.time, a.seq, a.event), (b.time, b.seq, b.event));
                }
            }
        }
    }

    #[test]
    fn into_snapshot_events_matches_cloning_snapshot() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..20 {
                q.push(SimTime::from_millis((i * 37) % 11), i as i32);
            }
            let cloned = q.snapshot_events();
            let consumed = q.into_snapshot_events();
            assert_eq!(
                cloned.len(),
                consumed.len(),
                "consuming snapshot dropped events"
            );
            for (a, b) in cloned.iter().zip(&consumed) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn len_tracks_push_pop() {
        for_both(|mut q| {
            q.push(SimTime::ZERO, 0);
            q.push(SimTime::ZERO, 0);
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    fn wheel_reports_cascades_for_far_future_events() {
        let mut q: EventQueue<i32> = EventQueue::with_kind(QueueKind::Wheel);
        q.push(SimTime::from_secs(3600), 1); // far beyond the wheel horizon
        assert_eq!(q.cascades(), 0);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.cascades(), 1);
        let heap: EventQueue<i32> = EventQueue::new();
        assert_eq!(heap.cascades(), 0);
    }
}
