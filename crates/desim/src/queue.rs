//! A stable min-priority queue of timestamped events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event together with its delivery time and a FIFO tie-breaking sequence
/// number.
///
/// Two events scheduled for the same [`SimTime`] are delivered in scheduling
/// order, which keeps simulations deterministic.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index used for stable ordering of ties.
    pub seq: u64,
    /// The caller's payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    // Reversed so that the std max-heap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of events keyed by [`SimTime`], with stable FIFO
/// ordering for simultaneous events.
///
/// # Examples
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().map(|e| e.event), Some("sooner"));
/// assert_eq!(q.pop().map(|e| e.event), Some("later"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Returns the delivery time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the sequence counter so ordering
    /// stays stable across a clear.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The next sequence number that [`EventQueue::push`] would assign.
    /// Captured by checkpoints so FIFO tie-breaking survives a restore.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Pending events as `(time, seq, event)` triples, sorted by delivery
    /// order. Used to serialise the queue into a checkpoint.
    #[must_use]
    pub fn snapshot_events(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut events: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .map(|e| (e.time, e.seq, e.event.clone()))
            .collect();
        events.sort_by_key(|(time, seq, _)| (*time, *seq));
        events
    }

    /// Rebuilds a queue from a [`EventQueue::snapshot_events`] capture and
    /// the matching [`EventQueue::next_seq`], preserving the original
    /// sequence numbers so simultaneous events still pop in their original
    /// FIFO order.
    #[must_use]
    pub fn from_snapshot(events: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        let heap = events
            .into_iter()
            .map(|(time, seq, event)| ScheduledEvent { time, seq, event })
            .collect();
        EventQueue { heap, next_seq }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
    }

    #[test]
    fn clear_empties_but_keeps_fifo_stability() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        let t = SimTime::from_secs(1);
        q.push(t, 10);
        q.push(t, 11);
        assert_eq!(q.pop().unwrap().event, 10);
        assert_eq!(q.pop().unwrap().event, 11);
    }

    #[test]
    fn snapshot_round_trip_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        q.push(SimTime::from_secs(3), 30);
        for i in 0..10 {
            q.push(t, i);
        }
        let restored = EventQueue::from_snapshot(q.snapshot_events(), q.next_seq());
        let mut a = q;
        let mut b = restored;
        loop {
            match (a.pop(), b.pop()) {
                (None, None) => break,
                (x, y) => {
                    let x = x.expect("restored queue too long");
                    let y = y.expect("restored queue too short");
                    assert_eq!((x.time, x.seq, x.event), (y.time, y.seq, y.event));
                }
            }
        }
        assert_eq!(a.next_seq(), b.next_seq());
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
