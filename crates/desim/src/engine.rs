//! The simulation engine: a clock plus an event queue.

use crate::{EventQueue, QueueKind, SimTime};
use telemetry::Telemetry;

/// A discrete-event simulation engine.
///
/// The engine owns the simulated clock and the pending-event queue. Client
/// code drives the simulation by scheduling events and repeatedly calling
/// [`Engine::pop`] (or [`Engine::run_until`]), handling each event and
/// scheduling follow-up events in response.
///
/// The clock only moves forward: popping an event advances [`Engine::now`] to
/// that event's timestamp.
///
/// # Examples
///
/// ```
/// use desim::{Engine, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Arrive, Depart }
///
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::from_secs(1), Ev::Arrive);
/// engine.schedule_after(SimTime::from_secs(3), Ev::Depart);
/// let (t1, e1) = engine.pop().unwrap();
/// assert_eq!((t1, e1), (SimTime::from_secs(1), Ev::Arrive));
/// let (t2, e2) = engine.pop().unwrap();
/// assert_eq!((t2, e2), (SimTime::from_secs(3), Ev::Depart));
/// ```
#[derive(Debug, Clone)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    telemetry: Telemetry,
    checkpoint_processed: u64,
    checkpoint_cascades: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with an empty binary-heap queue and the clock at
    /// [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Engine::with_queue_kind(QueueKind::Heap)
    }

    /// Creates an engine whose event queue runs on the given backend. Both
    /// backends deliver the exact same event sequence; see [`QueueKind`].
    #[must_use]
    pub fn with_queue_kind(kind: QueueKind) -> Self {
        Engine {
            queue: EventQueue::with_kind(kind),
            now: SimTime::ZERO,
            processed: 0,
            telemetry: Telemetry::noop(),
            checkpoint_processed: 0,
            checkpoint_cascades: 0,
        }
    }

    /// Which backend the event queue runs on.
    #[must_use]
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Events cascaded from the wheel's far-future overflow heap so far
    /// (always 0 on the heap backend).
    #[must_use]
    pub fn wheel_cascades(&self) -> u64 {
        self.queue.cascades()
    }

    /// Attaches a telemetry handle. The engine records nothing in the event
    /// hot path; clients call [`Engine::telemetry_checkpoint`] at natural
    /// boundaries (e.g. once per decision window) to publish progress.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Publishes engine progress since the last checkpoint: the
    /// `desim.events_processed` and `desim.wheel_cascades` counter deltas
    /// plus `desim.pending` and `desim.now_secs` gauges. A no-op without an
    /// attached recorder.
    pub fn telemetry_checkpoint(&mut self) {
        let cascades = self.queue.cascades();
        if self.telemetry.is_enabled() {
            self.telemetry.counter(
                "desim.events_processed",
                self.processed - self.checkpoint_processed,
            );
            self.telemetry
                .counter("desim.wheel_cascades", cascades - self.checkpoint_cascades);
            #[allow(clippy::cast_precision_loss)]
            self.telemetry.gauge("desim.pending", self.pending() as f64);
            self.telemetry
                .gauge("desim.now_secs", self.now.as_secs_f64());
        }
        self.checkpoint_processed = self.processed;
        self.checkpoint_cascades = cascades;
    }

    /// The current simulated time (the timestamp of the most recently popped
    /// event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now`: the event fires at the
    /// current instant (after already-pending events at that instant). This
    /// keeps the clock monotone in the face of, e.g., zero service times.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now.saturating_add(delay), event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the queue yields an event timestamped before the current
    /// clock. [`Engine::schedule`] clamps past times to `now`, so this can
    /// only happen through queue corruption (e.g. restoring a tampered
    /// snapshot); the clock going backwards would silently corrupt every
    /// time-based measurement downstream, so it is fatal even in release
    /// builds.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.queue.pop()?;
        assert!(ev.time >= self.now, "event queue went back in time");
        self.now = ev.time;
        self.processed += 1;
        Some((ev.time, ev.event))
    }

    /// Pops the earliest event only if it fires at or before `horizon`.
    ///
    /// Returns `None` either when the queue is empty or when the next event is
    /// beyond the horizon (in which case the clock is advanced to `horizon`
    /// so that time-based measurements are well defined).
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                }
                None
            }
        }
    }

    /// The timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drains every event with `handler` until the queue is empty.
    pub fn run<F: FnMut(SimTime, E)>(&mut self, mut handler: F) {
        while let Some((t, e)) = self.pop() {
            handler(t, e);
        }
    }

    /// Drains events up to and including `horizon`, then advances the clock
    /// to `horizon`.
    pub fn run_until<F: FnMut(SimTime, E)>(&mut self, horizon: SimTime, mut handler: F) {
        while let Some((t, e)) = self.pop_until(horizon) {
            handler(t, e);
        }
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }

    /// Captures the engine's dynamic state for a checkpoint: the clock, the
    /// processed-event count, the pending events (with their original
    /// sequence numbers) and the queue's next sequence number.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot<E>
    where
        E: Clone,
    {
        EngineSnapshot {
            now: self.now,
            processed: self.processed,
            events: self.queue.snapshot_events(),
            next_seq: self.queue.next_seq(),
            kind: self.queue.kind(),
        }
    }

    /// Consuming variant of [`Engine::snapshot`]: moves the pending events
    /// out instead of cloning them. Use on snapshot-then-drop paths where
    /// the engine is being discarded anyway.
    #[must_use]
    pub fn into_snapshot(self) -> EngineSnapshot<E> {
        EngineSnapshot {
            now: self.now,
            processed: self.processed,
            next_seq: self.queue.next_seq(),
            kind: self.queue.kind(),
            events: self.queue.into_snapshot_events(),
        }
    }

    /// Rebuilds an engine from an [`Engine::snapshot`] capture. The restored
    /// engine delivers the exact same event sequence as the original,
    /// including FIFO ordering of simultaneous events, and runs on the queue
    /// backend recorded in the snapshot. Telemetry is detached (re-attach
    /// with [`Engine::set_telemetry`]).
    #[must_use]
    pub fn from_snapshot(snapshot: EngineSnapshot<E>) -> Self {
        Engine {
            queue: EventQueue::from_snapshot_with(
                snapshot.kind,
                snapshot.events,
                snapshot.next_seq,
            ),
            now: snapshot.now,
            processed: snapshot.processed,
            telemetry: Telemetry::noop(),
            checkpoint_processed: snapshot.processed,
            checkpoint_cascades: 0,
        }
    }
}

/// The dynamic state of an [`Engine`], produced by [`Engine::snapshot`].
///
/// The struct itself is generic and therefore not serde-derived (the
/// vendored derive macro is monomorphic); checkpointing callers serialise
/// the public fields into their own concrete snapshot types.
#[derive(Debug, Clone)]
pub struct EngineSnapshot<E> {
    /// The simulated clock at capture time.
    pub now: SimTime,
    /// Total events popped before the capture.
    pub processed: u64,
    /// Pending `(time, seq, event)` triples in delivery order.
    pub events: Vec<(SimTime, u64, E)>,
    /// The queue's next FIFO tie-breaking sequence number.
    pub next_seq: u64,
    /// The queue backend to restore onto. Snapshots are backend-agnostic, so
    /// restoring onto a different kind still replays the identical sequence.
    pub kind: QueueKind,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(5), ());
        e.schedule(SimTime::from_secs(2), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(2));
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(10), "a");
        e.pop();
        e.schedule(SimTime::from_secs(1), "late");
        let (t, ev) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(ev, "late");
    }

    #[test]
    fn pop_until_respects_horizon_and_advances_clock() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(1), 1);
        e.schedule(SimTime::from_secs(4), 4);
        assert_eq!(e.pop_until(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(e.pop_until(SimTime::from_secs(2)).is_none());
        // Clock parked exactly at the horizon.
        assert_eq!(e.now(), SimTime::from_secs(2));
        // The later event is still pending.
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn run_until_handles_events_within_window_only() {
        let mut e = Engine::new();
        for s in 1..=10 {
            e.schedule(SimTime::from_secs(s), s);
        }
        let mut seen = Vec::new();
        e.run_until(SimTime::from_secs(5), |_, v| seen.push(v));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.pending(), 5);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(3), "base");
        e.pop();
        e.schedule_after(SimTime::from_secs(2), "rel");
        assert_eq!(e.pop().unwrap().0, SimTime::from_secs(5));
    }

    #[test]
    fn run_drains_everything() {
        let mut e = Engine::new();
        for s in 0..100 {
            e.schedule(SimTime::from_millis(s * 10), s);
        }
        let mut n = 0;
        e.run(|_, _| n += 1);
        assert_eq!(n, 100);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn telemetry_checkpoint_reports_event_deltas() {
        use telemetry::{JsonlSink, Recorder, Telemetry};
        let sink = JsonlSink::in_memory();
        let mut e = Engine::new();
        e.set_telemetry(Telemetry::new(sink.clone()));
        e.schedule(SimTime::from_secs(1), ());
        e.schedule(SimTime::from_secs(2), ());
        e.pop();
        e.telemetry_checkpoint();
        e.pop();
        e.telemetry_checkpoint();
        Recorder::flush(&*sink);
        let text = String::from_utf8(sink.take_output()).unwrap();
        assert!(text.contains("\"desim.events_processed\""));
        // Two checkpoints of one event each accumulate to 2.
        assert!(text.contains("\"value\":2"));
    }

    #[test]
    fn snapshot_restore_replays_identical_sequence() {
        let mut original = Engine::new();
        original.schedule(SimTime::from_secs(1), 1);
        original.schedule(SimTime::from_secs(2), 2);
        original.pop();
        // Two simultaneous events exercise FIFO restoration.
        original.schedule(SimTime::from_secs(3), 31);
        original.schedule(SimTime::from_secs(3), 32);
        let mut restored = Engine::from_snapshot(original.snapshot());
        assert_eq!(restored.now(), original.now());
        assert_eq!(restored.events_processed(), original.events_processed());
        loop {
            match (original.pop(), restored.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
        // Post-restore scheduling stays aligned too (same next_seq).
        original.schedule(SimTime::from_secs(4), 40);
        restored.schedule(SimTime::from_secs(4), 40);
        assert_eq!(original.pop(), restored.pop());
    }

    #[test]
    fn clear_pending_keeps_clock() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(1), ());
        e.pop();
        e.schedule(SimTime::from_secs(9), ());
        e.clear_pending();
        assert_eq!(e.pending(), 0);
        assert_eq!(e.now(), SimTime::from_secs(1));
    }
}
