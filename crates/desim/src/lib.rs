//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the minimal machinery every simulated subsystem in the
//! MIRAS reproduction is built on: a simulated clock ([`SimTime`]), a stable
//! priority queue of timestamped events ([`EventQueue`]), and an execution
//! engine ([`Engine`]) that repeatedly pops the earliest event and hands it to
//! the caller.
//!
//! Determinism is a first-class goal: two events scheduled for the same
//! instant are delivered in the order they were scheduled (FIFO tie-breaking
//! via a monotonically increasing sequence number), so a fixed RNG seed
//! reproduces a simulation run bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use desim::{Engine, SimTime};
//!
//! // Count ticks of a self-rescheduling clock.
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule(SimTime::ZERO, "tick");
//! let mut ticks = 0;
//! while let Some((now, _ev)) = engine.pop() {
//!     ticks += 1;
//!     if ticks < 10 {
//!         engine.schedule(now + SimTime::from_secs(1), "tick");
//!     }
//! }
//! assert_eq!(ticks, 10);
//! assert_eq!(engine.now(), SimTime::from_secs(9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod queue;
mod time;
mod wheel;

pub use engine::{Engine, EngineSnapshot};
pub use queue::{EventQueue, QueueKind, ScheduledEvent};
pub use time::SimTime;
