//! Simulated time as an integer number of microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A point on (or span of) the simulated timeline, with microsecond
/// resolution.
///
/// `SimTime` is a newtype over `u64` microseconds. Integer time makes event
/// ordering exact (no floating-point ties) and keeps the simulation
/// deterministic across platforms.
///
/// The same type is used for instants and durations; subtraction of two
/// instants yields a span. Subtraction saturates at zero rather than
/// underflowing, which is the convention throughout the emulator ("how long
/// until X, but never negative").
///
/// # Examples
///
/// ```
/// use desim::SimTime;
///
/// let start = SimTime::from_secs(30);
/// let end = start + SimTime::from_millis(500);
/// assert_eq!((end - start).as_micros(), 500_000);
/// assert!(end > start);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs map to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Returns the number of whole microseconds since the origin.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole milliseconds since the origin (truncated).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns this time as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition: `SimTime::MAX` acts as an absorbing "never".
    #[must_use]
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction; returns [`SimTime::ZERO`] when `rhs > self`.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns true if this is the origin instant.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl From<Duration> for SimTime {
    fn from(d: Duration) -> Self {
        SimTime(d.as_micros().min(u64::MAX as u128) as u64)
    }
}

impl From<SimTime> for Duration {
    fn from(t: SimTime) -> Self {
        Duration::from_micros(t.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_secs(1));
    }

    #[test]
    fn addition_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn duration_round_trip() {
        let t = SimTime::from_micros(1_234_567);
        let d: Duration = t.into();
        assert_eq!(SimTime::from(d), t);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500s");
    }
}
