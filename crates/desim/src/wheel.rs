//! A calendar-queue (timing-wheel) event scheduler with a far-future
//! overflow heap.
//!
//! The wheel keys events on coarse *ticks* of the [`SimTime`] axis
//! (`tick = micros >> TICK_SHIFT`) and spreads near-future ticks over a
//! power-of-two ring of slots. Steady-state cost per event is O(1) slot
//! arithmetic plus a small heapify among the events sharing one tick,
//! instead of the global `O(log n)` of a binary heap over every pending
//! event.
//!
//! Regions, by tick relative to the wheel cursor `current_tick`:
//!
//! * **current** — a small binary heap of events at ticks `<= current_tick`
//!   (including past-time pushes). Always the pop source; its heap order is
//!   exactly the [`ScheduledEvent`] `(time, seq)` order, so pops are
//!   bit-identical to the plain binary-heap queue.
//! * **wheel** — `slots[tick & SLOT_MASK]` holds events with
//!   `tick - current_tick` in `[1, NUM_SLOTS)`, unsorted (they are sorted by
//!   heapifying when their slot becomes current). A two-level occupancy
//!   bitmap (one summary word over 64 occupancy words) finds the next
//!   occupied slot without scanning empty ones.
//! * **far** — a binary heap for everything beyond the wheel horizon.
//!   When the cursor advances, far events that fall inside the new frame
//!   *cascade* into the wheel (or straight into `current`).
//!
//! Determinism argument: the three regions partition events by tick, and
//! ticks are monotone in time, so the earliest event overall is always in
//! the earliest non-empty region; merging equal-tick events from the wheel
//! slot and the far heap into `current` lets the `(time, seq)` heap order
//! resolve every remaining tie exactly as the reference heap would.

use std::collections::BinaryHeap;

use crate::queue::ScheduledEvent;
use crate::SimTime;

/// log2 of the tick length in microseconds: 2^13 µs ≈ 8.2 ms per tick.
const TICK_SHIFT: u32 = 13;
/// Number of wheel slots (power of two): horizon ≈ 4096 × 8.2 ms ≈ 33.6 s,
/// which covers a full 30 s decision window of arrivals plus the 5–10 s
/// container start-up delays without touching the far heap.
const NUM_SLOTS: u64 = 4096;
const SLOT_MASK: u64 = NUM_SLOTS - 1;
/// Occupancy words (64 slots per word) and bits in the summary word.
const WORDS: usize = (NUM_SLOTS / 64) as usize;

#[inline]
fn tick_of(time: SimTime) -> u64 {
    time.as_micros() >> TICK_SHIFT
}

/// The timing-wheel backend of [`crate::EventQueue`]. Does not own the
/// sequence counter — the queue front-end assigns `seq` before insertion.
#[derive(Debug, Clone)]
pub(crate) struct TimingWheel<E> {
    /// Events at ticks `<= current_tick`, popped in `(time, seq)` order.
    current: BinaryHeap<ScheduledEvent<E>>,
    /// Ring of unsorted buckets for ticks within the wheel horizon.
    slots: Vec<Vec<ScheduledEvent<E>>>,
    /// `occupancy[w]` bit `b` set iff `slots[w * 64 + b]` is non-empty.
    occupancy: [u64; WORDS],
    /// Bit `w` set iff `occupancy[w] != 0`.
    summary: u64,
    /// Events beyond the wheel horizon.
    far: BinaryHeap<ScheduledEvent<E>>,
    /// The wheel cursor: every wheel/far event has a tick strictly above it.
    current_tick: u64,
    len: usize,
    /// Events moved from the far heap into the wheel frame so far.
    cascades: u64,
}

impl<E> TimingWheel<E> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            current: BinaryHeap::new(),
            slots: std::iter::repeat_with(Vec::new)
                .take(NUM_SLOTS as usize)
                .collect(),
            occupancy: [0; WORDS],
            summary: 0,
            far: BinaryHeap::new(),
            current_tick: 0,
            len: 0,
            cascades: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Inserts an event that already carries its sequence number.
    pub(crate) fn insert(&mut self, ev: ScheduledEvent<E>) {
        let tick = tick_of(ev.time);
        if tick <= self.current_tick {
            self.current.push(ev);
        } else if tick - self.current_tick < NUM_SLOTS {
            self.insert_slot(tick, ev);
        } else {
            self.far.push(ev);
        }
        self.len += 1;
    }

    fn insert_slot(&mut self, tick: u64, ev: ScheduledEvent<E>) {
        let slot = (tick & SLOT_MASK) as usize;
        self.slots[slot].push(ev);
        let word = slot / 64;
        self.occupancy[word] |= 1 << (slot % 64);
        self.summary |= 1 << word;
    }

    /// Cyclic distance (in slots) from `start` to the nearest occupied slot,
    /// using the summary word to skip empty 64-slot spans.
    fn next_occupied_distance(&self, start: usize) -> Option<u64> {
        if self.summary == 0 {
            return None;
        }
        let (w0, b0) = (start / 64, (start % 64) as u32);
        // Same word, bits at or after the start position.
        let masked = self.occupancy[w0] & (u64::MAX << b0);
        if masked != 0 {
            return Some(u64::from(masked.trailing_zeros() - b0));
        }
        // Later words, wrapping once around the ring; the start word is
        // revisited last for its low bits.
        for step in 1..=WORDS {
            let w = (w0 + step) % WORDS;
            if self.summary & (1 << w) == 0 {
                continue;
            }
            let bits = if w == w0 {
                self.occupancy[w] & !(u64::MAX << b0)
            } else {
                self.occupancy[w]
            };
            if bits != 0 {
                let slot_in_word = u64::from(bits.trailing_zeros());
                let dist = (step as u64) * 64 + slot_in_word - u64::from(b0);
                return Some(dist);
            }
        }
        None
    }

    /// The tick of the earliest wheel event, if any.
    fn wheel_next_tick(&self) -> Option<u64> {
        let start = ((self.current_tick + 1) & SLOT_MASK) as usize;
        self.next_occupied_distance(start)
            .map(|d| self.current_tick + 1 + d)
    }

    /// Refills `current` from the earliest of the wheel and far regions,
    /// advancing the cursor. Far events that fall inside the new wheel frame
    /// cascade in. No-op when `current` is already non-empty or everything
    /// is drained.
    fn advance(&mut self) {
        if !self.current.is_empty() || self.len == 0 {
            return;
        }
        let wheel_tick = self.wheel_next_tick();
        let far_tick = self.far.peek().map(|e| tick_of(e.time));
        let next_tick = match (wheel_tick, far_tick) {
            (Some(w), Some(f)) => w.min(f),
            (Some(w), None) => w,
            (None, Some(f)) => f,
            (None, None) => unreachable!("len > 0 with all regions empty"),
        };
        self.current_tick = next_tick;
        if wheel_tick == Some(next_tick) {
            let slot = (next_tick & SLOT_MASK) as usize;
            let word = slot / 64;
            self.occupancy[word] &= !(1 << (slot % 64));
            if self.occupancy[word] == 0 {
                self.summary &= !(1 << word);
            }
            for ev in self.slots[slot].drain(..) {
                self.current.push(ev);
            }
        }
        // Cascade far events now inside the frame. The far heap pops in
        // (time, seq) order and ticks are monotone in time, so the first
        // event beyond the horizon ends the drain.
        while let Some(top) = self.far.peek() {
            let tick = tick_of(top.time);
            if tick <= self.current_tick {
                let ev = self.far.pop().expect("peeked");
                self.current.push(ev);
            } else if tick - self.current_tick < NUM_SLOTS {
                let ev = self.far.pop().expect("peeked");
                self.insert_slot(tick, ev);
            } else {
                break;
            }
            self.cascades += 1;
        }
        debug_assert!(!self.current.is_empty());
    }

    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.current.is_empty() {
            self.advance();
        }
        let ev = self.current.pop()?;
        self.len -= 1;
        Some(ev)
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        if let Some(ev) = self.current.peek() {
            return Some(ev.time);
        }
        // Regions hold disjoint tick ranges (current < wheel, far at or
        // beyond the wheel's ticks), so compare the wheel's earliest slot
        // minimum with the far minimum; an earlier tick always means an
        // earlier time.
        let wheel_min = self.wheel_next_tick().map(|tick| {
            let slot = (tick & SLOT_MASK) as usize;
            self.slots[slot]
                .iter()
                .map(|e| e.time)
                .min()
                .expect("occupied slot is non-empty")
        });
        let far_min = self.far.peek().map(|e| e.time);
        match (wheel_min, far_min) {
            (Some(w), Some(f)) => Some(w.min(f)),
            (w, f) => w.or(f),
        }
    }

    /// Drops all pending events. The cursor and cascade counter are kept;
    /// slot buffers retain their capacity for reuse.
    pub(crate) fn clear(&mut self) {
        self.current.clear();
        self.far.clear();
        for word in 0..WORDS {
            let mut bits = self.occupancy[word];
            while bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                self.slots[slot].clear();
                bits &= bits - 1;
            }
            self.occupancy[word] = 0;
        }
        self.summary = 0;
        self.len = 0;
    }

    /// All pending events as `(time, seq, event)` triples in delivery order,
    /// cloning each payload.
    pub(crate) fn snapshot_events(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut events: Vec<(SimTime, u64, E)> = self
            .current
            .iter()
            .chain(self.slots.iter().flatten())
            .chain(self.far.iter())
            .map(|e| (e.time, e.seq, e.event.clone()))
            .collect();
        events.sort_by_key(|(time, seq, _)| (*time, *seq));
        events
    }

    /// Consumes the wheel, returning the pending events in delivery order
    /// without cloning payloads.
    pub(crate) fn into_snapshot_events(self) -> Vec<(SimTime, u64, E)> {
        let mut events: Vec<(SimTime, u64, E)> = self
            .current
            .into_iter()
            .chain(self.slots.into_iter().flatten())
            .chain(self.far)
            .map(|e| (e.time, e.seq, e.event))
            .collect();
        events.sort_by_key(|(time, seq, _)| (*time, *seq));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(micros: u64, seq: u64, payload: u32) -> ScheduledEvent<u32> {
        ScheduledEvent {
            time: SimTime::from_micros(micros),
            seq,
            event: payload,
        }
    }

    #[test]
    fn pops_across_all_three_regions_in_order() {
        let mut w = TimingWheel::new();
        let horizon_micros = NUM_SLOTS << TICK_SHIFT;
        // far, wheel, current — inserted out of order.
        w.insert(ev(horizon_micros * 3, 0, 30));
        w.insert(ev(500, 1, 10)); // tick 0 → current
        w.insert(ev(1 << 20, 2, 20)); // within the wheel frame
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn equal_tick_wheel_and_far_events_merge_by_seq() {
        let mut w = TimingWheel::new();
        let t = (NUM_SLOTS + 100) << TICK_SHIFT; // starts beyond the horizon
        w.insert(ev(t, 0, 1)); // goes far
        w.insert(ev(t, 1, 2)); // also far
        assert_eq!(w.pop().map(|e| e.event), Some(1));
        assert_eq!(w.pop().map(|e| e.event), Some(2));
        assert!(w.cascades() >= 1, "far events must have cascaded");
    }

    #[test]
    fn peek_time_is_non_mutating_and_correct() {
        let mut w = TimingWheel::new();
        assert_eq!(w.peek_time(), None);
        w.insert(ev(5 << TICK_SHIFT, 0, 0));
        w.insert(ev(3 << TICK_SHIFT, 1, 1));
        assert_eq!(w.peek_time(), Some(SimTime::from_micros(3 << TICK_SHIFT)));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn clear_keeps_cursor_and_capacity() {
        let mut w = TimingWheel::new();
        for i in 0..100u64 {
            w.insert(ev(i * 10_000, i, i as u32));
        }
        while w.len() > 50 {
            w.pop();
        }
        w.clear();
        assert_eq!(w.len(), 0);
        assert_eq!(w.pop().map(|e| e.event), None);
        // Past-time pushes after a clear land in `current` and still pop.
        w.insert(ev(0, 1000, 7));
        assert_eq!(w.pop().map(|e| e.event), Some(7));
    }

    #[test]
    fn wrap_around_the_ring_is_handled() {
        let mut w = TimingWheel::new();
        // Park the cursor near the end of the ring, then insert an event
        // whose slot index wraps past zero.
        let near_end = SLOT_MASK - 2;
        w.insert(ev(near_end << TICK_SHIFT, 0, 1));
        assert_eq!(w.pop().map(|e| e.event), Some(1));
        let wrapped = near_end + 10; // slot index (near_end + 10) & MASK < near_end
        w.insert(ev(wrapped << TICK_SHIFT, 1, 2));
        assert_eq!(w.pop().map(|e| e.event), Some(2));
    }
}
