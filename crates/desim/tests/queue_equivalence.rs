//! Differential property tests: the timing-wheel queue must be
//! operation-for-operation indistinguishable from the binary-heap queue.
//!
//! Both backends are driven with the same random program of pushes
//! (including simultaneous and far-future times), pops, clears, and
//! snapshot/restore at random cut points, asserting bitwise-equal
//! `(time, seq, event)` pop sequences and equal `next_seq` throughout.

use desim::{EventQueue, QueueKind, SimTime};
use proptest::prelude::*;

/// One step of a random queue program.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
    Clear,
    SnapshotRestore,
}

/// Decodes a raw `(kind, small_time, big_time)` tuple into an [`Op`].
///
/// Push times mix a tiny range (forcing simultaneous events and FIFO
/// tie-breaking) with a huge range reaching far beyond the wheel's ~33 s
/// frame (forcing overflow-heap cascades).
fn decode(kind: u8, small: u64, big: u64) -> Op {
    match kind % 100 {
        0..=54 => Op::Push(if kind % 2 == 0 { small } else { big }),
        55..=84 => Op::Pop,
        85..=89 => Op::Clear,
        _ => Op::SnapshotRestore,
    }
}

fn raw_ops() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    proptest::collection::vec((0u8..=255, 0u64..50, 0u64..200_000_000), 1..400)
}

/// Runs the same program against both backends in lockstep, checking each
/// observable after every step.
fn run_lockstep(raw: &[(u8, u64, u64)]) -> Result<(), TestCaseError> {
    let mut heap: EventQueue<u32> = EventQueue::with_kind(QueueKind::Heap);
    let mut wheel: EventQueue<u32> = EventQueue::with_kind(QueueKind::Wheel);
    for (i, &(kind, small, big)) in raw.iter().enumerate() {
        #[allow(clippy::cast_possible_truncation)]
        let payload = i as u32;
        match decode(kind, small, big) {
            Op::Push(micros) => {
                let t = SimTime::from_micros(micros);
                heap.push(t, payload);
                wheel.push(t, payload);
            }
            Op::Pop => {
                let a = heap.pop();
                let b = wheel.pop();
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        prop_assert_eq!(
                            (x.time, x.seq, x.event),
                            (y.time, y.seq, y.event),
                            "pop diverged at step {}",
                            i
                        );
                    }
                    (a, b) => {
                        return Err(TestCaseError::fail(format!(
                            "pop presence diverged at step {i}: heap={a:?} wheel={b:?}"
                        )));
                    }
                }
            }
            Op::Clear => {
                heap.clear();
                wheel.clear();
            }
            Op::SnapshotRestore => {
                let hs = heap.snapshot_events();
                let ws = wheel.snapshot_events();
                prop_assert_eq!(&hs, &ws, "snapshots diverged at step {}", i);
                prop_assert_eq!(heap.next_seq(), wheel.next_seq());
                heap = EventQueue::from_snapshot_with(QueueKind::Heap, hs, heap.next_seq());
                wheel = EventQueue::from_snapshot_with(QueueKind::Wheel, ws, wheel.next_seq());
            }
        }
        prop_assert_eq!(heap.len(), wheel.len(), "len diverged at step {}", i);
        prop_assert_eq!(
            heap.peek_time(),
            wheel.peek_time(),
            "peek_time diverged at step {}",
            i
        );
        prop_assert_eq!(heap.next_seq(), wheel.next_seq());
    }
    // Drain whatever is left and compare the full tail sequence.
    loop {
        match (heap.pop(), wheel.pop()) {
            (None, None) => break,
            (Some(x), Some(y)) => {
                prop_assert_eq!((x.time, x.seq, x.event), (y.time, y.seq, y.event));
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "tail drain diverged: heap={a:?} wheel={b:?}"
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    /// The wheel pops a bitwise-identical `(time, seq, event)` sequence to
    /// the heap over arbitrary programs of pushes, pops, clears and
    /// snapshot/restores.
    #[test]
    fn wheel_matches_heap_over_random_programs(raw in raw_ops()) {
        run_lockstep(&raw)?;
    }

    /// Cross-backend restore: a snapshot taken on one backend and restored
    /// onto the other drains the identical sequence.
    #[test]
    fn cross_backend_restore_is_equivalent(
        times in proptest::collection::vec(0u64..100_000_000, 0..150),
        cut in 0usize..150,
    ) {
        let mut heap: EventQueue<u32> = EventQueue::with_kind(QueueKind::Heap);
        for (i, &t) in times.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            heap.push(SimTime::from_micros(t), i as u32);
        }
        // Pop a random prefix before snapshotting so the cut lands mid-drain.
        for _ in 0..cut.min(times.len() / 2) {
            heap.pop();
        }
        let next_seq = heap.next_seq();
        let events = heap.snapshot_events();
        let mut onto_wheel =
            EventQueue::from_snapshot_with(QueueKind::Wheel, events.clone(), next_seq);
        let mut onto_heap = EventQueue::from_snapshot_with(QueueKind::Heap, events, next_seq);
        prop_assert_eq!(onto_wheel.next_seq(), onto_heap.next_seq());
        loop {
            match (onto_heap.pop(), onto_wheel.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    prop_assert_eq!((x.time, x.seq, x.event), (y.time, y.seq, y.event));
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "cross-restore diverged: heap={a:?} wheel={b:?}"
                    )));
                }
            }
        }
    }

    /// A consuming snapshot equals the cloning snapshot on both backends.
    #[test]
    fn into_snapshot_matches_snapshot(
        times in proptest::collection::vec(0u64..100_000_000, 0..150),
    ) {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
            for (i, &t) in times.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                q.push(SimTime::from_micros(t), i as u32);
            }
            let cloned = q.snapshot_events();
            let consumed = q.into_snapshot_events();
            prop_assert_eq!(cloned, consumed);
        }
    }
}
