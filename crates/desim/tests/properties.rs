//! Property-based tests for the simulation kernel.

use desim::{Engine, EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always come out in non-decreasing time order regardless of
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last);
            last = ev.time;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Among equal-time events, FIFO order is preserved.
    #[test]
    fn queue_ties_are_fifo(groups in proptest::collection::vec((0u64..100, 1usize..10), 1..30)) {
        let mut q = EventQueue::new();
        let mut id = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.push(SimTime::from_micros(t), id);
                id += 1;
            }
        }
        // Within each timestamp, ids must ascend.
        let mut per_time: std::collections::BTreeMap<SimTime, Vec<usize>> = Default::default();
        while let Some(ev) = q.pop() {
            per_time.entry(ev.time).or_default().push(ev.event);
        }
        for ids in per_time.values() {
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ids, &sorted);
        }
    }

    /// The engine clock is monotone non-decreasing over any schedule.
    #[test]
    fn engine_clock_monotone(times in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule(SimTime::from_micros(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = e.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(e.now(), t);
            last = t;
        }
    }

    /// run_until never processes an event beyond the horizon and always parks
    /// the clock exactly at the horizon.
    #[test]
    fn run_until_respects_horizon(
        times in proptest::collection::vec(0u64..2_000_000, 1..100),
        horizon in 0u64..2_000_000,
    ) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule(SimTime::from_micros(t), t);
        }
        let h = SimTime::from_micros(horizon);
        let mut max_seen = None;
        e.run_until(h, |t, _| { max_seen = Some(t); });
        if let Some(m) = max_seen {
            prop_assert!(m <= h);
        }
        prop_assert_eq!(e.now(), h);
        let expected_remaining = times.iter().filter(|&&t| t > horizon).count();
        prop_assert_eq!(e.pending(), expected_remaining);
    }

    /// SimTime arithmetic: (a + b) - b == a for values far from saturation.
    #[test]
    fn simtime_add_sub_roundtrip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        prop_assert_eq!((ta + tb) - tb, ta);
    }
}
