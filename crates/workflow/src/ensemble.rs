//! Workflow ensembles: shared task types plus the workflow DAGs over them.

use serde::{Deserialize, Serialize};

use crate::{Dag, TaskTypeId, WorkflowTypeId};

/// Definition of one task type (one microservice).
///
/// Service times are log-normally distributed (the paper: "the processing
/// time of each microservice is not fixed, due to variant sizes of input
/// data"). `mean_service_secs` is the distribution mean and `service_cv` its
/// coefficient of variation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTypeDef {
    /// Human-readable name (e.g. `"Inspiral"`).
    pub name: String,
    /// Mean service time in seconds for one request on one consumer.
    pub mean_service_secs: f64,
    /// Coefficient of variation (σ/μ) of the service time.
    pub service_cv: f64,
}

impl TaskTypeDef {
    /// Creates a task-type definition.
    ///
    /// # Panics
    ///
    /// Panics if `mean_service_secs` is not strictly positive or `service_cv`
    /// is negative, since the emulator cannot sample from such distributions.
    #[must_use]
    pub fn new(name: impl Into<String>, mean_service_secs: f64, service_cv: f64) -> Self {
        assert!(
            mean_service_secs > 0.0,
            "mean service time must be positive"
        );
        assert!(service_cv >= 0.0, "service-time CV must be non-negative");
        TaskTypeDef {
            name: name.into(),
            mean_service_secs,
            service_cv,
        }
    }
}

/// Definition of one workflow type: a name and its task DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowDef {
    /// Human-readable name (e.g. `"Injection"`).
    pub name: String,
    /// The precedence graph over task instances.
    pub dag: Dag,
}

/// A workflow ensemble: `J` task types shared by `N` workflow types.
///
/// This is the static description of a workload domain; the paper evaluates
/// on two of them, available as [`Ensemble::msd`] and [`Ensemble::ligo`].
/// Custom ensembles can be built with [`Ensemble::new`].
///
/// # Examples
///
/// ```
/// use workflow::Ensemble;
///
/// let ligo = Ensemble::ligo();
/// assert_eq!(ligo.num_task_types(), 9);
/// assert_eq!(ligo.num_workflow_types(), 4);
/// assert_eq!(ligo.default_consumer_budget(), 30);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ensemble {
    name: String,
    task_types: Vec<TaskTypeDef>,
    workflows: Vec<WorkflowDef>,
    default_consumer_budget: usize,
    default_arrival_rates: Vec<f64>,
}

impl Ensemble {
    /// Builds a custom ensemble.
    ///
    /// `default_arrival_rates` gives the background Poisson rate (requests
    /// per second) for each workflow type; `default_consumer_budget` is the
    /// total-consumer constraint `C`.
    ///
    /// # Panics
    ///
    /// Panics when any workflow DAG references a task type outside
    /// `0..task_types.len()`, when `default_arrival_rates.len()` differs from
    /// the number of workflows, or when either list is empty.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        task_types: Vec<TaskTypeDef>,
        workflows: Vec<WorkflowDef>,
        default_consumer_budget: usize,
        default_arrival_rates: Vec<f64>,
    ) -> Self {
        assert!(!task_types.is_empty(), "ensemble needs task types");
        assert!(!workflows.is_empty(), "ensemble needs workflows");
        assert_eq!(
            default_arrival_rates.len(),
            workflows.len(),
            "one arrival rate per workflow type"
        );
        for wf in &workflows {
            for &tt in wf.dag.task_types() {
                assert!(
                    tt.index() < task_types.len(),
                    "workflow '{}' references unknown task type {}",
                    wf.name,
                    tt
                );
            }
        }
        Ensemble {
            name: name.into(),
            task_types,
            workflows,
            default_consumer_budget,
            default_arrival_rates,
        }
    }

    /// The Material Science Data ensemble (paper §VI-A1): 3 workflow types
    /// over 4 task types, consumer budget 14.
    ///
    /// DAG shapes are a reconstruction (see `DESIGN.md` §3): the paper only
    /// states the counts and that task types are shared across workflows.
    #[must_use]
    pub fn msd() -> Self {
        let t = TaskTypeId::new;
        let task_types = vec![
            TaskTypeDef::new("A", 2.0, 0.5),
            TaskTypeDef::new("B", 3.0, 0.5),
            TaskTypeDef::new("C", 4.0, 0.5),
            TaskTypeDef::new("D", 2.5, 0.5),
        ];
        let workflows = vec![
            WorkflowDef {
                name: "Type1".to_string(),
                // A → B → C
                dag: Dag::chain(vec![t(0), t(1), t(2)]).expect("static DAG"),
            },
            WorkflowDef {
                name: "Type2".to_string(),
                // A → C → D
                dag: Dag::chain(vec![t(0), t(2), t(3)]).expect("static DAG"),
            },
            WorkflowDef {
                name: "Type3".to_string(),
                // B → (C ∥ D): fan-out, both branches must finish.
                dag: Dag::new(vec![t(1), t(2), t(3)], vec![(0, 1), (0, 2)]).expect("static DAG"),
            },
        ];
        Ensemble::new("MSD", task_types, workflows, 14, vec![0.30, 0.30, 0.30])
    }

    /// The LIGO inspiral-analysis ensemble (paper §VI-A1): 4 workflow types
    /// (DataFind, CAT, Full, Injection) over 9 task types, consumer budget 30.
    ///
    /// Stage names follow Juve et al.'s LIGO characterisation; Coire is shared
    /// by CAT/Full/Injection, matching the paper's §VI-D observation that the
    /// learnt policy defers Coire under large bursts.
    #[must_use]
    pub fn ligo() -> Self {
        let t = TaskTypeId::new;
        // 0 DataFind, 1 TmpltBank, 2 Inspiral, 3 Thinca, 4 TrigBank,
        // 5 InspiralVeto, 6 Sire, 7 Coire, 8 Inject
        let task_types = vec![
            TaskTypeDef::new("DataFind", 3.0, 0.5),
            TaskTypeDef::new("TmpltBank", 5.0, 0.5),
            TaskTypeDef::new("Inspiral", 12.0, 0.6),
            TaskTypeDef::new("Thinca", 4.0, 0.5),
            TaskTypeDef::new("TrigBank", 3.0, 0.5),
            TaskTypeDef::new("InspiralVeto", 6.0, 0.5),
            TaskTypeDef::new("Sire", 2.0, 0.4),
            TaskTypeDef::new("Coire", 5.0, 0.5),
            TaskTypeDef::new("Inject", 2.0, 0.4),
        ];
        let workflows = vec![
            WorkflowDef {
                name: "DataFind".to_string(),
                // DataFind → TmpltBank → Inspiral → Sire
                dag: Dag::chain(vec![t(0), t(1), t(2), t(6)]).expect("static DAG"),
            },
            WorkflowDef {
                name: "CAT".to_string(),
                // DataFind → TmpltBank → Inspiral → Thinca → Coire
                dag: Dag::chain(vec![t(0), t(1), t(2), t(3), t(7)]).expect("static DAG"),
            },
            WorkflowDef {
                name: "Full".to_string(),
                // DataFind → TmpltBank → Inspiral → Thinca
                //   → (TrigBank ∥ InspiralVeto) → Sire → Coire
                dag: Dag::new(
                    vec![t(0), t(1), t(2), t(3), t(4), t(5), t(6), t(7)],
                    vec![
                        (0, 1),
                        (1, 2),
                        (2, 3),
                        (3, 4),
                        (3, 5),
                        (4, 6),
                        (5, 6),
                        (6, 7),
                    ],
                )
                .expect("static DAG"),
            },
            WorkflowDef {
                name: "Injection".to_string(),
                // Inject → TmpltBank → Inspiral → Thinca → TrigBank → Sire → Coire
                dag: Dag::chain(vec![t(8), t(1), t(2), t(3), t(4), t(6), t(7)])
                    .expect("static DAG"),
            },
        ];
        Ensemble::new(
            "LIGO",
            task_types,
            workflows,
            30,
            vec![0.15, 0.15, 0.15, 0.15],
        )
    }

    /// A GPU inference-serving ensemble in the style of KIS-S: three request
    /// classes share CPU-side Frontend/Preprocess/Postprocess stages but hit
    /// the GPU at different batch sizes. GPU service time follows the usual
    /// linear batching model `t(b) = t0 + c·b` with `t0 = 2.0 s` and
    /// `c = 0.5 s` (batch sizes 1, 8, and 32), modelled as three distinct
    /// task types so each batch tier gets its own queue and consumer pool.
    ///
    /// Batching amortises the fixed cost: per-request GPU time is 2.5 s at
    /// b=1 but only 0.5625 s at b=32, which is exactly the trade-off a
    /// resource allocator must navigate when interactive traffic spikes.
    #[must_use]
    pub fn gpu_serve() -> Self {
        let t = TaskTypeId::new;
        // 0 Frontend, 1 Preprocess, 2 GpuBatch1, 3 GpuBatch8, 4 GpuBatch32,
        // 5 Postprocess. GPU stages have low CV (batch execution is regular);
        // CPU stages keep the usual 0.4.
        let task_types = vec![
            TaskTypeDef::new("Frontend", 1.0, 0.4),
            TaskTypeDef::new("Preprocess", 1.5, 0.4),
            TaskTypeDef::new("GpuBatch1", 2.5, 0.2), // t(1)  = 2.0 + 0.5·1
            TaskTypeDef::new("GpuBatch8", 6.0, 0.2), // t(8)  = 2.0 + 0.5·8
            TaskTypeDef::new("GpuBatch32", 18.0, 0.2), // t(32) = 2.0 + 0.5·32
            TaskTypeDef::new("Postprocess", 1.0, 0.4),
        ];
        let workflows = vec![
            WorkflowDef {
                name: "Interactive".to_string(),
                // Frontend → Preprocess → GpuBatch1 → Postprocess
                dag: Dag::chain(vec![t(0), t(1), t(2), t(5)]).expect("static DAG"),
            },
            WorkflowDef {
                name: "MicroBatch".to_string(),
                // Frontend → Preprocess → GpuBatch8 → Postprocess
                dag: Dag::chain(vec![t(0), t(1), t(3), t(5)]).expect("static DAG"),
            },
            WorkflowDef {
                name: "Bulk".to_string(),
                // Frontend → Preprocess → GpuBatch32 → Postprocess
                dag: Dag::chain(vec![t(0), t(1), t(4), t(5)]).expect("static DAG"),
            },
        ];
        // Offered load ≈ 7.2 + 4.75 + 3.2 ≈ 15.2 consumer-seconds/s against
        // a budget of 24: sufficient but not redundant, like MSD/LIGO.
        Ensemble::new("GPU-SERVE", task_types, workflows, 24, vec![1.2, 0.5, 0.15])
    }

    /// A deterministic scaled-up ensemble for benchmarks and stress tests:
    /// `num_task_types` microservices shared by `num_workflow_types`
    /// workflows (alternating 4-node chains and fan-out/join diamonds, task
    /// types assigned round-robin with a per-workflow stride so they are
    /// shared across workflows like in MSD/LIGO).
    ///
    /// Service-time means are spread deterministically over
    /// `[0.5, 1.5) × mean_service_secs` (no RNG: the same arguments always
    /// produce the identical ensemble). Default arrival rates are scaled so
    /// the offered load is half the consumer budget, each workflow type
    /// contributing equally.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero, the budget is zero, or
    /// `mean_service_secs` is not strictly positive.
    #[must_use]
    pub fn synthetic(
        num_task_types: usize,
        num_workflow_types: usize,
        consumer_budget: usize,
        mean_service_secs: f64,
    ) -> Self {
        assert!(num_task_types > 0, "synthetic ensemble needs task types");
        assert!(num_workflow_types > 0, "synthetic ensemble needs workflows");
        assert!(consumer_budget > 0, "synthetic ensemble needs a budget");
        assert!(
            mean_service_secs > 0.0,
            "mean service time must be positive"
        );
        let task_types: Vec<TaskTypeDef> = (0..num_task_types)
            .map(|j| {
                // Knuth multiplicative hash spreads the means over
                // [0.5, 1.5) without an RNG.
                let jitter = 0.5 + (j.wrapping_mul(2_654_435_761) % 1024) as f64 / 1024.0;
                TaskTypeDef::new(format!("S{j}"), mean_service_secs * jitter, 0.5)
            })
            .collect();
        let t = TaskTypeId::new;
        let workflows: Vec<WorkflowDef> = (0..num_workflow_types)
            .map(|i| {
                let task_at = |k: usize| t((i * 7 + k * 3) % num_task_types);
                let nodes = vec![task_at(0), task_at(1), task_at(2), task_at(3)];
                let dag = if i % 2 == 0 {
                    Dag::chain(nodes)
                } else {
                    // root → (b ∥ c) → join
                    Dag::new(nodes, vec![(0, 1), (0, 2), (1, 3), (2, 3)])
                }
                .expect("generated DAG is well-formed");
                WorkflowDef {
                    name: format!("W{i}"),
                    dag,
                }
            })
            .collect();
        let target_load = 0.5 * consumer_budget as f64;
        let rates: Vec<f64> = workflows
            .iter()
            .map(|w| {
                let demand: f64 = w
                    .dag
                    .task_types()
                    .iter()
                    .map(|&tt| task_types[tt.index()].mean_service_secs)
                    .sum();
                target_load / (num_workflow_types as f64 * demand)
            })
            .collect();
        Ensemble::new(
            format!("SYN-{num_task_types}x{num_workflow_types}"),
            task_types,
            workflows,
            consumer_budget,
            rates,
        )
    }

    /// The ensemble's name (`"MSD"`, `"LIGO"`, or a custom label).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of task types `J`.
    #[must_use]
    pub fn num_task_types(&self) -> usize {
        self.task_types.len()
    }

    /// Number of workflow types `N`.
    #[must_use]
    pub fn num_workflow_types(&self) -> usize {
        self.workflows.len()
    }

    /// Definition of task type `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn task_type(&self, j: TaskTypeId) -> &TaskTypeDef {
        &self.task_types[j.index()]
    }

    /// All task-type definitions, indexed by [`TaskTypeId`].
    #[must_use]
    pub fn task_types(&self) -> &[TaskTypeDef] {
        &self.task_types
    }

    /// Definition of workflow type `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn workflow(&self, i: WorkflowTypeId) -> &WorkflowDef {
        &self.workflows[i.index()]
    }

    /// All workflow definitions, indexed by [`WorkflowTypeId`].
    #[must_use]
    pub fn workflows(&self) -> &[WorkflowDef] {
        &self.workflows
    }

    /// Looks up a task type by name.
    #[must_use]
    pub fn task_type_by_name(&self, name: &str) -> Option<TaskTypeId> {
        self.task_types
            .iter()
            .position(|t| t.name == name)
            .map(TaskTypeId::new)
    }

    /// Looks up a workflow type by name.
    #[must_use]
    pub fn workflow_by_name(&self, name: &str) -> Option<WorkflowTypeId> {
        self.workflows
            .iter()
            .position(|w| w.name == name)
            .map(WorkflowTypeId::new)
    }

    /// The total-consumer constraint `C` used by the paper for this ensemble
    /// (14 for MSD, 30 for LIGO).
    #[must_use]
    pub fn default_consumer_budget(&self) -> usize {
        self.default_consumer_budget
    }

    /// Default background Poisson arrival rate (requests/s) per workflow
    /// type.
    #[must_use]
    pub fn default_arrival_rates(&self) -> &[f64] {
        &self.default_arrival_rates
    }

    /// Iterates over the workflow types whose DAG uses task type `j`.
    pub fn workflows_using(&self, j: TaskTypeId) -> impl Iterator<Item = WorkflowTypeId> + '_ {
        self.workflows
            .iter()
            .enumerate()
            .filter(move |(_, w)| w.dag.task_types().contains(&j))
            .map(|(i, _)| WorkflowTypeId::new(i))
    }

    /// Renders every workflow's DAG as one Graphviz DOT document with
    /// human-readable task names — handy for documenting custom ensembles.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let names: Vec<String> = self.task_types.iter().map(|t| t.name.clone()).collect();
        let mut out = String::new();
        for wf in &self.workflows {
            out.push_str(
                &wf.dag
                    .to_dot(&wf.name.replace([' ', '-'], "_"), Some(&names)),
            );
        }
        out
    }

    /// Total expected service demand (consumer-seconds per second) induced by
    /// the given per-workflow arrival rates — a load estimate used to sanity
    /// check consumer budgets.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != self.num_workflow_types()`.
    #[must_use]
    pub fn offered_load(&self, rates: &[f64]) -> f64 {
        assert_eq!(rates.len(), self.workflows.len());
        self.workflows
            .iter()
            .zip(rates)
            .map(|(w, &rate)| {
                let demand: f64 = w
                    .dag
                    .task_types()
                    .iter()
                    .map(|&tt| self.task_types[tt.index()].mean_service_secs)
                    .sum();
                rate * demand
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msd_matches_paper_counts() {
        let e = Ensemble::msd();
        assert_eq!(e.num_task_types(), 4);
        assert_eq!(e.num_workflow_types(), 3);
        assert_eq!(e.default_consumer_budget(), 14);
        assert_eq!(e.name(), "MSD");
    }

    #[test]
    fn ligo_matches_paper_counts() {
        let e = Ensemble::ligo();
        assert_eq!(e.num_task_types(), 9);
        assert_eq!(e.num_workflow_types(), 4);
        assert_eq!(e.default_consumer_budget(), 30);
        for name in ["DataFind", "CAT", "Full", "Injection"] {
            assert!(e.workflow_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn coire_shared_by_cat_full_injection() {
        let e = Ensemble::ligo();
        let coire = e.task_type_by_name("Coire").unwrap();
        let users: Vec<String> = e
            .workflows_using(coire)
            .map(|i| e.workflow(i).name.clone())
            .collect();
        assert_eq!(users, vec!["CAT", "Full", "Injection"]);
    }

    #[test]
    fn msd_task_sharing_causes_cascades() {
        let e = Ensemble::msd();
        let c = e.task_type_by_name("C").unwrap();
        assert_eq!(e.workflows_using(c).count(), 3);
        let a = e.task_type_by_name("A").unwrap();
        assert_eq!(e.workflows_using(a).count(), 2);
    }

    #[test]
    fn gpu_serve_matches_model_counts() {
        let e = Ensemble::gpu_serve();
        assert_eq!(e.num_task_types(), 6);
        assert_eq!(e.num_workflow_types(), 3);
        assert_eq!(e.default_consumer_budget(), 24);
        assert_eq!(e.name(), "GPU-SERVE");
        for name in ["Interactive", "MicroBatch", "Bulk"] {
            assert!(e.workflow_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn gpu_serve_batch_tiers_follow_linear_batching_model() {
        // t(b) = t0 + c·b with t0 = 2.0, c = 0.5.
        let e = Ensemble::gpu_serve();
        for (name, b) in [("GpuBatch1", 1.0), ("GpuBatch8", 8.0), ("GpuBatch32", 32.0)] {
            let j = e.task_type_by_name(name).unwrap();
            let mean = e.task_type(j).mean_service_secs;
            assert!(
                (mean - (2.0 + 0.5 * b)).abs() < 1e-12,
                "{name}: {mean} != t({b})"
            );
        }
        // CPU stages are shared by all three request classes.
        for name in ["Frontend", "Preprocess", "Postprocess"] {
            let j = e.task_type_by_name(name).unwrap();
            assert_eq!(e.workflows_using(j).count(), 3, "{name} not shared");
        }
    }

    #[test]
    fn default_load_leaves_burst_headroom() {
        // The paper picks budgets that are "sufficient but not redundant":
        // offered load should sit well below the budget but above half of it.
        for e in [Ensemble::msd(), Ensemble::ligo(), Ensemble::gpu_serve()] {
            let load = e.offered_load(e.default_arrival_rates());
            let budget = e.default_consumer_budget() as f64;
            assert!(
                load > 0.4 * budget && load < 0.9 * budget,
                "{}: load {load:.2} vs budget {budget}",
                e.name()
            );
        }
    }

    #[test]
    fn ligo_full_has_fan_out_join() {
        let e = Ensemble::ligo();
        let full = e.workflow(e.workflow_by_name("Full").unwrap());
        // Sire joins TrigBank and InspiralVeto.
        let sire_node = 6;
        assert_eq!(full.dag.fan_in(sire_node), 2);
        assert_eq!(full.dag.depth(), 7);
    }

    #[test]
    #[should_panic(expected = "references unknown task type")]
    fn unknown_task_type_panics() {
        let bad = WorkflowDef {
            name: "bad".into(),
            dag: Dag::chain(vec![TaskTypeId::new(5)]).unwrap(),
        };
        let _ = Ensemble::new(
            "X",
            vec![TaskTypeDef::new("only", 1.0, 0.1)],
            vec![bad],
            4,
            vec![0.1],
        );
    }

    #[test]
    #[should_panic(expected = "one arrival rate per workflow type")]
    fn rate_count_mismatch_panics() {
        let wf = WorkflowDef {
            name: "w".into(),
            dag: Dag::chain(vec![TaskTypeId::new(0)]).unwrap(),
        };
        let _ = Ensemble::new(
            "X",
            vec![TaskTypeDef::new("t", 1.0, 0.1)],
            vec![wf],
            4,
            vec![0.1, 0.2],
        );
    }

    #[test]
    fn dot_export_covers_every_workflow() {
        let e = Ensemble::ligo();
        let dot = e.to_dot();
        for wf in ["DataFind", "CAT", "Full", "Injection"] {
            assert!(dot.contains(&format!("digraph {wf}")), "missing {wf}");
        }
        assert!(dot.contains("Inspiral"));
        assert!(dot.contains("Coire"));
    }

    #[test]
    fn synthetic_is_deterministic_and_well_formed() {
        let a = Ensemble::synthetic(128, 64, 1024, 0.03);
        let b = Ensemble::synthetic(128, 64, 1024, 0.03);
        assert_eq!(a, b, "same arguments must produce the identical ensemble");
        assert_eq!(a.num_task_types(), 128);
        assert_eq!(a.num_workflow_types(), 64);
        assert_eq!(a.default_consumer_budget(), 1024);
        // Default rates put the offered load at half the budget.
        let load = a.offered_load(a.default_arrival_rates());
        assert!((load - 512.0).abs() < 1e-6, "load {load}");
        // Both DAG shapes appear, and fan-out workflows join correctly.
        assert_eq!(a.workflow(WorkflowTypeId::new(0)).dag.depth(), 4);
        let diamond = &a.workflow(WorkflowTypeId::new(1)).dag;
        assert_eq!(diamond.fan_in(3), 2);
    }

    #[test]
    fn synthetic_shares_task_types_across_workflows() {
        let e = Ensemble::synthetic(16, 12, 64, 1.0);
        let shared = (0..16)
            .filter(|&j| e.workflows_using(TaskTypeId::new(j)).count() > 1)
            .count();
        assert!(shared > 0, "synthetic ensembles must share task types");
    }

    #[test]
    fn serde_round_trip() {
        let e = Ensemble::ligo();
        let json = serde_json::to_string(&e).unwrap();
        let back: Ensemble = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
