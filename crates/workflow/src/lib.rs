//! Scientific-workflow definitions and workload generation.
//!
//! This crate models everything the MIRAS paper's *workloads* consist of:
//!
//! * [`TaskTypeId`] / [`WorkflowTypeId`] — typed indices for the `J` task
//!   types and `N` workflow types of an ensemble,
//! * [`Dag`] — the directed-acyclic task graph of one workflow type, with
//!   validation, topological ordering, and fan-in (join) bookkeeping,
//! * [`Ensemble`] — a set of workflow types over a shared set of task types,
//!   with the paper's two evaluation ensembles, [`Ensemble::msd`] (Material
//!   Science Data: 3 workflows over 4 task types) and [`Ensemble::ligo`]
//!   (LIGO inspiral analysis: 4 workflows over 9 task types),
//! * [`arrivals`] — Poisson request processes, burst injections, and merged
//!   arrival traces, mirroring §VI-A1 and §VI-D of the paper.
//!
//! The DAG shapes are reconstructions (the paper never prints them); see
//! `DESIGN.md` §3 for the rationale.
//!
//! # Examples
//!
//! ```
//! use workflow::Ensemble;
//!
//! let msd = Ensemble::msd();
//! assert_eq!(msd.num_task_types(), 4);
//! assert_eq!(msd.num_workflow_types(), 3);
//! // Task type C is shared by all three MSD workflow types.
//! let c = msd.task_type_by_name("C").unwrap();
//! let sharing = msd.workflows_using(c).count();
//! assert_eq!(sharing, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
mod dag;
mod ensemble;
mod ids;
mod modulation;

pub use arrivals::{Arrival, ArrivalTrace, BurstSpec, PoissonProcess};
pub use dag::{Dag, DagError};
pub use ensemble::{Ensemble, TaskTypeDef, WorkflowDef};
pub use ids::{TaskTypeId, WorkflowTypeId};
pub use modulation::{ModulatedPoisson, RatePattern};
