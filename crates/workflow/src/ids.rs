//! Typed indices for task types and workflow types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a task type (a "microservice") within an ensemble.
///
/// The MIRAS paper indexes task types `1 ≤ j ≤ J`; we use zero-based indices.
/// Newtyping prevents mixing task-type and workflow-type indices — the two
/// index spaces overlap numerically but mean different things.
///
/// # Examples
///
/// ```
/// use workflow::TaskTypeId;
///
/// let j = TaskTypeId::new(2);
/// assert_eq!(j.index(), 2);
/// assert_eq!(j.to_string(), "task#2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskTypeId(usize);

impl TaskTypeId {
    /// Wraps a zero-based task-type index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        TaskTypeId(index)
    }

    /// The underlying zero-based index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

impl From<TaskTypeId> for usize {
    fn from(id: TaskTypeId) -> usize {
        id.0
    }
}

/// Index of a workflow type within an ensemble.
///
/// The MIRAS paper indexes workflow types `1 ≤ i ≤ N`; we use zero-based
/// indices.
///
/// # Examples
///
/// ```
/// use workflow::WorkflowTypeId;
///
/// let i = WorkflowTypeId::new(0);
/// assert_eq!(i.index(), 0);
/// assert_eq!(i.to_string(), "workflow#0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct WorkflowTypeId(usize);

impl WorkflowTypeId {
    /// Wraps a zero-based workflow-type index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        WorkflowTypeId(index)
    }

    /// The underlying zero-based index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for WorkflowTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workflow#{}", self.0)
    }
}

impl From<WorkflowTypeId> for usize {
    fn from(id: WorkflowTypeId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_index() {
        assert_eq!(TaskTypeId::new(7).index(), 7);
        assert_eq!(WorkflowTypeId::new(3).index(), 3);
        assert_eq!(usize::from(TaskTypeId::new(9)), 9);
        assert_eq!(usize::from(WorkflowTypeId::new(9)), 9);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = TaskTypeId::new(1);
        let b = TaskTypeId::new(2);
        assert!(a < b);
        let set: HashSet<_> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskTypeId::new(0).to_string(), "task#0");
        assert_eq!(WorkflowTypeId::new(5).to_string(), "workflow#5");
    }
}
