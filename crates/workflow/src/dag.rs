//! Directed acyclic task graphs for individual workflow types.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::TaskTypeId;

/// Errors produced when constructing or validating a [`Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The graph has no nodes.
    Empty,
    /// An edge referenced a node index outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge connects a node to itself.
    SelfLoop(usize),
    /// The same edge was specified more than once.
    DuplicateEdge(usize, usize),
    /// The edge set contains a cycle, so the graph is not a DAG.
    Cycle,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "workflow graph has no nodes"),
            DagError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "edge references node {node} but the graph has {num_nodes} nodes"
            ),
            DagError::SelfLoop(n) => write!(f, "node {n} has a self-loop"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            DagError::Cycle => write!(f, "task graph contains a cycle"),
        }
    }
}

impl std::error::Error for DagError {}

/// The task graph of one workflow type.
///
/// Nodes are *task instances*; each node is labelled with the [`TaskTypeId`]
/// of the microservice that processes it. Edges are precedence constraints:
/// a node becomes ready once **all** of its predecessors have completed
/// (AND-join semantics, as in scientific workflow systems).
///
/// The structure is immutable after construction and validated to be a
/// non-empty DAG.
///
/// # Examples
///
/// A diamond `0 → {1,2} → 3`:
///
/// ```
/// use workflow::{Dag, TaskTypeId};
///
/// let t = |i| TaskTypeId::new(i);
/// let dag = Dag::new(vec![t(0), t(1), t(2), t(0)],
///                    vec![(0, 1), (0, 2), (1, 3), (2, 3)])?;
/// assert_eq!(dag.entry_nodes(), &[0]);
/// assert_eq!(dag.fan_in(3), 2);
/// assert_eq!(dag.successors(0), &[1, 2]);
/// # Ok::<(), workflow::DagError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    task_types: Vec<TaskTypeId>,
    edges: Vec<(usize, usize)>,
    successors: Vec<Vec<usize>>,
    fan_in: Vec<usize>,
    entry_nodes: Vec<usize>,
    exit_nodes: Vec<usize>,
    topo_order: Vec<usize>,
}

impl Dag {
    /// Builds a DAG from node labels and precedence edges.
    ///
    /// # Errors
    ///
    /// Returns a [`DagError`] when the node set is empty, an edge references
    /// a missing node, an edge is a self-loop or duplicated, or the edges
    /// form a cycle.
    pub fn new(task_types: Vec<TaskTypeId>, edges: Vec<(usize, usize)>) -> Result<Self, DagError> {
        let n = task_types.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        let mut successors = vec![Vec::new(); n];
        let mut fan_in = vec![0usize; n];
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            for node in [a, b] {
                if node >= n {
                    return Err(DagError::NodeOutOfRange { node, num_nodes: n });
                }
            }
            if a == b {
                return Err(DagError::SelfLoop(a));
            }
            if !seen.insert((a, b)) {
                return Err(DagError::DuplicateEdge(a, b));
            }
            successors[a].push(b);
            fan_in[b] += 1;
        }

        // Kahn's algorithm: validates acyclicity and yields a deterministic
        // topological order (ready nodes processed in index order).
        let mut indegree = fan_in.clone();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo_order = Vec::with_capacity(n);
        let mut cursor = 0;
        ready.sort_unstable();
        while cursor < ready.len() {
            let u = ready[cursor];
            cursor += 1;
            topo_order.push(u);
            for &v in &successors[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    ready.push(v);
                }
            }
        }
        if topo_order.len() != n {
            return Err(DagError::Cycle);
        }

        let entry_nodes: Vec<usize> = (0..n).filter(|&i| fan_in[i] == 0).collect();
        let exit_nodes: Vec<usize> = (0..n).filter(|&i| successors[i].is_empty()).collect();

        Ok(Dag {
            task_types,
            edges,
            successors,
            fan_in,
            entry_nodes,
            exit_nodes,
            topo_order,
        })
    }

    /// Builds a linear chain over the given task types (a pipeline workflow).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Empty`] when `task_types` is empty.
    pub fn chain(task_types: Vec<TaskTypeId>) -> Result<Self, DagError> {
        let edges = (1..task_types.len()).map(|i| (i - 1, i)).collect();
        Dag::new(task_types, edges)
    }

    /// Number of task nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.task_types.len()
    }

    /// The task type processed at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.num_nodes()`.
    #[must_use]
    pub fn task_type(&self, node: usize) -> TaskTypeId {
        self.task_types[node]
    }

    /// All node labels, indexed by node.
    #[must_use]
    pub fn task_types(&self) -> &[TaskTypeId] {
        &self.task_types
    }

    /// The precedence edges as `(from, to)` node pairs.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Nodes with no predecessors — the tasks released when a workflow
    /// request arrives.
    #[must_use]
    pub fn entry_nodes(&self) -> &[usize] {
        &self.entry_nodes
    }

    /// Nodes with no successors — the workflow is complete when all of these
    /// have finished.
    #[must_use]
    pub fn exit_nodes(&self) -> &[usize] {
        &self.exit_nodes
    }

    /// Direct successors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.num_nodes()`.
    #[must_use]
    pub fn successors(&self, node: usize) -> &[usize] {
        &self.successors[node]
    }

    /// Number of predecessors of `node` (the AND-join width).
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.num_nodes()`.
    #[must_use]
    pub fn fan_in(&self, node: usize) -> usize {
        self.fan_in[node]
    }

    /// A deterministic topological ordering of the nodes.
    #[must_use]
    pub fn topo_order(&self) -> &[usize] {
        &self.topo_order
    }

    /// Length (in nodes) of the longest path through the DAG — the workflow's
    /// critical-path depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut dist = vec![1usize; self.num_nodes()];
        for &u in &self.topo_order {
            for &v in &self.successors[u] {
                dist[v] = dist[v].max(dist[u] + 1);
            }
        }
        dist.into_iter().max().unwrap_or(0)
    }

    /// Renders the DAG in Graphviz DOT format. Node labels come from
    /// `task_names` when provided (indexed by [`TaskTypeId`]), otherwise the
    /// numeric task-type index is used.
    ///
    /// # Examples
    ///
    /// ```
    /// use workflow::{Dag, TaskTypeId};
    ///
    /// let dag = Dag::chain(vec![TaskTypeId::new(0), TaskTypeId::new(1)])?;
    /// let dot = dag.to_dot("wf", None);
    /// assert!(dot.contains("digraph wf"));
    /// assert!(dot.contains("n0 -> n1"));
    /// # Ok::<(), workflow::DagError>(())
    /// ```
    #[must_use]
    pub fn to_dot(&self, name: &str, task_names: Option<&[String]>) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        for (node, &tt) in self.task_types.iter().enumerate() {
            let label = task_names
                .and_then(|names| names.get(tt.index()).cloned())
                .unwrap_or_else(|| format!("task{}", tt.index()));
            let _ = writeln!(out, "  n{node} [label=\"{label}\"];");
        }
        for &(a, b) in &self.edges {
            let _ = writeln!(out, "  n{a} -> n{b};");
        }
        out.push_str("}\n");
        out
    }

    /// Iterates over the distinct task types used by this workflow.
    pub fn distinct_task_types(&self) -> impl Iterator<Item = TaskTypeId> + '_ {
        let mut seen = std::collections::BTreeSet::new();
        self.task_types
            .iter()
            .copied()
            .filter(move |t| seen.insert(*t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskTypeId {
        TaskTypeId::new(i)
    }

    #[test]
    fn chain_builds_pipeline() {
        let d = Dag::chain(vec![t(0), t(1), t(2)]).unwrap();
        assert_eq!(d.entry_nodes(), &[0]);
        assert_eq!(d.exit_nodes(), &[2]);
        assert_eq!(d.depth(), 3);
        assert_eq!(d.topo_order(), &[0, 1, 2]);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Dag::new(vec![], vec![]), Err(DagError::Empty));
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = Dag::new(vec![t(0)], vec![(0, 1)]).unwrap_err();
        assert_eq!(
            err,
            DagError::NodeOutOfRange {
                node: 1,
                num_nodes: 1
            }
        );
    }

    #[test]
    fn self_loop_rejected() {
        let err = Dag::new(vec![t(0), t(1)], vec![(1, 1)]).unwrap_err();
        assert_eq!(err, DagError::SelfLoop(1));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let err = Dag::new(vec![t(0), t(1)], vec![(0, 1), (0, 1)]).unwrap_err();
        assert_eq!(err, DagError::DuplicateEdge(0, 1));
    }

    #[test]
    fn cycle_rejected() {
        let err = Dag::new(vec![t(0), t(1), t(2)], vec![(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert_eq!(err, DagError::Cycle);
    }

    #[test]
    fn diamond_join_semantics() {
        let d = Dag::new(
            vec![t(0), t(1), t(2), t(3)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        assert_eq!(d.fan_in(3), 2);
        assert_eq!(d.entry_nodes(), &[0]);
        assert_eq!(d.exit_nodes(), &[3]);
        assert_eq!(d.depth(), 3);
    }

    #[test]
    fn multiple_entries_and_exits() {
        // 0 → 2, 1 → 2, 2 → {3, 4}
        let d = Dag::new(vec![t(0); 5], vec![(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        assert_eq!(d.entry_nodes(), &[0, 1]);
        assert_eq!(d.exit_nodes(), &[3, 4]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = Dag::new(vec![t(0); 6], vec![(5, 4), (4, 3), (3, 2), (2, 1), (1, 0)]).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &n) in d.topo_order().iter().enumerate() {
                p[n] = i;
            }
            p
        };
        for &(a, b) in d.edges() {
            assert!(pos[a] < pos[b]);
        }
    }

    #[test]
    fn distinct_task_types_dedupes() {
        let d = Dag::new(vec![t(1), t(1), t(2)], vec![(0, 1), (1, 2)]).unwrap();
        let distinct: Vec<_> = d.distinct_task_types().collect();
        assert_eq!(distinct, vec![t(1), t(2)]);
    }

    #[test]
    fn dot_export_contains_all_nodes_and_edges() {
        let d = Dag::new(
            vec![t(0), t(1), t(2), t(0)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let dot = d.to_dot("diamond", Some(&names));
        assert!(dot.starts_with("digraph diamond {"));
        for edge in ["n0 -> n1", "n0 -> n2", "n1 -> n3", "n2 -> n3"] {
            assert!(dot.contains(edge), "missing {edge} in {dot}");
        }
        assert!(dot.contains("label=\"A\""));
        assert!(dot.matches("label=\"A\"").count() == 2); // nodes 0 and 3
    }

    #[test]
    fn depth_of_parallel_graph_is_one() {
        let d = Dag::new(vec![t(0), t(1), t(2)], vec![]).unwrap();
        assert_eq!(d.depth(), 1);
        assert_eq!(d.entry_nodes().len(), 3);
    }
}
