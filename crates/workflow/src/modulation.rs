//! Time-varying request processes.
//!
//! The paper motivates MIRAS with "the variability of dynamic workloads":
//! request rates that change over time, not just stationary Poisson
//! background plus one-shot bursts. [`RatePattern`] describes how a base
//! rate evolves over the run and [`ModulatedPoisson`] samples a
//! non-homogeneous Poisson process under it (by thinning), so evaluation
//! scenarios can include diurnal waves, ramps, and step changes.

use desim::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Arrival, ArrivalTrace, WorkflowTypeId};

/// A multiplicative modulation of a base arrival rate over time.
///
/// The instantaneous rate of workflow type `i` is
/// `base_rates[i] × pattern.factor(t)`; factors are non-negative and
/// bounded, so thinning applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RatePattern {
    /// No modulation: the plain homogeneous Poisson process.
    Constant,
    /// A sinusoidal wave: `1 + amplitude · sin(2πt / period)`, clamped at 0.
    /// With a 24 h period this is the classic diurnal load curve.
    Sine {
        /// Length of one full cycle.
        #[serde(with = "simtime_serde")]
        period: SimTime,
        /// Relative swing around the base rate (0.5 ⇒ ±50%).
        amplitude: f64,
    },
    /// Linear ramp from `from_factor` to `to_factor` over `[0, duration]`,
    /// constant at `to_factor` afterwards.
    Ramp {
        /// Multiplier at time zero.
        from_factor: f64,
        /// Multiplier at and after `duration`.
        to_factor: f64,
        /// How long the ramp lasts.
        #[serde(with = "simtime_serde")]
        duration: SimTime,
    },
    /// A step change: `1` before `at`, `factor` afterwards (e.g. a flash
    /// crowd arriving, or a tenant going offline).
    Step {
        /// When the step happens.
        #[serde(with = "simtime_serde")]
        at: SimTime,
        /// Multiplier after the step.
        factor: f64,
    },
}

// `SimTime` lives in serde-free `desim`; serialize through microseconds.
mod simtime_serde {
    use desim::SimTime;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(t: &SimTime, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(t.as_micros())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<SimTime, D::Error> {
        Ok(SimTime::from_micros(u64::deserialize(d)?))
    }
}

impl RatePattern {
    /// The rate multiplier at time `t` (non-negative).
    #[must_use]
    pub fn factor(&self, t: SimTime) -> f64 {
        match self {
            RatePattern::Constant => 1.0,
            RatePattern::Sine { period, amplitude } => {
                let phase = 2.0 * std::f64::consts::PI * t.as_secs_f64() / period.as_secs_f64();
                (1.0 + amplitude * phase.sin()).max(0.0)
            }
            RatePattern::Ramp {
                from_factor,
                to_factor,
                duration,
            } => {
                if duration.is_zero() || t >= *duration {
                    *to_factor
                } else {
                    let progress = t.as_secs_f64() / duration.as_secs_f64();
                    (from_factor + (to_factor - from_factor) * progress).max(0.0)
                }
            }
            RatePattern::Step { at, factor } => {
                if t < *at {
                    1.0
                } else {
                    factor.max(0.0)
                }
            }
        }
    }

    /// An upper bound on the multiplier over all times (used for thinning).
    #[must_use]
    pub fn max_factor(&self) -> f64 {
        match self {
            RatePattern::Constant => 1.0,
            RatePattern::Sine { amplitude, .. } => 1.0 + amplitude.abs(),
            RatePattern::Ramp {
                from_factor,
                to_factor,
                ..
            } => from_factor.max(*to_factor).max(0.0),
            RatePattern::Step { factor, .. } => factor.max(1.0),
        }
    }
}

/// A non-homogeneous Poisson request process: per-type base rates modulated
/// by a shared [`RatePattern`], sampled exactly via thinning.
///
/// # Examples
///
/// ```
/// use desim::SimTime;
/// use rand::SeedableRng;
/// use workflow::{ModulatedPoisson, RatePattern};
///
/// let process = ModulatedPoisson::new(
///     vec![0.5, 0.5],
///     RatePattern::Step { at: SimTime::from_secs(100), factor: 3.0 },
/// );
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let trace = process.generate(SimTime::from_secs(200), &mut rng);
/// let before = trace.arrivals().iter().filter(|a| a.time < SimTime::from_secs(100)).count();
/// let after = trace.len() - before;
/// assert!(after > before, "the step should triple the arrival rate");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModulatedPoisson {
    base_rates: Vec<f64>,
    pattern: RatePattern,
}

impl ModulatedPoisson {
    /// Creates the process from per-type base rates and a shared pattern.
    ///
    /// # Panics
    ///
    /// Panics if any base rate is negative or non-finite.
    #[must_use]
    pub fn new(base_rates: Vec<f64>, pattern: RatePattern) -> Self {
        for &r in &base_rates {
            assert!(r.is_finite() && r >= 0.0, "arrival rate must be >= 0");
        }
        ModulatedPoisson {
            base_rates,
            pattern,
        }
    }

    /// The base (unmodulated) rates.
    #[must_use]
    pub fn base_rates(&self) -> &[f64] {
        &self.base_rates
    }

    /// The modulation pattern.
    #[must_use]
    pub fn pattern(&self) -> &RatePattern {
        &self.pattern
    }

    /// Samples arrivals over `[0, horizon)` with Lewis–Shedler thinning.
    pub fn generate<R: Rng + ?Sized>(&self, horizon: SimTime, rng: &mut R) -> ArrivalTrace {
        let max_factor = self.pattern.max_factor();
        let mut arrivals = Vec::new();
        if max_factor <= 0.0 {
            return ArrivalTrace::new();
        }
        for (i, &base) in self.base_rates.iter().enumerate() {
            if base <= 0.0 {
                continue;
            }
            let envelope = base * max_factor;
            let mut t = 0.0f64;
            loop {
                // Candidate from the homogeneous envelope process…
                t += -(1.0 - rng.gen::<f64>()).ln() / envelope;
                let at = SimTime::from_secs_f64(t);
                if at >= horizon {
                    break;
                }
                // …thinned by the instantaneous acceptance probability.
                let accept = self.pattern.factor(at) / max_factor;
                if rng.gen::<f64>() < accept {
                    arrivals.push(Arrival::new(at, WorkflowTypeId::new(i)));
                }
            }
        }
        arrivals.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_matches_plain_poisson_rate() {
        let p = ModulatedPoisson::new(vec![1.0], RatePattern::Constant);
        let mut rng = SmallRng::seed_from_u64(0);
        let n = p.generate(SimTime::from_secs(4_000), &mut rng).len() as f64;
        assert!((n - 4_000.0).abs() < 4.0 * 4_000.0f64.sqrt(), "n = {n}");
    }

    #[test]
    fn sine_produces_waves() {
        let period = SimTime::from_secs(1_000);
        let p = ModulatedPoisson::new(
            vec![2.0],
            RatePattern::Sine {
                period,
                amplitude: 0.9,
            },
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let trace = p.generate(SimTime::from_secs(1_000), &mut rng);
        // First half (sin > 0) must contain more arrivals than the second half.
        let first_half = trace
            .arrivals()
            .iter()
            .filter(|a| a.time < SimTime::from_secs(500))
            .count();
        let second_half = trace.len() - first_half;
        assert!(
            first_half > second_half + 100,
            "{first_half} vs {second_half}"
        );
    }

    #[test]
    fn ramp_increases_rate_over_time() {
        let p = ModulatedPoisson::new(
            vec![1.0],
            RatePattern::Ramp {
                from_factor: 0.2,
                to_factor: 2.0,
                duration: SimTime::from_secs(2_000),
            },
        );
        let mut rng = SmallRng::seed_from_u64(2);
        let trace = p.generate(SimTime::from_secs(2_000), &mut rng);
        let early = trace
            .arrivals()
            .iter()
            .filter(|a| a.time < SimTime::from_secs(500))
            .count();
        let late = trace
            .arrivals()
            .iter()
            .filter(|a| a.time >= SimTime::from_secs(1_500))
            .count();
        assert!(late > 2 * early, "{early} early vs {late} late");
    }

    #[test]
    fn step_factor_zero_silences_arrivals() {
        let p = ModulatedPoisson::new(
            vec![2.0],
            RatePattern::Step {
                at: SimTime::from_secs(100),
                factor: 0.0,
            },
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let trace = p.generate(SimTime::from_secs(1_000), &mut rng);
        assert!(trace
            .arrivals()
            .iter()
            .all(|a| a.time < SimTime::from_secs(100)));
    }

    #[test]
    fn factors_are_never_negative() {
        let patterns = [
            RatePattern::Sine {
                period: SimTime::from_secs(100),
                amplitude: 2.0, // over-modulated: clamped at zero
            },
            RatePattern::Ramp {
                from_factor: 1.0,
                to_factor: 0.0,
                duration: SimTime::from_secs(10),
            },
            RatePattern::Step {
                at: SimTime::from_secs(5),
                factor: 0.0,
            },
        ];
        for p in &patterns {
            for t in 0..200 {
                assert!(p.factor(SimTime::from_secs(t)) >= 0.0, "{p:?} at {t}");
            }
        }
    }

    #[test]
    fn max_factor_bounds_factor() {
        let patterns = [
            RatePattern::Constant,
            RatePattern::Sine {
                period: SimTime::from_secs(300),
                amplitude: 0.7,
            },
            RatePattern::Ramp {
                from_factor: 0.3,
                to_factor: 2.5,
                duration: SimTime::from_secs(100),
            },
            RatePattern::Step {
                at: SimTime::from_secs(50),
                factor: 4.0,
            },
        ];
        for p in &patterns {
            let max = p.max_factor();
            for t in 0..500 {
                assert!(p.factor(SimTime::from_secs(t)) <= max + 1e-12, "{p:?}");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = ModulatedPoisson::new(
            vec![0.4, 0.6],
            RatePattern::Sine {
                period: SimTime::from_secs(600),
                amplitude: 0.5,
            },
        );
        let json = serde_json::to_string(&p).unwrap();
        let back: ModulatedPoisson = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
