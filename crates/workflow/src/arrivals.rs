//! Workload generation: Poisson request processes, bursts, arrival traces.
//!
//! The paper drives its evaluation with (a) continuous workflow requests
//! sampled from a Poisson process (§VI-A1) and (b) request bursts injected at
//! the beginning of each evaluation run (§VI-D). [`PoissonProcess`] and
//! [`BurstSpec`] model those two generators; both produce an
//! [`ArrivalTrace`], a time-sorted list of workflow-request arrivals that the
//! emulator replays.

use desim::SimTime;
use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

use crate::WorkflowTypeId;

/// One workflow-request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// When the request enters the system.
    pub time: SimTime,
    /// Which workflow type is requested.
    pub workflow_type: WorkflowTypeId,
}

impl Arrival {
    /// Creates an arrival of `workflow_type` at `time`.
    #[must_use]
    pub fn new(time: SimTime, workflow_type: WorkflowTypeId) -> Self {
        Arrival {
            time,
            workflow_type,
        }
    }
}

// `SimTime` lives in `desim`, which doesn't depend on serde, so Arrival's
// serde impls are written by hand through microsecond integers.
impl Serialize for Arrival {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = s.serialize_struct("Arrival", 2)?;
        st.serialize_field("time_micros", &self.time.as_micros())?;
        st.serialize_field("workflow_type", &self.workflow_type)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Arrival {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            time_micros: u64,
            workflow_type: WorkflowTypeId,
        }
        let raw = Raw::deserialize(d)?;
        Ok(Arrival {
            time: SimTime::from_micros(raw.time_micros),
            workflow_type: raw.workflow_type,
        })
    }
}

/// A time-sorted sequence of workflow-request arrivals.
///
/// Traces are the common currency between workload generators and the
/// emulator: Poisson background and burst front-loads are generated
/// separately and [merged](ArrivalTrace::merge) before a run.
///
/// # Examples
///
/// ```
/// use desim::SimTime;
/// use workflow::{Arrival, ArrivalTrace, WorkflowTypeId};
///
/// let mut trace = ArrivalTrace::new();
/// trace.push(Arrival::new(SimTime::from_secs(2), WorkflowTypeId::new(0)));
/// trace.push(Arrival::new(SimTime::from_secs(1), WorkflowTypeId::new(1)));
/// // Pushes keep the trace sorted.
/// assert_eq!(trace.arrivals()[0].time, SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

// Deserialization re-establishes the sort invariant instead of trusting
// the file's order: a hand-edited or externally recorded trace may be out
// of order, and an unsorted `arrivals` vector would break `push`'s
// partition-point insertion and the emulator's window attribution. The
// sort is stable, so equal-time arrivals keep their file order.
impl<'de> Deserialize<'de> for ArrivalTrace {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            arrivals: Vec<Arrival>,
        }
        let mut raw = Raw::deserialize(d)?;
        raw.arrivals.sort_by_key(|a| a.time);
        Ok(ArrivalTrace {
            arrivals: raw.arrivals,
        })
    }
}

impl ArrivalTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        ArrivalTrace::default()
    }

    /// Adds an arrival, keeping the trace time-sorted (stable for ties).
    pub fn push(&mut self, arrival: Arrival) {
        let idx = self.arrivals.partition_point(|a| a.time <= arrival.time);
        self.arrivals.insert(idx, arrival);
    }

    /// The sorted arrivals.
    #[must_use]
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Merges another trace into this one, preserving global time order.
    pub fn merge(&mut self, other: ArrivalTrace) {
        self.arrivals.extend(other.arrivals);
        self.arrivals.sort_by_key(|a| a.time);
    }

    /// Saves the trace as JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save_json<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("traces always serialise");
        std::fs::write(path, json)
    }

    /// Loads a trace previously written by [`ArrivalTrace::save_json`].
    /// Arrivals are re-sorted defensively in case the file was edited.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be read, or an
    /// `InvalidData` error when it does not parse as a trace.
    pub fn load_json<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut trace: ArrivalTrace = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        trace.arrivals.sort_by_key(|a| a.time);
        Ok(trace)
    }

    /// Saves the trace as JSONL: one arrival object per line. The line
    /// format streams and diffs better than the JSON array for large
    /// recorded runs and is what the workload zoo's trace-replay mode
    /// consumes.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save_jsonl<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        for a in &self.arrivals {
            let line = serde_json::to_string(a).expect("arrivals always serialise");
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        w.flush()
    }

    /// Loads a trace previously written by [`ArrivalTrace::save_jsonl`].
    /// Blank lines are skipped and arrivals are re-sorted (stably), so an
    /// out-of-order or hand-edited file replays identically to its sorted
    /// form.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be read, or an
    /// `InvalidData` error (naming the line) when a line does not parse as
    /// an arrival.
    pub fn load_jsonl<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut arrivals = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let arrival: Arrival = serde_json::from_str(line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })?;
            arrivals.push(arrival);
        }
        arrivals.sort_by_key(|a| a.time);
        Ok(ArrivalTrace { arrivals })
    }

    /// Counts arrivals per workflow type, given the number of types.
    #[must_use]
    pub fn counts(&self, num_workflow_types: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_workflow_types];
        for a in &self.arrivals {
            counts[a.workflow_type.index()] += 1;
        }
        counts
    }
}

impl FromIterator<Arrival> for ArrivalTrace {
    fn from_iter<I: IntoIterator<Item = Arrival>>(iter: I) -> Self {
        let mut arrivals: Vec<Arrival> = iter.into_iter().collect();
        arrivals.sort_by_key(|a| a.time);
        ArrivalTrace { arrivals }
    }
}

impl Extend<Arrival> for ArrivalTrace {
    fn extend<I: IntoIterator<Item = Arrival>>(&mut self, iter: I) {
        self.arrivals.extend(iter);
        self.arrivals.sort_by_key(|a| a.time);
    }
}

/// Independent Poisson request processes, one per workflow type.
///
/// This emulates the paper's continuous background workload: "We use Poisson
/// process to emulate request traces for both workflow datasets" (§VI-A1).
///
/// # Examples
///
/// ```
/// use desim::SimTime;
/// use rand::SeedableRng;
/// use workflow::PoissonProcess;
///
/// let process = PoissonProcess::new(vec![1.0, 0.5]);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let trace = process.generate(SimTime::from_secs(100), &mut rng);
/// let counts = trace.counts(2);
/// // Rates 1.0/s and 0.5/s over 100 s: roughly 100 and 50 arrivals.
/// assert!(counts[0] > 60 && counts[0] < 140);
/// assert!(counts[1] > 25 && counts[1] < 80);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonProcess {
    rates_per_sec: Vec<f64>,
}

impl PoissonProcess {
    /// Creates a process with the given per-workflow-type rates
    /// (requests per second). A rate of `0.0` disables that type.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or non-finite.
    #[must_use]
    pub fn new(rates_per_sec: Vec<f64>) -> Self {
        for &r in &rates_per_sec {
            assert!(r.is_finite() && r >= 0.0, "arrival rate must be >= 0");
        }
        PoissonProcess { rates_per_sec }
    }

    /// The configured rates.
    #[must_use]
    pub fn rates(&self) -> &[f64] {
        &self.rates_per_sec
    }

    /// Samples arrivals over `[0, horizon)`.
    pub fn generate<R: Rng + ?Sized>(&self, horizon: SimTime, rng: &mut R) -> ArrivalTrace {
        let mut trace = Vec::new();
        for (i, &rate) in self.rates_per_sec.iter().enumerate() {
            if rate <= 0.0 {
                continue;
            }
            let exp = Exp::new(rate).expect("validated rate");
            let mut t = 0.0f64;
            loop {
                t += exp.sample(rng);
                let at = SimTime::from_secs_f64(t);
                if at >= horizon {
                    break;
                }
                trace.push(Arrival::new(at, WorkflowTypeId::new(i)));
            }
        }
        trace.into_iter().collect()
    }
}

/// A front-loaded burst of requests, as used in the paper's §VI-D comparison
/// ("request bursts are fed into the system at the beginning of each
/// evaluation").
///
/// # Examples
///
/// The paper's first MSD burst, 300/200/300 requests of Type1–Type3:
///
/// ```
/// use workflow::BurstSpec;
///
/// let burst = BurstSpec::new(vec![300, 200, 300]);
/// let trace = burst.trace();
/// assert_eq!(trace.len(), 800);
/// assert!(trace.arrivals().iter().all(|a| a.time.is_zero()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSpec {
    counts: Vec<usize>,
}

impl BurstSpec {
    /// A burst of `counts[i]` requests of workflow type `i`, all at time 0.
    #[must_use]
    pub fn new(counts: Vec<usize>) -> Self {
        BurstSpec { counts }
    }

    /// Per-type request counts.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of requests across types.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Materialises the burst as an [`ArrivalTrace`] at time zero.
    ///
    /// Requests of different types are interleaved round-robin so no type is
    /// systematically enqueued last.
    #[must_use]
    pub fn trace(&self) -> ArrivalTrace {
        let mut arrivals = Vec::with_capacity(self.total());
        let max = self.counts.iter().copied().max().unwrap_or(0);
        for round in 0..max {
            for (i, &c) in self.counts.iter().enumerate() {
                if round < c {
                    arrivals.push(Arrival::new(SimTime::ZERO, WorkflowTypeId::new(i)));
                }
            }
        }
        ArrivalTrace { arrivals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn trace_push_keeps_sorted() {
        let mut t = ArrivalTrace::new();
        for s in [5u64, 1, 3, 2, 4] {
            t.push(Arrival::new(SimTime::from_secs(s), WorkflowTypeId::new(0)));
        }
        let times: Vec<u64> = t.arrivals().iter().map(|a| a.time.as_micros()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn merge_interleaves() {
        let mut a: ArrivalTrace = (0..5)
            .map(|s| Arrival::new(SimTime::from_secs(s * 2), WorkflowTypeId::new(0)))
            .collect();
        let b: ArrivalTrace = (0..5)
            .map(|s| Arrival::new(SimTime::from_secs(s * 2 + 1), WorkflowTypeId::new(1)))
            .collect();
        a.merge(b);
        assert_eq!(a.len(), 10);
        for w in a.arrivals().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn poisson_rate_zero_emits_nothing() {
        let p = PoissonProcess::new(vec![0.0, 2.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        let trace = p.generate(SimTime::from_secs(50), &mut rng);
        assert_eq!(trace.counts(2)[0], 0);
        assert!(trace.counts(2)[1] > 0);
    }

    #[test]
    fn poisson_is_deterministic_for_fixed_seed() {
        let p = PoissonProcess::new(vec![0.7, 0.3]);
        let t1 = p.generate(SimTime::from_secs(200), &mut SmallRng::seed_from_u64(42));
        let t2 = p.generate(SimTime::from_secs(200), &mut SmallRng::seed_from_u64(42));
        assert_eq!(t1, t2);
    }

    #[test]
    fn poisson_mean_is_close_to_rate() {
        let p = PoissonProcess::new(vec![2.0]);
        let mut rng = SmallRng::seed_from_u64(9);
        let horizon = SimTime::from_secs(2_000);
        let n = p.generate(horizon, &mut rng).len() as f64;
        let expected = 2.0 * 2_000.0;
        assert!((n - expected).abs() < 4.0 * expected.sqrt() + 1.0, "n={n}");
    }

    #[test]
    #[should_panic(expected = "arrival rate must be >= 0")]
    fn negative_rate_panics() {
        let _ = PoissonProcess::new(vec![-1.0]);
    }

    #[test]
    fn burst_counts_and_interleave() {
        let b = BurstSpec::new(vec![3, 1, 2]);
        let trace = b.trace();
        assert_eq!(trace.counts(3), vec![3, 1, 2]);
        // Round-robin interleave: first three arrivals cover all types.
        let first: Vec<usize> = trace.arrivals()[..3]
            .iter()
            .map(|a| a.workflow_type.index())
            .collect();
        assert_eq!(first, vec![0, 1, 2]);
    }

    #[test]
    fn burst_paper_scenarios_total() {
        assert_eq!(BurstSpec::new(vec![300, 200, 300]).total(), 800);
        assert_eq!(BurstSpec::new(vec![100, 100, 50, 30]).total(), 280);
    }

    #[test]
    fn trace_file_round_trip() {
        let mut t = ArrivalTrace::new();
        for s in [3u64, 1, 2] {
            t.push(Arrival::new(SimTime::from_secs(s), WorkflowTypeId::new(0)));
        }
        let dir = std::env::temp_dir().join("miras_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save_json(&path).unwrap();
        let back = ArrivalTrace::load_json(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_jsonl_round_trip() {
        let mut t = ArrivalTrace::new();
        for (s, wf) in [(3u64, 0usize), (1, 1), (2, 0), (1, 2)] {
            t.push(Arrival::new(SimTime::from_secs(s), WorkflowTypeId::new(wf)));
        }
        let dir = std::env::temp_dir().join("miras_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        t.save_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4, "one arrival per line");
        let back = ArrivalTrace::load_jsonl(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_jsonl_sorts_out_of_order_files_and_names_bad_lines() {
        let dir = std::env::temp_dir().join("miras_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ooo.jsonl");
        std::fs::write(
            &path,
            "{\"time_micros\":45000000,\"workflow_type\":1}\n\n\
             {\"time_micros\":5000000,\"workflow_type\":0}\n",
        )
        .unwrap();
        let t = ArrivalTrace::load_jsonl(&path).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.arrivals()[0].time, SimTime::from_secs(5));
        assert_eq!(t.arrivals()[1].time, SimTime::from_secs(45));

        std::fs::write(&path, "{\"time_micros\":1}\nnot json\n").unwrap();
        let err = ArrivalTrace::load_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deserialized_trace_is_sorted_even_when_the_file_is_not() {
        // Regression: the derived Deserialize used to trust the file's
        // order, so an out-of-order trace violated the sorted contract
        // that `push`'s partition-point insertion depends on.
        let json = "{\"arrivals\":[\
            {\"time_micros\":45000000,\"workflow_type\":1},\
            {\"time_micros\":5000000,\"workflow_type\":0}]}";
        let mut t: ArrivalTrace = serde_json::from_str(json).unwrap();
        let times: Vec<u64> = t.arrivals().iter().map(|a| a.time.as_micros()).collect();
        assert_eq!(times, vec![5_000_000, 45_000_000]);
        // And push keeps working on the restored trace.
        t.push(Arrival::new(SimTime::from_secs(20), WorkflowTypeId::new(2)));
        let times: Vec<u64> = t.arrivals().iter().map(|a| a.time.as_micros()).collect();
        assert_eq!(times, vec![5_000_000, 20_000_000, 45_000_000]);
    }

    #[test]
    fn load_json_rejects_garbage() {
        let dir = std::env::temp_dir().join("miras_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json").unwrap();
        let err = ArrivalTrace::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arrival_serde_round_trip() {
        let a = Arrival::new(SimTime::from_millis(1234), WorkflowTypeId::new(2));
        let json = serde_json::to_string(&a).unwrap();
        let back: Arrival = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
