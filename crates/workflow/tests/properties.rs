//! Property-based tests for DAG construction and workload generation.

use desim::SimTime;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use workflow::{Arrival, ArrivalTrace, BurstSpec, Dag, PoissonProcess, TaskTypeId, WorkflowTypeId};

/// Generates a random DAG by sampling forward edges over `n` nodes
/// (edges only go from lower to higher indices, so acyclicity holds by
/// construction and `Dag::new` must accept it).
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..12).prop_flat_map(|n| {
        let all_edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .collect();
        proptest::sample::subsequence(all_edges, 0..=n * (n - 1) / 2)
            .prop_map(move |edges| (n, edges))
    })
}

proptest! {
    /// Forward-edge graphs are always accepted, and the topological order
    /// respects every edge.
    #[test]
    fn forward_edge_graphs_are_valid_dags((n, edges) in dag_strategy()) {
        let labels = vec![TaskTypeId::new(0); n];
        let dag = Dag::new(labels, edges.clone()).expect("forward edges are acyclic");
        let mut pos = vec![0usize; n];
        for (i, &node) in dag.topo_order().iter().enumerate() {
            pos[node] = i;
        }
        for &(a, b) in &edges {
            prop_assert!(pos[a] < pos[b], "edge ({a},{b}) violated");
        }
    }

    /// Entry nodes have no incoming edges; exit nodes no outgoing; fan-in
    /// matches the edge multiset.
    #[test]
    fn structural_queries_match_edges((n, edges) in dag_strategy()) {
        let dag = Dag::new(vec![TaskTypeId::new(0); n], edges.clone()).unwrap();
        for node in 0..n {
            let indeg = edges.iter().filter(|&&(_, b)| b == node).count();
            let outdeg = edges.iter().filter(|&&(a, _)| a == node).count();
            prop_assert_eq!(dag.fan_in(node), indeg);
            prop_assert_eq!(dag.entry_nodes().contains(&node), indeg == 0);
            prop_assert_eq!(dag.exit_nodes().contains(&node), outdeg == 0);
        }
    }

    /// Depth is between 1 and n, and equals 1 exactly for edgeless graphs.
    #[test]
    fn depth_is_bounded((n, edges) in dag_strategy()) {
        let dag = Dag::new(vec![TaskTypeId::new(0); n], edges.clone()).unwrap();
        prop_assert!(dag.depth() >= 1 && dag.depth() <= n);
        if edges.is_empty() {
            prop_assert_eq!(dag.depth(), 1);
        } else {
            prop_assert!(dag.depth() >= 2);
        }
    }

    /// Adding a back edge to any forward-edge DAG with at least one edge
    /// creates a cycle that must be rejected.
    #[test]
    fn back_edge_creates_cycle((n, edges) in dag_strategy()) {
        prop_assume!(!edges.is_empty());
        let (a, b) = edges[0];
        let mut bad = edges.clone();
        bad.push((b, a));
        let result = Dag::new(vec![TaskTypeId::new(0); n], bad);
        prop_assert!(result.is_err());
    }

    /// Burst traces contain exactly the requested number of arrivals per
    /// type, all at time zero.
    #[test]
    fn burst_trace_counts(counts in proptest::collection::vec(0usize..50, 1..6)) {
        let burst = BurstSpec::new(counts.clone());
        let trace = burst.trace();
        prop_assert_eq!(trace.counts(counts.len()), counts);
        prop_assert!(trace.arrivals().iter().all(|a| a.time.is_zero()));
    }

    /// Poisson traces are time-sorted and fall within the horizon.
    #[test]
    fn poisson_traces_sorted_and_bounded(
        seed in 0u64..1000,
        rates in proptest::collection::vec(0.0f64..2.0, 1..4),
        horizon_secs in 1u64..200,
    ) {
        let process = PoissonProcess::new(rates.clone());
        let horizon = SimTime::from_secs(horizon_secs);
        let mut rng = SmallRng::seed_from_u64(seed);
        let trace = process.generate(horizon, &mut rng);
        for pair in trace.arrivals().windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
        }
        for a in trace.arrivals() {
            prop_assert!(a.time < horizon);
            prop_assert!(a.workflow_type.index() < rates.len());
        }
    }

    /// Merging traces preserves all arrivals and global time order.
    #[test]
    fn merge_preserves_arrivals(
        times_a in proptest::collection::vec(0u64..1000, 0..30),
        times_b in proptest::collection::vec(0u64..1000, 0..30),
    ) {
        let mut a: ArrivalTrace = times_a
            .iter()
            .map(|&t| Arrival::new(SimTime::from_millis(t), WorkflowTypeId::new(0)))
            .collect();
        let b: ArrivalTrace = times_b
            .iter()
            .map(|&t| Arrival::new(SimTime::from_millis(t), WorkflowTypeId::new(1)))
            .collect();
        a.merge(b);
        prop_assert_eq!(a.len(), times_a.len() + times_b.len());
        for pair in a.arrivals().windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
        }
    }
}
