//! MIRAS: model-based reinforcement learning for microservice resource
//! allocation over scientific workflows (Yang et al., ICDCS 2019).
//!
//! This crate is the paper's contribution. It composes the substrates
//! ([`microsim`] for the emulated cluster, [`nn`] for neural networks,
//! [`rl`] for DDPG with parameter-space exploration) into the full
//! model-based training pipeline:
//!
//! 1. **Environment-model learning** (§IV-C1): [`DynamicsModel`], a neural
//!    network `f̂_Φ(s, a) → ŝ'` trained with one-step mean-squared error on
//!    transitions collected from the real system ([`TransitionDataset`]).
//! 2. **Model refinement** (§IV-C2, Algorithm 1): [`RefinedModel`], the
//!    Lend–Giveback procedure that fixes the model's behaviour near the
//!    WIP ≈ 0 boundary.
//! 3. **Policy learning** (§IV-D): DDPG trained against the learnt model
//!    wrapped as a synthetic environment ([`SyntheticEnv`]).
//! 4. **The iterative loop** (§IV-E, Algorithm 2): [`MirasTrainer`]
//!    alternates real-environment data collection, model retraining, and
//!    policy improvement; the result is a [`MirasAgent`] producing consumer
//!    allocations under the budget constraint.
//!
//! # Examples
//!
//! Train a (miniature) MIRAS agent on the MSD ensemble:
//!
//! ```
//! use miras_core::{ClusterEnvAdapter, MirasConfig, MirasTrainer};
//! use microsim::{EnvConfig, MicroserviceEnv};
//! use workflow::Ensemble;
//!
//! let ensemble = Ensemble::msd();
//! let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(1);
//! let env = MicroserviceEnv::new(ensemble, env_config);
//! let mut real_env = ClusterEnvAdapter::new(env);
//! // A deliberately tiny configuration so the doctest runs quickly.
//! let config = MirasConfig::smoke_test(7);
//! let mut trainer = MirasTrainer::new(&real_env, config);
//! let report = trainer.run_iteration(&mut real_env);
//! assert!(report.model_loss.is_finite());
//! let agent = trainer.agent();
//! let allocation = agent.allocate(&[5.0, 3.0, 2.0, 1.0]);
//! assert!(allocation.iter().sum::<usize>() <= 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod agent;
mod batch_env;
mod checkpoint;
mod config;
mod dataset;
pub mod distributed;
mod dynamics;
mod ensemble_model;
mod refine;
mod synth_env;
mod trainer;

pub use adapter::{AdapterSnapshot, ClusterEnvAdapter};
pub use agent::MirasAgent;
pub use batch_env::BatchedSyntheticEnv;
pub use checkpoint::{CheckpointError, CheckpointPayload, CHECKPOINT_VERSION};
pub use config::{MirasConfig, RolloutMode};
pub use dataset::{Standardizer, Transition, TransitionDataset};
pub use distributed::{VersionSchedule, WaveEntry, WeightVersion, WorkerFault};
pub use dynamics::DynamicsModel;
pub use ensemble_model::EnsembleDynamics;
pub use microsim::ConfigError;
pub use refine::RefinedModel;
pub use synth_env::SyntheticEnv;
pub use trainer::{IterationReport, MirasTrainer, TrainerError};
