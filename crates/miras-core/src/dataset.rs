//! The transition dataset `D` collected from the real environment.

use nn::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One `(s(k), m(k), s(k+1))` tuple, with the action stored as the *applied
/// consumer allocation* (the physical control input, §IV-C1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// WIP per task type before the window.
    pub state: Vec<f64>,
    /// Consumers allocated per task type during the window.
    pub action: Vec<f64>,
    /// WIP per task type after the window.
    pub next_state: Vec<f64>,
}

/// Per-dimension standardisation statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits mean/std per column of `rows`. Degenerate (constant) columns get
    /// unit scale so standardisation stays invertible.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    #[must_use]
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit on an empty dataset");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; dim];
        for row in rows {
            for ((s, &v), &m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt();
            if *s < 1e-8 {
                *s = 1.0;
            }
        }
        Standardizer { mean, std }
    }

    /// `(x − μ) / σ` per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimensionality.
    #[must_use]
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }

    /// The inverse of [`Standardizer::transform`].
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the fitted dimensionality.
    #[must_use]
    pub fn inverse(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.mean.len(), "dimension mismatch");
        z.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| v * s + m)
            .collect()
    }

    /// Allocation-free [`Standardizer::transform`] into a caller buffer.
    /// Bitwise-identical to `transform` (same per-element expression).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differ from the fitted
    /// dimensionality.
    pub fn transform_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        assert_eq!(out.len(), self.mean.len(), "output dimension mismatch");
        for (((o, &v), &m), &s) in out.iter_mut().zip(x).zip(&self.mean).zip(&self.std) {
            *o = (v - m) / s;
        }
    }

    /// Allocation-free [`Standardizer::inverse`] applied in place.
    /// Bitwise-identical to `inverse` (same per-element expression).
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the fitted dimensionality.
    pub fn inverse_in_place(&self, z: &mut [f64]) {
        assert_eq!(z.len(), self.mean.len(), "dimension mismatch");
        for ((v, &m), &s) in z.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = *v * s + m;
        }
    }
}

/// The growing dataset `D` of real-environment transitions (Algorithm 2,
/// line 3), with percentile queries used by the refinement thresholds.
///
/// # Examples
///
/// ```
/// use miras_core::{Transition, TransitionDataset};
///
/// let mut d = TransitionDataset::new(4);
/// d.push(Transition {
///     state: vec![1.0, 2.0, 3.0, 4.0],
///     action: vec![4.0, 4.0, 4.0, 2.0],
///     next_state: vec![0.0, 1.0, 2.0, 3.0],
/// });
/// assert_eq!(d.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransitionDataset {
    state_dim: usize,
    transitions: Vec<Transition>,
}

impl TransitionDataset {
    /// Creates an empty dataset for `state_dim`-dimensional states.
    #[must_use]
    pub fn new(state_dim: usize) -> Self {
        TransitionDataset {
            state_dim,
            transitions: Vec::new(),
        }
    }

    /// State (and action) dimensionality `J`.
    #[must_use]
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Number of stored transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Appends a transition.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push(&mut self, t: Transition) {
        assert_eq!(t.state.len(), self.state_dim, "state dimension mismatch");
        assert_eq!(t.action.len(), self.state_dim, "action dimension mismatch");
        assert_eq!(
            t.next_state.len(),
            self.state_dim,
            "next-state dimension mismatch"
        );
        self.transitions.push(t);
    }

    /// The stored transitions.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The `p`-th percentile (0–100, nearest-rank) of state dimension `j`
    /// across the dataset — used for the refinement thresholds τ_j, ω_j.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, `j` is out of range, or `p` is
    /// outside `[0, 100]`.
    #[must_use]
    pub fn state_percentile(&self, j: usize, p: f64) -> f64 {
        assert!(!self.is_empty(), "percentile of empty dataset");
        assert!(j < self.state_dim, "dimension out of range");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let mut values: Vec<f64> = self.transitions.iter().map(|t| t.state[j]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite WIP"));
        let rank = ((p / 100.0) * (values.len() - 1) as f64).round() as usize;
        values[rank]
    }

    /// Builds `(inputs, targets)` matrices for model training, standardised
    /// with the returned scalers: inputs are `[ŝ ‖ â]` (standardised state
    /// and action), targets the standardised next state.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn training_matrices(&self) -> (Matrix, Matrix, Standardizer, Standardizer, Standardizer) {
        assert!(!self.is_empty(), "cannot build matrices from empty dataset");
        let states: Vec<Vec<f64>> = self.transitions.iter().map(|t| t.state.clone()).collect();
        let actions: Vec<Vec<f64>> = self.transitions.iter().map(|t| t.action.clone()).collect();
        let nexts: Vec<Vec<f64>> = self
            .transitions
            .iter()
            .map(|t| t.next_state.clone())
            .collect();
        let s_scaler = Standardizer::fit(&states);
        let a_scaler = Standardizer::fit(&actions);
        let y_scaler = Standardizer::fit(&nexts);

        let mut x = Matrix::zeros(self.len(), 2 * self.state_dim);
        let mut y = Matrix::zeros(self.len(), self.state_dim);
        for (i, t) in self.transitions.iter().enumerate() {
            let zs = s_scaler.transform(&t.state);
            let za = a_scaler.transform(&t.action);
            let zy = y_scaler.transform(&t.next_state);
            x.row_mut(i)[..self.state_dim].copy_from_slice(&zs);
            x.row_mut(i)[self.state_dim..].copy_from_slice(&za);
            y.row_mut(i).copy_from_slice(&zy);
        }
        (x, y, s_scaler, a_scaler, y_scaler)
    }

    /// Samples a random transition's state — the synthetic environment's
    /// initial-state distribution.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn sample_state<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        assert!(!self.is_empty(), "cannot sample from empty dataset");
        self.transitions[rng.gen_range(0..self.len())].state.clone()
    }
}

impl Extend<Transition> for TransitionDataset {
    fn extend<I: IntoIterator<Item = Transition>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn t(s: f64) -> Transition {
        Transition {
            state: vec![s, 2.0 * s],
            action: vec![1.0, 1.0],
            next_state: vec![s + 1.0, 2.0 * s + 1.0],
        }
    }

    #[test]
    fn standardizer_round_trips() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 20.0]];
        let s = Standardizer::fit(&rows);
        for row in &rows {
            let back = s.inverse(&s.transform(row));
            for (a, b) in row.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn standardizer_zero_variance_is_safe() {
        let rows = vec![vec![5.0], vec![5.0]];
        let s = Standardizer::fit(&rows);
        let z = s.transform(&[5.0]);
        assert_eq!(z, vec![0.0]);
        assert_eq!(s.inverse(&z), vec![5.0]);
    }

    #[test]
    fn standardized_columns_have_zero_mean_unit_std() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, -3.0 * i as f64]).collect();
        let s = Standardizer::fit(&rows);
        let z: Vec<Vec<f64>> = rows.iter().map(|r| s.transform(r)).collect();
        for c in 0..2 {
            let mean: f64 = z.iter().map(|r| r[c]).sum::<f64>() / z.len() as f64;
            let var: f64 = z.iter().map(|r| (r[c] - mean).powi(2)).sum::<f64>() / z.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut d = TransitionDataset::new(2);
        for i in 0..101 {
            d.push(t(i as f64));
        }
        let p10 = d.state_percentile(0, 10.0);
        let p90 = d.state_percentile(0, 90.0);
        assert!((p10 - 10.0).abs() < 1.0);
        assert!((p90 - 90.0).abs() < 1.0);
        assert!(p10 < p90);
    }

    #[test]
    fn training_matrices_shapes_and_inverse() {
        let mut d = TransitionDataset::new(2);
        for i in 0..10 {
            d.push(t(i as f64));
        }
        let (x, y, _s, _a, y_scaler) = d.training_matrices();
        assert_eq!((x.rows(), x.cols()), (10, 4));
        assert_eq!((y.rows(), y.cols()), (10, 2));
        // Targets invert back to the raw next states.
        let raw = y_scaler.inverse(y.row(3));
        assert!((raw[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sample_state_draws_from_dataset() {
        let mut d = TransitionDataset::new(2);
        for i in 0..5 {
            d.push(t(i as f64));
        }
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..20 {
            let s = d.sample_state(&mut rng);
            assert!(s[0] >= 0.0 && s[0] < 5.0);
            assert_eq!(s[1], 2.0 * s[0]);
        }
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn wrong_dimension_panics() {
        let mut d = TransitionDataset::new(3);
        d.push(t(1.0));
    }
}
