//! The learnt model wrapped as a synthetic training environment.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rl::policy::allocation_largest_remainder;
use rl::{Environment, Transition as RlTransition};
use telemetry::Telemetry;

use crate::{RefinedModel, TransitionDataset};

/// A synthetic environment that steps the refined environment model instead
/// of the real cluster (paper §IV-D: "we train a deep reinforcement learning
/// agent by letting it interact with the learnt environment model instead of
/// the actual real environment").
///
/// Initial states are drawn from the collected dataset; rewards follow the
/// paper's `r = 1 − Σ_j ŵ_j`.
///
/// # Examples
///
/// ```
/// use miras_core::{DynamicsModel, MirasConfig, RefinedModel, SyntheticEnv,
///                  Transition, TransitionDataset};
/// use rl::Environment;
///
/// let mut data = TransitionDataset::new(2);
/// for i in 0..40 {
///     data.push(Transition {
///         state: vec![i as f64, 1.0],
///         action: vec![1.0, 1.0],
///         next_state: vec![i as f64 * 0.5, 1.0],
///     });
/// }
/// let mut model = DynamicsModel::new(2, &MirasConfig::smoke_test(0));
/// model.train(&data, 5, 16);
/// let refined = RefinedModel::fit(model, &data, 10.0);
/// let mut env = SyntheticEnv::new(refined, data, 14, 3);
/// let s = env.reset();
/// let t = env.step(&[0.5, 0.5]);
/// assert_eq!(t.next_state.len(), s.len());
/// ```
#[derive(Debug)]
pub struct SyntheticEnv {
    model: RefinedModel,
    init_states: TransitionDataset,
    consumer_budget: usize,
    state: Vec<f64>,
    /// Per-dimension cap on predicted states: 1.2 × the largest WIP observed
    /// in the dataset. Open-loop neural rollouts compound one-step error and
    /// can diverge far outside the training distribution (visible in the
    /// paper's own Fig. 5 iterative traces); clamping keeps the policy
    /// training inside the region where the model is meaningful.
    state_cap: Vec<f64>,
    rng: SmallRng,
    telemetry: Telemetry,
    lend_triggers: u64,
    /// Reused per-step buffer for the f64 view of the discretised
    /// allocation, so stepping does not allocate it afresh each call.
    action_buf: Vec<f64>,
}

impl SyntheticEnv {
    /// Creates a synthetic environment.
    ///
    /// `init_states` provides the initial-state distribution (states
    /// observed on the real system); `consumer_budget` is the constraint
    /// `C` used to discretise actions.
    ///
    /// # Panics
    ///
    /// Panics if `init_states` is empty or its dimensionality differs from
    /// the model's.
    #[must_use]
    pub fn new(
        model: RefinedModel,
        init_states: TransitionDataset,
        consumer_budget: usize,
        seed: u64,
    ) -> Self {
        assert!(!init_states.is_empty(), "need initial states to sample");
        assert_eq!(
            init_states.state_dim(),
            model.model().state_dim(),
            "dimension mismatch"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let state = init_states.sample_state(&mut rng);
        let j = init_states.state_dim();
        let mut state_cap = vec![0.0f64; j];
        for t in init_states.transitions() {
            for (cap, &v) in state_cap.iter_mut().zip(&t.state) {
                *cap = cap.max(v);
            }
        }
        for cap in &mut state_cap {
            *cap = (*cap * 1.2).max(10.0);
        }
        SyntheticEnv {
            model,
            init_states,
            consumer_budget,
            state,
            state_cap,
            rng,
            telemetry: Telemetry::noop(),
            lend_triggers: 0,
            action_buf: Vec::with_capacity(j),
        }
    }

    /// Attaches a telemetry handle: each step counts Lend–Giveback
    /// refinement triggers (`synth.lend_triggers`, the number of state
    /// dimensions below the refined model's `τ_j` threshold) and the
    /// overall step count.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of Lend–Giveback trigger firings observed so far (state
    /// dimensions entering a step below their `τ_j` refinement threshold,
    /// summed over steps). Zero for an unrefined model.
    #[must_use]
    pub fn lend_triggers(&self) -> u64 {
        self.lend_triggers
    }

    /// The per-dimension clamp applied to predicted states.
    #[must_use]
    pub fn state_cap(&self) -> &[f64] {
        &self.state_cap
    }

    /// The wrapped refined model.
    #[must_use]
    pub fn model(&self) -> &RefinedModel {
        &self.model
    }

    /// The consumer budget used to discretise actions.
    #[must_use]
    pub fn consumer_budget(&self) -> usize {
        self.consumer_budget
    }

    /// The current (predicted) state.
    #[must_use]
    pub fn state(&self) -> &[f64] {
        &self.state
    }
}

impl Environment for SyntheticEnv {
    fn state_dim(&self) -> usize {
        self.model.model().state_dim()
    }

    fn action_dim(&self) -> usize {
        self.model.model().state_dim()
    }

    fn reset(&mut self) -> Vec<f64> {
        self.state = self.init_states.sample_state(&mut self.rng);
        self.state.clone()
    }

    fn step(&mut self, action: &[f64]) -> RlTransition {
        let allocation = allocation_largest_remainder(action, self.consumer_budget);
        self.action_buf.clear();
        self.action_buf.extend(allocation.iter().map(|&v| v as f64));
        // Mirror the `state[j] < τ_j` test RefinedModel::predict applies, so
        // the trigger count matches the lends actually performed.
        let triggers = self
            .state
            .iter()
            .zip(self.model.tau())
            .filter(|(s, tau)| *s < tau)
            .count() as u64;
        self.lend_triggers += triggers;
        let mut next = self
            .model
            .predict(&self.state, &self.action_buf, &mut self.rng);
        for (v, &cap) in next.iter_mut().zip(&self.state_cap) {
            *v = v.min(cap);
        }
        let reward = microsim::reward_from_total_wip(next.iter().sum::<f64>());
        // The prediction is the single materialisation: copy it into the
        // stored state and hand the buffer itself to the caller.
        self.state.copy_from_slice(&next);
        if self.telemetry.is_enabled() {
            self.telemetry.counter("synth.steps", 1);
            self.telemetry.counter("synth.lend_triggers", triggers);
        }
        RlTransition {
            next_state: next,
            reward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicsModel, MirasConfig, Transition};
    use rand::Rng;

    /// Builds a synthetic env over drain dynamics s' = max(0, s − 2a) + 1.
    fn build(seed: u64) -> SyntheticEnv {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = TransitionDataset::new(2);
        for _ in 0..400 {
            let s = vec![rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)];
            let a = vec![
                rng.gen_range(0.0f64..7.0).floor(),
                rng.gen_range(0.0f64..7.0).floor(),
            ];
            let next = vec![
                (s[0] - 2.0 * a[0]).max(0.0) + 1.0,
                (s[1] - 2.0 * a[1]).max(0.0) + 1.0,
            ];
            data.push(Transition {
                state: s,
                action: a,
                next_state: next,
            });
        }
        let mut config = MirasConfig::smoke_test(seed);
        config.model_hidden = vec![32, 32];
        let mut model = DynamicsModel::new(2, &config);
        model.train(&data, 40, 32);
        let refined = RefinedModel::fit(model, &data, 10.0);
        SyntheticEnv::new(refined, data, 14, seed)
    }

    #[test]
    fn reset_samples_dataset_states() {
        let mut env = build(0);
        for _ in 0..10 {
            let s = env.reset();
            assert_eq!(s.len(), 2);
            assert!(s.iter().all(|&v| (0.0..20.0).contains(&v)));
        }
    }

    #[test]
    fn reward_matches_predicted_wip() {
        let mut env = build(1);
        let _ = env.reset();
        let t = env.step(&[0.5, 0.5]);
        let expected = 1.0 - t.next_state.iter().sum::<f64>();
        assert!((t.reward - expected).abs() < 1e-12);
    }

    #[test]
    fn more_consumers_drain_more_wip() {
        // On the learnt drain dynamics, allocating the full budget should
        // reduce WIP more than allocating nothing.
        let mut env = build(2);

        let mut total_full = 0.0;
        let mut total_none = 0.0;
        for _ in 0..20 {
            let s = env.reset();
            let start: f64 = s.iter().sum();
            let t_full = env.step(&[0.5, 0.5]);
            total_full += t_full.next_state.iter().sum::<f64>() - start;

            // Rewind to a comparable state.
            env.state = s.clone();
            let t_none = env.step(&[0.0, 0.0]);
            total_none += t_none.next_state.iter().sum::<f64>() - start;
        }
        assert!(
            total_full < total_none,
            "full {total_full} vs none {total_none}"
        );
    }

    #[test]
    fn states_remain_non_negative_over_rollout() {
        let mut env = build(3);
        let _ = env.reset();
        for i in 0..50 {
            let a = if i % 2 == 0 { [1.0, 0.0] } else { [0.0, 1.0] };
            let t = env.step(&a);
            assert!(t.next_state.iter().all(|&v| v >= 0.0));
        }
    }
}
