//! The deployable MIRAS agent: state in, consumer allocation out.

use nn::Mlp;
use rl::policy::{allocation_floor, allocation_largest_remainder};
use rl::RunningNorm;
use serde::{Deserialize, Serialize};

/// A trained MIRAS resource-allocation policy.
///
/// This is what gets deployed after training: the greedy actor network plus
/// the consumer budget. [`MirasAgent::allocate`] maps an observed WIP vector
/// to consumer counts with the paper's `m_j = ⌊C · a_j⌋` rule, so the
/// allocation always satisfies the budget.
///
/// Agents serialize with serde for checkpointing.
///
/// # Examples
///
/// ```
/// use miras_core::MirasAgent;
/// use nn::{Activation, Mlp};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let actor = Mlp::new(&[4, 8, 4], Activation::Relu, Activation::Softmax, &mut rng);
/// let agent = MirasAgent::new(actor, 14);
/// let m = agent.allocate(&[10.0, 2.0, 3.0, 0.0]);
/// assert!(m.iter().sum::<usize>() <= 14);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirasAgent {
    actor: Mlp,
    obs_norm: Option<RunningNorm>,
    consumer_budget: usize,
    #[serde(default)]
    strict_floor: bool,
}

impl MirasAgent {
    /// Wraps a trained actor network.
    ///
    /// # Panics
    ///
    /// Panics if the actor's input and output dimensions differ (state and
    /// action spaces are both the `J` task types).
    #[must_use]
    pub fn new(actor: Mlp, consumer_budget: usize) -> Self {
        assert_eq!(
            actor.input_dim(),
            actor.output_dim(),
            "MIRAS actor maps J-dim WIP to J-dim allocation distribution"
        );
        MirasAgent {
            actor,
            obs_norm: None,
            consumer_budget,
            strict_floor: false,
        }
    }

    /// Uses the paper's literal floor rule `m_j = ⌊C · a_j⌋` instead of the
    /// default largest-remainder discretisation. The floor rule discards up
    /// to `J − 1` consumers per window, which is systematic once the actor
    /// is entropy-regularised (DESIGN.md §4b).
    #[must_use]
    pub fn with_strict_floor(mut self) -> Self {
        self.strict_floor = true;
        self
    }

    /// Attaches the observation normaliser the actor was trained with.
    /// Without it, raw WIP magnitudes would be far outside the input
    /// distribution the network saw during training.
    #[must_use]
    pub fn with_normalizer(mut self, norm: RunningNorm) -> Self {
        assert_eq!(
            norm.dim(),
            self.actor.input_dim(),
            "normaliser dimension mismatch"
        );
        self.obs_norm = Some(norm);
        self
    }

    /// The number of task types `J` this agent controls.
    #[must_use]
    pub fn num_task_types(&self) -> usize {
        self.actor.input_dim()
    }

    /// The consumer budget `C` the allocation respects.
    #[must_use]
    pub fn consumer_budget(&self) -> usize {
        self.consumer_budget
    }

    /// The policy's softmax distribution over task types for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of task types.
    #[must_use]
    pub fn distribution(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.num_task_types(), "state dim mismatch");
        match &self.obs_norm {
            Some(norm) => self.actor.forward_one(&norm.normalize(state)),
            None => self.actor.forward_one(state),
        }
    }

    /// Consumer counts for `state`: the largest-remainder discretisation of
    /// `C · a` (or the paper's literal floor when
    /// [`MirasAgent::with_strict_floor`] was set). Either way
    /// `Σ_j m_j ≤ C` holds.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of task types.
    #[must_use]
    pub fn allocate(&self, state: &[f64]) -> Vec<usize> {
        let dist = self.distribution(state);
        if self.strict_floor {
            allocation_floor(&dist, self.consumer_budget)
        } else {
            allocation_largest_remainder(&dist, self.consumer_budget)
        }
    }

    /// Read access to the underlying actor network.
    #[must_use]
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::Activation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn agent(seed: u64) -> MirasAgent {
        let mut rng = SmallRng::seed_from_u64(seed);
        let actor = Mlp::new(&[4, 16, 4], Activation::Relu, Activation::Softmax, &mut rng);
        MirasAgent::new(actor, 14)
    }

    #[test]
    fn allocation_respects_budget_for_any_state() {
        let a = agent(0);
        for scale in [0.0, 1.0, 100.0, 10000.0] {
            let m = a.allocate(&[scale, scale / 2.0, 0.0, scale * 2.0]);
            assert!(m.iter().sum::<usize>() <= 14, "{m:?}");
        }
    }

    #[test]
    fn distribution_is_simplex() {
        let a = agent(1);
        let d = a.distribution(&[3.0, 1.0, 4.0, 1.0]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn serde_round_trip() {
        let a = agent(2);
        let json = serde_json::to_string(&a).unwrap();
        let back: MirasAgent = serde_json::from_str(&json).unwrap();
        assert_eq!(back.consumer_budget(), 14);
        let s = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(a.allocate(&s), back.allocate(&s));
    }

    #[test]
    #[should_panic(expected = "state dim mismatch")]
    fn wrong_state_dim_panics() {
        let a = agent(3);
        let _ = a.allocate(&[1.0, 2.0]);
    }
}
