//! Crash-safe persistence of the full Algorithm 2 training state.
//!
//! A checkpoint captures *everything* that influences the remaining run —
//! the agent (networks, target networks, Adam moments, replay buffer,
//! parameter-noise state), the environment model and its optimizer, the
//! transition dataset, the trainer's RNG, the iteration index, and the real
//! environment's complete simulator state. Loading a checkpoint and
//! continuing therefore produces *bit-identical* results to a run that was
//! never interrupted (verified by `trainer::tests` and
//! `crates/bench/tests/resume.rs`).
//!
//! Saves are atomic: the payload is written to a `<path>.tmp` sibling,
//! fsynced, then renamed over the target, so a crash mid-save can never
//! leave a truncated checkpoint in place of a good one. Loads validate the
//! format version and reject corrupt or truncated files with
//! [`CheckpointError::Corrupt`] instead of panicking.

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use rl::DdpgSnapshot;
use serde::{Deserialize, Serialize};

use crate::adapter::AdapterSnapshot;
use crate::distributed::VersionSchedule;
use crate::{DynamicsModel, MirasAgent, MirasConfig, TransitionDataset};

/// Format version written into every checkpoint; bumped whenever the
/// payload layout changes incompatibly.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// The filesystem refused the read/write/rename.
    Io(std::io::Error),
    /// The file exists but is not a valid checkpoint (truncated, not JSON,
    /// or structurally wrong).
    Corrupt(String),
    /// The file is a valid checkpoint but from an incompatible format
    /// version.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Mismatch(msg) => write!(f, "incompatible checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The complete serialized training state (one outer-loop boundary of
/// Algorithm 2).
///
/// Produced by [`crate::MirasTrainer::save_checkpoint`] and consumed by
/// [`crate::MirasTrainer::resume`]; the fields are crate-private because
/// the payload's only contract is bit-identical resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointPayload {
    pub(crate) version: u32,
    pub(crate) config: MirasConfig,
    pub(crate) iteration: usize,
    pub(crate) consumer_budget: usize,
    pub(crate) dataset: TransitionDataset,
    pub(crate) model: DynamicsModel,
    pub(crate) agent: DdpgSnapshot,
    pub(crate) trainer_rng_state: [u64; 4],
    pub(crate) lend_triggers_total: u64,
    pub(crate) adapter: AdapterSnapshot,
    /// Version-schedule manifest of the last completed distributed inner
    /// loop, if any. Absent in pre-distributed checkpoints (`default`
    /// keeps them loadable) and in non-distributed runs.
    #[serde(default)]
    pub(crate) last_schedule: Option<VersionSchedule>,
}

impl CheckpointPayload {
    /// Serializes the payload and atomically writes it to `path`
    /// (temp file + fsync + rename, plus a best-effort directory fsync).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if any filesystem operation fails and
    /// [`CheckpointError::Corrupt`] if serialization itself fails (which
    /// indicates a bug, e.g. a NaN smuggled into a field that rejects it).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self)
            .map_err(|e| CheckpointError::Corrupt(format!("serialization failed: {e}")))?;
        let tmp = format!("{}.tmp", path.display());
        {
            let mut f = File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Best-effort: persist the rename itself. Not all platforms allow
        // fsync on a directory handle, so failures are ignored.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// The checkpoint's format version (always [`CHECKPOINT_VERSION`] for a
    /// payload this build loaded).
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The outer-loop iteration the checkpoint was taken at. Monotone over
    /// a training run, which makes it the natural `policy_version` for
    /// serving: a hot-swapped later checkpoint always carries a larger one.
    #[must_use]
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The total-consumer constraint `C` the agent was trained under.
    #[must_use]
    pub fn consumer_budget(&self) -> usize {
        self.consumer_budget
    }

    /// Extracts the greedy policy as a deployable [`MirasAgent`] — the same
    /// actor + observation-normaliser snapshot
    /// [`MirasTrainer::agent`](crate::MirasTrainer::agent) would return
    /// after resuming this checkpoint, without rebuilding the trainer (or
    /// needing the real environment at all). This is what `miras-serve`
    /// loads.
    #[must_use]
    pub fn deployable_agent(&self) -> MirasAgent {
        let agent = rl::Ddpg::from_snapshot(self.agent.clone());
        MirasAgent::new(agent.actor().clone(), self.consumer_budget)
            .with_normalizer(agent.obs_normalizer().clone())
    }

    /// Reads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the file cannot be read,
    /// [`CheckpointError::Corrupt`] if it does not parse as a checkpoint
    /// (e.g. it was truncated by a crash that beat the atomic-rename
    /// protocol's temp file into place), and [`CheckpointError::Mismatch`]
    /// if its format version differs from [`CHECKPOINT_VERSION`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut json = String::new();
        File::open(path)?.read_to_string(&mut json)?;
        let payload: CheckpointPayload = serde_json::from_str(&json)
            .map_err(|e| CheckpointError::Corrupt(format!("parse failed: {e}")))?;
        if payload.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint version {} (this build reads {})",
                payload.version, CHECKPOINT_VERSION
            )));
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::Corrupt("parse failed: eof".into());
        assert!(e.to_string().contains("corrupt"));
        let e = CheckpointError::Mismatch("checkpoint version 7".into());
        assert!(e.to_string().contains("incompatible"));
        let e = CheckpointError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("I/O"));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = CheckpointPayload::load(Path::new("/nonexistent/dir/ckpt.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
