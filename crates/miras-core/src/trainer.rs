//! The iterative model-based training loop (paper §IV-E, Algorithm 2).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rl::{Ddpg, Environment};
use serde::{Deserialize, Serialize};

use crate::{
    ClusterEnvAdapter, DynamicsModel, MirasAgent, MirasConfig, RefinedModel, SyntheticEnv,
    TransitionDataset,
};

/// What happened during one outer iteration of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Zero-based iteration index.
    pub iteration: usize,
    /// Real-environment steps collected this iteration.
    pub steps_collected: usize,
    /// Total transitions in the dataset `D` after collection.
    pub dataset_size: usize,
    /// Final-epoch model training MSE (standardised space).
    pub model_loss: f64,
    /// Mean return per synthetic rollout during the inner policy loop.
    pub synthetic_return_mean: f64,
    /// Number of synthetic rollouts actually run (early stop may cut the
    /// budget short).
    pub rollouts_run: usize,
    /// Aggregated reward of the greedy policy evaluated on the *real*
    /// environment for the configured number of steps (the y-axis of the
    /// paper's Fig. 6).
    pub eval_return: f64,
    /// Current parameter-noise scale, when parameter noise is in use.
    pub exploration_sigma: Option<f64>,
}

/// Drives Algorithm 2: collect real interactions with the current policy →
/// retrain the environment model → train the policy against the refined
/// model → evaluate — repeated until the policy performs well.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct MirasTrainer {
    config: MirasConfig,
    agent: Ddpg,
    model: DynamicsModel,
    dataset: TransitionDataset,
    iteration: usize,
    consumer_budget: usize,
    rng: SmallRng,
    telemetry: telemetry::Telemetry,
    lend_triggers_total: u64,
}

impl MirasTrainer {
    /// Creates a trainer sized for the given real environment.
    #[must_use]
    pub fn new(env: &ClusterEnvAdapter, config: MirasConfig) -> Self {
        let j = env.state_dim();
        let mut ddpg_config = config.ddpg.clone();
        ddpg_config.seed = config.seed;
        let agent = Ddpg::new(j, j, ddpg_config);
        let model = DynamicsModel::new(j, &config);
        MirasTrainer {
            agent,
            model,
            dataset: TransitionDataset::new(j),
            iteration: 0,
            consumer_budget: env.consumer_budget(),
            rng: SmallRng::seed_from_u64(config.seed.wrapping_add(0xA11CE)),
            config,
            telemetry: telemetry::Telemetry::noop(),
            lend_triggers_total: 0,
        }
    }

    /// Attaches a telemetry handle and cascades it into the DDPG learner.
    /// Each [`run_iteration`](MirasTrainer::run_iteration) then emits an
    /// `iteration` event carrying the full [`IterationReport`] plus the
    /// iteration's Lend–Giveback trigger count and the synthetic-vs-real
    /// per-step reward gap. Recording never changes training results.
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.agent.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The accumulated dataset `D`.
    #[must_use]
    pub fn dataset(&self) -> &TransitionDataset {
        &self.dataset
    }

    /// The current environment model.
    #[must_use]
    pub fn model(&self) -> &DynamicsModel {
        &self.model
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MirasConfig {
        &self.config
    }

    /// Number of completed outer iterations.
    #[must_use]
    pub fn iterations_run(&self) -> usize {
        self.iteration
    }

    /// Snapshot of the current greedy policy as a deployable agent,
    /// including the observation normaliser it was trained with.
    #[must_use]
    pub fn agent(&self) -> MirasAgent {
        MirasAgent::new(self.agent.actor().clone(), self.consumer_budget)
            .with_normalizer(self.agent.obs_normalizer().clone())
    }

    /// The refined model built from the current model and dataset (useful
    /// for model-accuracy evaluations, Fig. 5).
    ///
    /// # Panics
    ///
    /// Panics if no data has been collected yet.
    #[must_use]
    pub fn refined_model(&self) -> RefinedModel {
        if self.config.refine_enabled {
            RefinedModel::fit(
                self.model.clone(),
                &self.dataset,
                self.config.refine_percentile,
            )
        } else {
            RefinedModel::unrefined(self.model.clone())
        }
    }

    /// Runs one outer iteration of Algorithm 2 against the real environment.
    pub fn run_iteration(&mut self, real_env: &mut ClusterEnvAdapter) -> IterationReport {
        // 1. Collect real interactions, resetting periodically (§VI-A3).
        //    The first iteration uses random allocations (the untrained
        //    policy's near-constant actions carry no action-response
        //    information for the model); later iterations use the current
        //    exploratory policy with a small random-action fraction mixed in.
        use rand::Rng;
        let steps = self.config.real_steps_per_iter;
        let random_only = self.config.initial_random_collection && self.iteration == 0;
        let j = real_env.state_dim();
        let mut random_dist = vec![1.0 / j as f64; j];
        let mut s = real_env.reset();
        self.inject_collection_burst(real_env);
        for step in 0..steps {
            if step > 0 && step % self.config.reset_every == 0 {
                s = real_env.reset();
                self.inject_collection_burst(real_env);
                self.agent.resample_perturbation();
            }
            self.agent.observe_state(&s);
            if step % 4 == 0 {
                let raw: Vec<f64> = (0..j).map(|_| self.rng.gen_range(0.0..1.0)).collect();
                random_dist = rl::policy::project_to_simplex(&raw);
            }
            let use_random = random_only
                || self
                    .rng
                    .gen_bool(self.config.random_action_fraction.clamp(0.0, 1.0));
            let a = if use_random {
                random_dist.clone()
            } else {
                self.agent.act_exploratory(&s)
            };
            let t = real_env.step(&a);
            s = t.next_state;
        }
        real_env.drain_into(&mut self.dataset);

        // 2. Retrain the environment model on the grown dataset.
        let model_loss = self.model.train_with_telemetry(
            &self.dataset,
            self.config.model_epochs,
            self.config.model_batch,
            &self.telemetry,
        );

        // 3. Inner loop: improve the policy against the refined model.
        let refined = self.refined_model();
        let synth_seed = self
            .config
            .seed
            .wrapping_add(0xBEEF)
            .wrapping_add(self.iteration as u64);
        let mut synth = SyntheticEnv::new(
            refined,
            self.dataset.clone(),
            self.consumer_budget,
            synth_seed,
        );
        synth.set_telemetry(self.telemetry.clone());
        let mut returns = Vec::new();
        let mut best = f64::NEG_INFINITY;
        let mut stale = 0usize;
        let mut rollouts_run = 0usize;
        for _ in 0..self.config.rollouts_per_iter {
            let mut s = synth.reset();
            self.agent.resample_perturbation();
            let mut total = 0.0;
            for _ in 0..self.config.rollout_len {
                let a = self.agent.act_exploratory(&s);
                let t = synth.step(&a);
                self.agent.observe(&s, &a, t.reward, &t.next_state);
                let _ = self.agent.train_step();
                total += t.reward;
                s = t.next_state;
            }
            returns.push(total);
            rollouts_run += 1;
            // "until performance of the policy stops improving"
            if self.config.inner_patience > 0 {
                if total > best {
                    best = total;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= self.config.inner_patience {
                        break;
                    }
                }
            }
        }
        let synthetic_return_mean = if returns.is_empty() {
            0.0
        } else {
            returns.iter().sum::<f64>() / returns.len() as f64
        };

        // 4. Evaluate the greedy policy on the real environment.
        let eval_return = self.evaluate(real_env, self.config.eval_steps);
        // Evaluation transitions are real interactions too — keep them.
        real_env.drain_into(&mut self.dataset);

        let report = IterationReport {
            iteration: self.iteration,
            steps_collected: steps,
            dataset_size: self.dataset.len(),
            model_loss,
            synthetic_return_mean,
            rollouts_run,
            eval_return,
            exploration_sigma: self.agent.param_noise_sigma(),
        };
        self.lend_triggers_total += synth.lend_triggers();
        if self.telemetry.is_enabled() {
            // Per-step reward means make the synthetic-vs-real gap
            // comparable across rollout/evaluation budgets.
            let synth_mean_step = if self.config.rollout_len > 0 {
                synthetic_return_mean / self.config.rollout_len as f64
            } else {
                0.0
            };
            let real_mean_step = if self.config.eval_steps > 0 {
                eval_return / self.config.eval_steps as f64
            } else {
                0.0
            };
            if let Ok(serde::value::Value::Object(mut fields)) = serde::value::to_value(&report) {
                fields.push((
                    "lend_triggers".to_string(),
                    serde::value::Value::UInt(synth.lend_triggers()),
                ));
                fields.push((
                    "reward_gap_per_step".to_string(),
                    serde::value::Value::Float(synth_mean_step - real_mean_step),
                ));
                self.telemetry
                    .event_struct("iteration", &serde::value::Value::Object(fields));
            }
            self.telemetry.counter("trainer.iterations", 1);
        }
        self.iteration += 1;
        report
    }

    /// Total Lend–Giveback refinement triggers observed across all
    /// iterations' synthetic rollouts.
    #[must_use]
    pub fn lend_triggers_total(&self) -> u64 {
        self.lend_triggers_total
    }

    /// Injects a random episode-opening burst when collection bursts are
    /// configured.
    fn inject_collection_burst(&mut self, real_env: &mut ClusterEnvAdapter) {
        use rand::Rng;
        if let Some(max) = self.config.collect_burst_max.clone() {
            // Half of the episodes stay burst-free so the policy keeps
            // seeing the steady-state regime.
            if self.rng.gen_bool(0.5) {
                return;
            }
            // Tolerate configs reused across ensembles with a different
            // number of workflow types: missing entries burst zero requests.
            let n = real_env.env().num_workflow_types();
            let sizes: Vec<usize> = (0..n)
                .map(|i| match max.get(i) {
                    Some(&m) if m > 0 => self.rng.gen_range(0..=m),
                    _ => 0,
                })
                .collect();
            real_env
                .env_mut()
                .inject_burst(&workflow::BurstSpec::new(sizes));
        }
    }

    /// Aggregated reward of the greedy policy over `steps` real-environment
    /// steps, starting from a reset (the paper's per-iteration evaluation).
    pub fn evaluate(&mut self, real_env: &mut ClusterEnvAdapter, steps: usize) -> f64 {
        let mut s = real_env.reset();
        let mut total = 0.0;
        for _ in 0..steps {
            let a = self.agent.act(&s);
            let t = real_env.step(&a);
            total += t.reward;
            s = t.next_state;
        }
        total
    }

    /// Collects `steps` transitions using uniformly random allocations —
    /// used to bootstrap model-accuracy studies (Fig. 5) where the paper
    /// selects actions randomly.
    pub fn collect_random(&mut self, real_env: &mut ClusterEnvAdapter, steps: usize) {
        use rand::Rng;
        let j = real_env.state_dim();
        let _ = real_env.reset();
        let mut current: Vec<f64> = vec![1.0 / j as f64; j];
        for step in 0..steps {
            if step > 0 && step % self.config.reset_every == 0 {
                let _ = real_env.reset();
            }
            // The paper varies random actions every 4 steps.
            if step % 4 == 0 {
                let raw: Vec<f64> = (0..j).map(|_| self.rng.gen_range(0.0..1.0)).collect();
                current = rl::policy::project_to_simplex(&raw);
            }
            let _ = real_env.step(&current);
        }
        real_env.drain_into(&mut self.dataset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{EnvConfig, MicroserviceEnv};
    use workflow::Ensemble;

    fn real_env(seed: u64) -> ClusterEnvAdapter {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config))
    }

    #[test]
    fn one_iteration_produces_sane_report() {
        let mut env = real_env(0);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(1));
        let report = trainer.run_iteration(&mut env);
        assert_eq!(report.iteration, 0);
        assert_eq!(report.steps_collected, 30);
        // Collection steps plus evaluation steps land in the dataset.
        assert_eq!(report.dataset_size, 35);
        assert!(report.model_loss.is_finite());
        assert!(report.eval_return.is_finite());
        assert!(report.rollouts_run >= 1);
        assert!(report.exploration_sigma.is_some());
        assert_eq!(trainer.iterations_run(), 1);
    }

    #[test]
    fn dataset_grows_across_iterations() {
        let mut env = real_env(2);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(3));
        let r1 = trainer.run_iteration(&mut env);
        let r2 = trainer.run_iteration(&mut env);
        assert!(r2.dataset_size > r1.dataset_size);
        assert_eq!(r2.iteration, 1);
    }

    #[test]
    fn agent_respects_budget_after_training() {
        let mut env = real_env(4);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(5));
        let _ = trainer.run_iteration(&mut env);
        let agent = trainer.agent();
        for wip in [[0.0; 4], [50.0; 4], [3.0, 100.0, 0.0, 7.0]] {
            let m = agent.allocate(&wip);
            assert!(m.iter().sum::<usize>() <= 14);
        }
    }

    #[test]
    fn collect_random_fills_dataset() {
        let mut env = real_env(6);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(7));
        trainer.collect_random(&mut env, 40);
        assert_eq!(trainer.dataset().len(), 40);
    }

    #[test]
    fn refined_model_reflects_config_flag() {
        let mut env = real_env(8);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(9).without_refinement());
        let _ = trainer.run_iteration(&mut env);
        assert!(!trainer.refined_model().is_enabled());
    }

    #[test]
    fn evaluation_is_reproducible_for_same_seeds() {
        let run = |seed| {
            let mut env = real_env(seed);
            let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(seed));
            let r = trainer.run_iteration(&mut env);
            r.eval_return
        };
        assert_eq!(run(10), run(10));
    }
}
