//! The iterative model-based training loop (paper §IV-E, Algorithm 2),
//! with crash-safe checkpointing and a divergence watchdog.

use std::fmt;
use std::path::Path;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rl::{Ddpg, Environment, TrainError, TrainHealth};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{CheckpointError, CheckpointPayload, CHECKPOINT_VERSION};
use crate::config::RolloutMode;
use crate::distributed::{
    run_distributed_rollouts, DistributedParams, VersionSchedule, WorkerFault,
};
use crate::{
    BatchedSyntheticEnv, ClusterEnvAdapter, DynamicsModel, MirasAgent, MirasConfig, RefinedModel,
    SyntheticEnv, TransitionDataset,
};

/// Why a self-healing training driver ultimately gave up.
#[derive(Debug)]
pub enum TrainerError {
    /// The divergence watchdog kept firing after every allowed recovery
    /// attempt (see [`MirasTrainer::run_iteration_recovering`]).
    Train(TrainError),
    /// The rollback checkpoint could not be saved or reloaded.
    Checkpoint(CheckpointError),
}

impl fmt::Display for TrainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainerError::Train(e) => write!(f, "training diverged beyond recovery: {e}"),
            TrainerError::Checkpoint(e) => write!(f, "checkpoint failure during recovery: {e}"),
        }
    }
}

impl std::error::Error for TrainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainerError::Train(e) => Some(e),
            TrainerError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<TrainError> for TrainerError {
    fn from(e: TrainError) -> Self {
        TrainerError::Train(e)
    }
}

impl From<CheckpointError> for TrainerError {
    fn from(e: CheckpointError) -> Self {
        TrainerError::Checkpoint(e)
    }
}

/// What happened during one outer iteration of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Zero-based iteration index.
    pub iteration: usize,
    /// Real-environment steps collected this iteration.
    pub steps_collected: usize,
    /// Total transitions in the dataset `D` after collection.
    pub dataset_size: usize,
    /// Final-epoch model training MSE (standardised space).
    pub model_loss: f64,
    /// Mean return per synthetic rollout during the inner policy loop.
    pub synthetic_return_mean: f64,
    /// Number of synthetic rollouts actually run (early stop may cut the
    /// budget short).
    pub rollouts_run: usize,
    /// Aggregated reward of the greedy policy evaluated on the *real*
    /// environment for the configured number of steps (the y-axis of the
    /// paper's Fig. 6).
    pub eval_return: f64,
    /// Current parameter-noise scale, when parameter noise is in use.
    pub exploration_sigma: Option<f64>,
}

/// Drives Algorithm 2: collect real interactions with the current policy →
/// retrain the environment model → train the policy against the refined
/// model → evaluate — repeated until the policy performs well.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct MirasTrainer {
    config: MirasConfig,
    agent: Ddpg,
    model: DynamicsModel,
    dataset: TransitionDataset,
    iteration: usize,
    consumer_budget: usize,
    rng: SmallRng,
    telemetry: telemetry::Telemetry,
    lend_triggers_total: u64,
    /// Manifest of the last completed distributed inner loop (see
    /// [`MirasTrainer::last_version_schedule`]).
    last_schedule: Option<VersionSchedule>,
    /// One-shot chaos hook consumed by the next distributed inner loop.
    worker_fault: Option<WorkerFault>,
}

impl MirasTrainer {
    /// Creates a trainer sized for the given real environment.
    #[must_use]
    pub fn new(env: &ClusterEnvAdapter, config: MirasConfig) -> Self {
        let j = env.state_dim();
        let mut ddpg_config = config.ddpg.clone();
        ddpg_config.seed = config.seed;
        let agent = Ddpg::new(j, j, ddpg_config);
        let model = DynamicsModel::new(j, &config);
        MirasTrainer {
            agent,
            model,
            dataset: TransitionDataset::new(j),
            iteration: 0,
            consumer_budget: env.consumer_budget(),
            rng: SmallRng::seed_from_u64(config.seed.wrapping_add(0xA11CE)),
            config,
            telemetry: telemetry::Telemetry::noop(),
            lend_triggers_total: 0,
            last_schedule: None,
            worker_fault: None,
        }
    }

    /// Attaches a telemetry handle and cascades it into the DDPG learner.
    /// Each [`run_iteration`](MirasTrainer::run_iteration) then emits an
    /// `iteration` event carrying the full [`IterationReport`] plus the
    /// iteration's Lend–Giveback trigger count and the synthetic-vs-real
    /// per-step reward gap. Recording never changes training results.
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.agent.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The accumulated dataset `D`.
    #[must_use]
    pub fn dataset(&self) -> &TransitionDataset {
        &self.dataset
    }

    /// The current environment model.
    #[must_use]
    pub fn model(&self) -> &DynamicsModel {
        &self.model
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MirasConfig {
        &self.config
    }

    /// Number of completed outer iterations.
    #[must_use]
    pub fn iterations_run(&self) -> usize {
        self.iteration
    }

    /// Snapshot of the current greedy policy as a deployable agent,
    /// including the observation normaliser it was trained with.
    #[must_use]
    pub fn agent(&self) -> MirasAgent {
        MirasAgent::new(self.agent.actor().clone(), self.consumer_budget)
            .with_normalizer(self.agent.obs_normalizer().clone())
    }

    /// The refined model built from the current model and dataset (useful
    /// for model-accuracy evaluations, Fig. 5).
    ///
    /// # Panics
    ///
    /// Panics if no data has been collected yet.
    #[must_use]
    pub fn refined_model(&self) -> RefinedModel {
        if self.config.refine_enabled {
            RefinedModel::fit(
                self.model.clone(),
                &self.dataset,
                self.config.refine_percentile,
            )
        } else {
            RefinedModel::unrefined(self.model.clone())
        }
    }

    /// Runs one outer iteration of Algorithm 2 against the real environment.
    ///
    /// Divergence checks run with the default watchdog policy but treat a
    /// detection as fatal; use
    /// [`try_run_iteration`](MirasTrainer::try_run_iteration) (or the
    /// self-healing [`run_iteration_recovering`](MirasTrainer::run_iteration_recovering))
    /// to handle divergence as a recoverable error instead.
    ///
    /// # Panics
    ///
    /// Panics if training produces non-finite losses or weights or the
    /// critic loss blows up.
    pub fn run_iteration(&mut self, real_env: &mut ClusterEnvAdapter) -> IterationReport {
        let mut health = TrainHealth::default_policy();
        self.try_run_iteration(real_env, &mut health)
            .expect("training diverged; use try_run_iteration to recover")
    }

    /// Runs one outer iteration of Algorithm 2, reporting divergence as a
    /// recoverable [`TrainError`] instead of panicking.
    ///
    /// The watchdog `health` monitors every DDPG update: non-finite losses
    /// or weights and EWMA critic-loss blow-ups abort the iteration. Pass a
    /// watchdog that lives across iterations so its critic-loss baseline
    /// carries over. On `Err`, the trainer has performed part of the
    /// iteration's updates; roll back to a checkpoint before retrying
    /// (see [`run_iteration_recovering`](MirasTrainer::run_iteration_recovering)).
    ///
    /// # Errors
    ///
    /// Returns the [`TrainError`] raised by the first unhealthy DDPG update.
    pub fn try_run_iteration(
        &mut self,
        real_env: &mut ClusterEnvAdapter,
        health: &mut TrainHealth,
    ) -> Result<IterationReport, TrainError> {
        self.try_run_iteration_scheduled(real_env, health, None)
    }

    /// [`try_run_iteration`](MirasTrainer::try_run_iteration) with the
    /// distributed inner loop forced to replay a recorded
    /// [`VersionSchedule`] instead of adopting fresh weight versions:
    /// given the schedule a previous run recorded
    /// ([`last_version_schedule`](MirasTrainer::last_version_schedule)),
    /// the iteration reproduces that run bit for bit. Ignored under
    /// non-distributed rollout modes.
    ///
    /// # Errors
    ///
    /// Returns the [`TrainError`] raised by the first unhealthy DDPG update.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` was recorded under a different worker/lane
    /// configuration or fails [`VersionSchedule::validate`].
    pub fn try_run_iteration_scheduled(
        &mut self,
        real_env: &mut ClusterEnvAdapter,
        health: &mut TrainHealth,
        schedule: Option<&VersionSchedule>,
    ) -> Result<IterationReport, TrainError> {
        // 1. Collect real interactions, resetting periodically (§VI-A3).
        //    The first iteration uses random allocations (the untrained
        //    policy's near-constant actions carry no action-response
        //    information for the model); later iterations use the current
        //    exploratory policy with a small random-action fraction mixed in.
        use rand::Rng;
        let steps = self.config.real_steps_per_iter;
        let random_only = self.config.initial_random_collection && self.iteration == 0;
        let j = real_env.state_dim();
        let mut random_dist = vec![1.0 / j as f64; j];
        let mut s = real_env.reset();
        self.inject_collection_burst(real_env);
        for step in 0..steps {
            if step > 0 && step % self.config.reset_every == 0 {
                s = real_env.reset();
                self.inject_collection_burst(real_env);
                self.agent.resample_perturbation();
            }
            self.agent.observe_state(&s);
            if step % 4 == 0 {
                let raw: Vec<f64> = (0..j).map(|_| self.rng.gen_range(0.0..1.0)).collect();
                random_dist = rl::policy::project_to_simplex(&raw);
            }
            let use_random = random_only
                || self
                    .rng
                    .gen_bool(self.config.random_action_fraction.clamp(0.0, 1.0));
            let a = if use_random {
                random_dist.clone()
            } else {
                self.agent.act_exploratory(&s)
            };
            let t = real_env.step(&a);
            s = t.next_state;
        }
        real_env.drain_into(&mut self.dataset);

        // 2. Retrain the environment model on the grown dataset.
        let model_loss = self.model.train_with_telemetry(
            &self.dataset,
            self.config.model_epochs,
            self.config.model_batch,
            &self.telemetry,
        );

        // 3. Inner loop: improve the policy against the refined model.
        let refined = self.refined_model();
        let synth_seed = self
            .config
            .seed
            .wrapping_add(0xBEEF)
            .wrapping_add(self.iteration as u64);
        let (returns, rollouts_run, lend_triggers) = match self.config.rollout_mode {
            RolloutMode::Sequential => self.inner_loop_sequential(refined, synth_seed, health)?,
            RolloutMode::Lockstep(lanes) => {
                self.inner_loop_lockstep(refined, synth_seed, lanes, health)?
            }
            RolloutMode::Distributed { workers, lanes } => {
                self.inner_loop_distributed(refined, synth_seed, workers, lanes, schedule, health)?
            }
        };
        let synthetic_return_mean = if returns.is_empty() {
            0.0
        } else {
            returns.iter().sum::<f64>() / returns.len() as f64
        };

        // 4. Evaluate the greedy policy on the real environment.
        let eval_return = self.evaluate(real_env, self.config.eval_steps);
        // Evaluation transitions are real interactions too — keep them.
        real_env.drain_into(&mut self.dataset);

        let report = IterationReport {
            iteration: self.iteration,
            steps_collected: steps,
            dataset_size: self.dataset.len(),
            model_loss,
            synthetic_return_mean,
            rollouts_run,
            eval_return,
            exploration_sigma: self.agent.param_noise_sigma(),
        };
        self.lend_triggers_total += lend_triggers;
        if self.telemetry.is_enabled() {
            // Per-step reward means make the synthetic-vs-real gap
            // comparable across rollout/evaluation budgets.
            let synth_mean_step = if self.config.rollout_len > 0 {
                synthetic_return_mean / self.config.rollout_len as f64
            } else {
                0.0
            };
            let real_mean_step = if self.config.eval_steps > 0 {
                eval_return / self.config.eval_steps as f64
            } else {
                0.0
            };
            if let Ok(serde::value::Value::Object(mut fields)) = serde::value::to_value(&report) {
                fields.push((
                    "lend_triggers".to_string(),
                    serde::value::Value::UInt(lend_triggers),
                ));
                fields.push((
                    "reward_gap_per_step".to_string(),
                    serde::value::Value::Float(synth_mean_step - real_mean_step),
                ));
                self.telemetry
                    .event_struct("iteration", &serde::value::Value::Object(fields));
            }
            self.telemetry.counter("trainer.iterations", 1);
        }
        self.iteration += 1;
        Ok(report)
    }

    /// Atomically persists the complete training state — agent, model,
    /// dataset, RNG streams, iteration index, and the real environment's
    /// simulator state — so [`resume`](MirasTrainer::resume) can continue
    /// bit-identically after a crash.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the file cannot be written.
    pub fn save_checkpoint(
        &self,
        real_env: &ClusterEnvAdapter,
        path: &Path,
    ) -> Result<(), CheckpointError> {
        CheckpointPayload {
            version: CHECKPOINT_VERSION,
            config: self.config.clone(),
            iteration: self.iteration,
            consumer_budget: self.consumer_budget,
            dataset: self.dataset.clone(),
            model: self.model.clone(),
            agent: self.agent.snapshot(),
            trainer_rng_state: self.rng.state(),
            lend_triggers_total: self.lend_triggers_total,
            adapter: real_env.snapshot(),
            last_schedule: self.last_schedule.clone(),
        }
        .save(path)
    }

    /// Reloads a checkpoint written by
    /// [`save_checkpoint`](MirasTrainer::save_checkpoint), returning the
    /// trainer *and* the real-environment adapter exactly as they were at
    /// save time. Continuing the loop from the pair is bit-identical to a
    /// run that was never interrupted. Telemetry is not persisted — call
    /// [`set_telemetry`](MirasTrainer::set_telemetry) on the restored pair
    /// to keep recording.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the file is missing, truncated,
    /// corrupt, or from an incompatible format version.
    ///
    /// # Panics
    ///
    /// Panics if `ensemble` does not match the checkpointed simulator state.
    pub fn resume(
        path: &Path,
        ensemble: workflow::Ensemble,
    ) -> Result<(MirasTrainer, ClusterEnvAdapter), CheckpointError> {
        let payload = CheckpointPayload::load(path)?;
        Ok(Self::restore(payload, ensemble))
    }

    /// Materialises a trainer + adapter pair from a loaded payload.
    fn restore(
        payload: CheckpointPayload,
        ensemble: workflow::Ensemble,
    ) -> (Self, ClusterEnvAdapter) {
        let adapter = ClusterEnvAdapter::from_snapshot(ensemble, payload.adapter);
        let trainer = MirasTrainer {
            config: payload.config,
            agent: Ddpg::from_snapshot(payload.agent),
            model: payload.model,
            dataset: payload.dataset,
            iteration: payload.iteration,
            consumer_budget: payload.consumer_budget,
            rng: SmallRng::from_state(payload.trainer_rng_state),
            telemetry: telemetry::Telemetry::noop(),
            lend_triggers_total: payload.lend_triggers_total,
            last_schedule: payload.last_schedule,
            worker_fault: None,
        };
        (trainer, adapter)
    }

    /// Runs one outer iteration with automatic divergence recovery: the
    /// state is checkpointed to `checkpoint_path` first, and when the
    /// watchdog fires the trainer (and the real environment) roll back to
    /// that checkpoint, parameter-noise σ is halved, the agent's noise
    /// stream is re-seeded so the retry explores a different trajectory,
    /// and the iteration is retried — up to `max_retries` times. Every
    /// recovery emits a `recovery` telemetry event (iteration, attempt,
    /// error kind, post-halving σ) and bumps the `trainer.recoveries`
    /// counter.
    ///
    /// If the *current* state is itself unserializable (e.g. NaNs already
    /// smuggled into the replay buffer by an external fault), the refresh
    /// of the rollback point is skipped and the previous good checkpoint at
    /// `checkpoint_path` — if any — remains the rollback target, exactly as
    /// after a crash.
    ///
    /// A rollback resets the environment adapter's telemetry handle (it is
    /// not part of the checkpoint); reattach with
    /// [`ClusterEnvAdapter::set_telemetry`] afterwards if the environment
    /// was recording.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Train`] when every retry diverged, or
    /// [`TrainerError::Checkpoint`] when the rollback checkpoint could not
    /// be saved or reloaded.
    pub fn run_iteration_recovering(
        &mut self,
        real_env: &mut ClusterEnvAdapter,
        health: &mut TrainHealth,
        checkpoint_path: &Path,
        max_retries: usize,
    ) -> Result<IterationReport, TrainerError> {
        match self.save_checkpoint(real_env, checkpoint_path) {
            Ok(()) => {}
            // Unserializable state means the poison is already aboard; the
            // stale-but-good checkpoint stays the rollback point.
            Err(CheckpointError::Corrupt(_)) if checkpoint_path.exists() => {}
            Err(e) => return Err(e.into()),
        }
        let mut attempt = 0usize;
        loop {
            match self.try_run_iteration(real_env, health) {
                Ok(report) => return Ok(report),
                Err(e) => {
                    attempt += 1;
                    let telemetry = self.telemetry.clone();
                    if attempt > max_retries {
                        return Err(e.into());
                    }
                    // Roll back both the trainer and the environment to the
                    // pre-iteration state, then perturb the exploration so
                    // the retry does not deterministically re-diverge.
                    let payload = CheckpointPayload::load(checkpoint_path)?;
                    let ensemble = real_env.env().cluster().ensemble().clone();
                    let (trainer, env) = Self::restore(payload, ensemble);
                    *self = trainer;
                    *real_env = env;
                    self.set_telemetry(telemetry.clone());
                    self.agent.halve_param_noise();
                    let recovery_seed = self
                        .config
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(0xD1DE ^ attempt as u64);
                    self.agent.reseed(recovery_seed);
                    health.reset();
                    telemetry.event(
                        "recovery",
                        &[
                            ("iteration", telemetry::Value::UInt(self.iteration as u64)),
                            ("attempt", telemetry::Value::UInt(attempt as u64)),
                            ("kind", telemetry::Value::String(e.kind().to_string())),
                            (
                                "sigma",
                                telemetry::Value::Float(
                                    self.agent.param_noise_sigma().unwrap_or(f64::NAN),
                                ),
                            ),
                        ],
                    );
                    telemetry.counter("trainer.recoveries", 1);
                }
            }
        }
    }

    /// The original sequential inner loop: one synthetic rollout at a time,
    /// one model forward per step. Returns the per-rollout returns, the
    /// number of rollouts actually run, and the Lend-trigger count.
    fn inner_loop_sequential(
        &mut self,
        refined: RefinedModel,
        synth_seed: u64,
        health: &mut TrainHealth,
    ) -> Result<(Vec<f64>, usize, u64), TrainError> {
        let mut synth = SyntheticEnv::new(
            refined,
            self.dataset.clone(),
            self.consumer_budget,
            synth_seed,
        );
        synth.set_telemetry(self.telemetry.clone());
        let mut returns = Vec::new();
        let mut best = f64::NEG_INFINITY;
        let mut stale = 0usize;
        let mut rollouts_run = 0usize;
        for _ in 0..self.config.rollouts_per_iter {
            let mut s = synth.reset();
            self.agent.resample_perturbation();
            let mut total = 0.0;
            for _ in 0..self.config.rollout_len {
                let a = self.agent.act_exploratory(&s);
                let t = synth.step(&a);
                self.agent.observe(&s, &a, t.reward, &t.next_state);
                let _ = self.agent.try_train_step(health)?;
                total += t.reward;
                s = t.next_state;
            }
            returns.push(total);
            rollouts_run += 1;
            // "until performance of the policy stops improving"
            if self.config.inner_patience > 0 {
                if total > best {
                    best = total;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= self.config.inner_patience {
                        break;
                    }
                }
            }
        }
        Ok((returns, rollouts_run, synth.lend_triggers()))
    }

    /// The lockstep inner loop: the rollout budget is consumed in waves of
    /// up to `lanes` lanes stepped simultaneously, so each step runs ONE
    /// batched dynamics forward and ONE batched actor forward for the whole
    /// wave. Per environment step the agent still performs one train step
    /// per active lane, preserving the sequential loop's data-to-update
    /// ratio. Early-stop patience is applied to completed-lane returns in
    /// lane order. With `lanes == 1` every RNG stream is consumed in the
    /// sequential order, so the result is bit-identical to
    /// [`MirasTrainer::inner_loop_sequential`].
    fn inner_loop_lockstep(
        &mut self,
        refined: RefinedModel,
        synth_seed: u64,
        lanes: usize,
        health: &mut TrainHealth,
    ) -> Result<(Vec<f64>, usize, u64), TrainError> {
        assert!(lanes > 0, "lockstep rollout mode needs at least one lane");
        let mut env = BatchedSyntheticEnv::new(
            refined,
            self.dataset.clone(),
            self.consumer_budget,
            synth_seed,
            lanes,
        );
        env.set_telemetry(self.telemetry.clone());
        let mut returns = Vec::new();
        let mut best = f64::NEG_INFINITY;
        let mut stale = 0usize;
        let mut rollouts_run = 0usize;
        let mut remaining = self.config.rollouts_per_iter;
        let mut prev_states = nn::Matrix::zeros(0, 0);
        let mut totals: Vec<f64> = Vec::with_capacity(lanes);
        'waves: while remaining > 0 {
            let active = lanes.min(remaining);
            env.reset(active);
            self.agent.resample_perturbation();
            totals.clear();
            totals.resize(active, 0.0);
            for _ in 0..self.config.rollout_len {
                // The step swaps the env's state buffers, so keep a copy of
                // the pre-step states for the replay transitions.
                prev_states.resize(env.states().rows(), env.states().cols());
                prev_states
                    .as_mut_slice()
                    .copy_from_slice(env.states().as_slice());
                let actions = self.agent.act_exploratory_batch(&prev_states);
                env.step(&actions);
                self.agent
                    .observe_batch(&prev_states, &actions, env.rewards(), env.states());
                for (t, &r) in totals.iter_mut().zip(env.rewards()) {
                    *t += r;
                }
                for _ in 0..active {
                    let _ = self.agent.try_train_step(health)?;
                }
            }
            for &total in &totals {
                returns.push(total);
                rollouts_run += 1;
                remaining -= 1;
                if self.config.inner_patience > 0 {
                    if total > best {
                        best = total;
                        stale = 0;
                    } else {
                        stale += 1;
                        if stale >= self.config.inner_patience {
                            break 'waves;
                        }
                    }
                }
            }
        }
        Ok((returns, rollouts_run, env.lend_triggers()))
    }

    /// The distributed inner loop: delegates to
    /// [`distributed::run_distributed_rollouts`](crate::distributed::run_distributed_rollouts)
    /// and records the run's version-schedule manifest.
    fn inner_loop_distributed(
        &mut self,
        refined: RefinedModel,
        synth_seed: u64,
        workers: usize,
        lanes: usize,
        schedule: Option<&VersionSchedule>,
        health: &mut TrainHealth,
    ) -> Result<(Vec<f64>, usize, u64), TrainError> {
        let params = DistributedParams {
            workers,
            lanes,
            rollout_len: self.config.rollout_len,
            rollouts: self.config.rollouts_per_iter,
            patience: self.config.inner_patience,
            consumer_budget: self.consumer_budget,
            synth_seed,
            train: true,
            schedule: schedule.cloned(),
            fault: self.worker_fault.take(),
        };
        let outcome = run_distributed_rollouts(
            &mut self.agent,
            refined,
            &self.dataset,
            &params,
            health,
            &self.telemetry,
        )?;
        self.last_schedule = Some(outcome.schedule);
        Ok((outcome.returns, outcome.rollouts_run, outcome.lend_triggers))
    }

    /// The version-schedule manifest recorded by the most recent
    /// distributed inner loop: which weight version each worker adopted
    /// for each rollout wave. Replaying it through
    /// [`try_run_iteration_scheduled`](MirasTrainer::try_run_iteration_scheduled)
    /// (from the same pre-iteration state) reproduces the iteration bit
    /// for bit. `None` until a distributed iteration has run; persisted in
    /// checkpoints.
    #[must_use]
    pub fn last_version_schedule(&self) -> Option<&VersionSchedule> {
        self.last_schedule.as_ref()
    }

    /// Arms a one-shot worker crash for the *next* distributed inner loop
    /// (chaos/testing hook): the given worker silently dies right before
    /// generating the given global wave, and the learner must respawn it.
    /// Ignored by non-distributed rollout modes and by `workers = 1` runs.
    pub fn inject_worker_fault(&mut self, fault: WorkerFault) {
        self.worker_fault = Some(fault);
    }

    /// Mutable access to the underlying DDPG learner. Exposed so
    /// fault-injection tests (and the resilience benchmark) can poison the
    /// replay buffer or inspect optimizer state; production drivers should
    /// not need it.
    pub fn agent_mut(&mut self) -> &mut Ddpg {
        &mut self.agent
    }

    /// Total Lend–Giveback refinement triggers observed across all
    /// iterations' synthetic rollouts.
    #[must_use]
    pub fn lend_triggers_total(&self) -> u64 {
        self.lend_triggers_total
    }

    /// Injects a random episode-opening burst when collection bursts are
    /// configured.
    fn inject_collection_burst(&mut self, real_env: &mut ClusterEnvAdapter) {
        use rand::Rng;
        if let Some(max) = self.config.collect_burst_max.clone() {
            // Half of the episodes stay burst-free so the policy keeps
            // seeing the steady-state regime.
            if self.rng.gen_bool(0.5) {
                return;
            }
            // Tolerate configs reused across ensembles with a different
            // number of workflow types: missing entries burst zero requests.
            let n = real_env.env().num_workflow_types();
            let sizes: Vec<usize> = (0..n)
                .map(|i| match max.get(i) {
                    Some(&m) if m > 0 => self.rng.gen_range(0..=m),
                    _ => 0,
                })
                .collect();
            real_env
                .env_mut()
                .inject_burst(&workflow::BurstSpec::new(sizes));
        }
    }

    /// Aggregated reward of the greedy policy over `steps` real-environment
    /// steps, starting from a reset (the paper's per-iteration evaluation).
    pub fn evaluate(&mut self, real_env: &mut ClusterEnvAdapter, steps: usize) -> f64 {
        let mut s = real_env.reset();
        let mut total = 0.0;
        for _ in 0..steps {
            let a = self.agent.act(&s);
            let t = real_env.step(&a);
            total += t.reward;
            s = t.next_state;
        }
        total
    }

    /// Collects `steps` transitions using uniformly random allocations —
    /// used to bootstrap model-accuracy studies (Fig. 5) where the paper
    /// selects actions randomly.
    pub fn collect_random(&mut self, real_env: &mut ClusterEnvAdapter, steps: usize) {
        use rand::Rng;
        let j = real_env.state_dim();
        let _ = real_env.reset();
        let mut current: Vec<f64> = vec![1.0 / j as f64; j];
        for step in 0..steps {
            if step > 0 && step % self.config.reset_every == 0 {
                let _ = real_env.reset();
            }
            // The paper varies random actions every 4 steps.
            if step % 4 == 0 {
                let raw: Vec<f64> = (0..j).map(|_| self.rng.gen_range(0.0..1.0)).collect();
                current = rl::policy::project_to_simplex(&raw);
            }
            let _ = real_env.step(&current);
        }
        real_env.drain_into(&mut self.dataset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{EnvConfig, MicroserviceEnv};
    use workflow::Ensemble;

    fn real_env(seed: u64) -> ClusterEnvAdapter {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config))
    }

    #[test]
    fn one_iteration_produces_sane_report() {
        let mut env = real_env(0);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(1));
        let report = trainer.run_iteration(&mut env);
        assert_eq!(report.iteration, 0);
        assert_eq!(report.steps_collected, 30);
        // Collection steps plus evaluation steps land in the dataset.
        assert_eq!(report.dataset_size, 35);
        assert!(report.model_loss.is_finite());
        assert!(report.eval_return.is_finite());
        assert!(report.rollouts_run >= 1);
        assert!(report.exploration_sigma.is_some());
        assert_eq!(trainer.iterations_run(), 1);
    }

    #[test]
    fn dataset_grows_across_iterations() {
        let mut env = real_env(2);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(3));
        let r1 = trainer.run_iteration(&mut env);
        let r2 = trainer.run_iteration(&mut env);
        assert!(r2.dataset_size > r1.dataset_size);
        assert_eq!(r2.iteration, 1);
    }

    #[test]
    fn agent_respects_budget_after_training() {
        let mut env = real_env(4);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(5));
        let _ = trainer.run_iteration(&mut env);
        let agent = trainer.agent();
        for wip in [[0.0; 4], [50.0; 4], [3.0, 100.0, 0.0, 7.0]] {
            let m = agent.allocate(&wip);
            assert!(m.iter().sum::<usize>() <= 14);
        }
    }

    #[test]
    fn collect_random_fills_dataset() {
        let mut env = real_env(6);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(7));
        trainer.collect_random(&mut env, 40);
        assert_eq!(trainer.dataset().len(), 40);
    }

    #[test]
    fn refined_model_reflects_config_flag() {
        let mut env = real_env(8);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(9).without_refinement());
        let _ = trainer.run_iteration(&mut env);
        assert!(!trainer.refined_model().is_enabled());
    }

    #[test]
    fn evaluation_is_reproducible_for_same_seeds() {
        let run = |seed| {
            let mut env = real_env(seed);
            let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(seed));
            let r = trainer.run_iteration(&mut env);
            r.eval_return
        };
        assert_eq!(run(10), run(10));
    }

    /// A one-lane lockstep inner loop consumes every RNG stream in the
    /// sequential order, so whole iterations — reports, agent state, and
    /// real-environment state — must match the sequential mode bit for bit.
    #[test]
    fn lockstep_one_lane_is_bit_identical_to_sequential() {
        let mut seq_env = real_env(21);
        let mut seq = MirasTrainer::new(&seq_env, MirasConfig::smoke_test(22));
        let mut lock_env = real_env(21);
        let mut lock = MirasTrainer::new(&lock_env, MirasConfig::smoke_test(22).with_lockstep(1));
        for _ in 0..2 {
            let r_seq = seq.run_iteration(&mut seq_env);
            let r_lock = lock.run_iteration(&mut lock_env);
            assert_eq!(r_seq, r_lock);
        }
        assert_eq!(seq.lend_triggers_total(), lock.lend_triggers_total());
        assert_eq!(seq.agent_mut().snapshot(), lock.agent_mut().snapshot());
        assert_eq!(seq_env.snapshot(), lock_env.snapshot());
    }

    /// Wide lockstep waves must run the full rollout budget and produce a
    /// healthy report (values differ from sequential by design: exploration
    /// randomness is consumed in lane order).
    #[test]
    fn lockstep_wide_runs_full_budget() {
        let mut env = real_env(23);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(24).with_lockstep(3));
        let report = trainer.run_iteration(&mut env);
        // smoke_test has rollouts_per_iter = 4 and no patience: one full
        // 3-lane wave plus one 1-lane remainder wave.
        assert_eq!(report.rollouts_run, 4);
        assert!(report.model_loss.is_finite());
        assert!(report.eval_return.is_finite());
        assert!(report.synthetic_return_mean.is_finite());
    }

    fn temp_checkpoint(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("miras_trainer_test_{name}.json"))
    }

    /// Looks up a key in an object-shaped telemetry JSON value.
    fn field<'a>(v: &'a serde::value::Value, key: &str) -> Option<&'a serde::value::Value> {
        match v {
            serde::value::Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// A one-worker distributed run hosts the environment on a worker
    /// thread but executes the exact lockstep learner body, so whole
    /// iterations must match `Lockstep(lanes)` bit for bit — the same
    /// base-case discipline as `Lockstep(1)` ≡ `Sequential`.
    #[test]
    fn distributed_one_worker_is_bit_identical_to_lockstep() {
        let mut lock_env = real_env(31);
        let mut lock = MirasTrainer::new(&lock_env, MirasConfig::smoke_test(32).with_lockstep(2));
        let mut dist_env = real_env(31);
        let mut dist = MirasTrainer::new(
            &dist_env,
            MirasConfig::smoke_test(32).with_distributed(1, 2),
        );
        for _ in 0..2 {
            let r_lock = lock.run_iteration(&mut lock_env);
            let r_dist = dist.run_iteration(&mut dist_env);
            assert_eq!(r_lock, r_dist);
        }
        assert_eq!(lock.lend_triggers_total(), dist.lend_triggers_total());
        assert_eq!(lock.agent_mut().snapshot(), dist.agent_mut().snapshot());
        assert_eq!(lock_env.snapshot(), dist_env.snapshot());
        // The degenerate manifest: one worker, zero lag everywhere.
        let schedule = dist.last_version_schedule().unwrap();
        schedule.validate().unwrap();
        assert!(schedule.entries.iter().all(|e| e.worker == 0));
    }

    /// The version-schedule manifest fully determines an async N-worker
    /// run: replaying a recorded schedule from the same starting state
    /// reproduces reports, agent weights, and the real environment bit for
    /// bit, however the original worker threads raced.
    #[test]
    fn distributed_replay_of_recorded_schedule_is_bit_identical() {
        let config = || MirasConfig::smoke_test(34).with_distributed(2, 1);
        let mut live_env = real_env(33);
        let mut live = MirasTrainer::new(&live_env, config());
        let live_report = live.run_iteration(&mut live_env);
        let schedule = live.last_version_schedule().unwrap().clone();
        schedule.validate().unwrap();
        // smoke_test: 4 rollouts, 1 lane per wave, no early stop → 4 waves.
        assert_eq!(schedule.entries.len(), 4);
        assert_eq!(live_report.rollouts_run, 4);

        // Replay twice: both runs must equal the recording run exactly.
        for _ in 0..2 {
            let mut env = real_env(33);
            let mut replay = MirasTrainer::new(&env, config());
            let mut health = TrainHealth::default_policy();
            let report = replay
                .try_run_iteration_scheduled(&mut env, &mut health, Some(&schedule))
                .unwrap();
            assert_eq!(report, live_report);
            assert_eq!(replay.last_version_schedule(), Some(&schedule));
            assert_eq!(replay.agent_mut().snapshot(), live.agent_mut().snapshot());
            assert_eq!(env.snapshot(), live_env.snapshot());
        }
    }

    /// Worker crash/restart: resume from a shared checkpoint, kill a
    /// worker mid-iteration, and replay the uninterrupted run's recorded
    /// schedule — the respawned worker regenerates its waves from their
    /// seeds and the result matches the uninterrupted run byte for byte.
    #[test]
    fn distributed_worker_crash_resumes_from_checkpoint_byte_identical() {
        let path = temp_checkpoint("distributed_crash");
        let config = || MirasConfig::smoke_test(36).with_distributed(2, 1);
        // Uninterrupted reference: two iterations, checkpoint after the
        // first (the shared rollback point).
        let mut ref_env = real_env(35);
        let mut reference = MirasTrainer::new(&ref_env, config());
        let _ = reference.run_iteration(&mut ref_env);
        reference.save_checkpoint(&ref_env, &path).unwrap();
        let schedule0 = reference.last_version_schedule().unwrap().clone();
        let ref_r2 = reference.run_iteration(&mut ref_env);
        let schedule1 = reference.last_version_schedule().unwrap().clone();

        // Crashed run: resume from the checkpoint, arm a crash of worker 1
        // right before its second wave (global wave 3), replay schedule1.
        let (mut resumed, mut env) = MirasTrainer::resume(&path, Ensemble::msd()).unwrap();
        // The manifest of the last completed loop survives the checkpoint.
        assert_eq!(resumed.last_version_schedule(), Some(&schedule0));
        let sink = telemetry::JsonlSink::in_memory();
        resumed.set_telemetry(telemetry::Telemetry::new(sink.clone()));
        resumed.inject_worker_fault(WorkerFault {
            worker: 1,
            at_wave: 3,
        });
        let mut health = TrainHealth::default_policy();
        let r2 = resumed
            .try_run_iteration_scheduled(&mut env, &mut health, Some(&schedule1))
            .unwrap();
        assert_eq!(r2, ref_r2);
        assert_eq!(resumed.last_version_schedule(), Some(&schedule1));
        resumed.set_telemetry(telemetry::Telemetry::noop());
        assert_eq!(
            resumed.agent_mut().snapshot(),
            reference.agent_mut().snapshot()
        );
        assert_eq!(env.snapshot(), ref_env.snapshot());

        // The crash actually happened: the learner recorded one respawn.
        sink.try_flush().unwrap();
        let out = String::from_utf8(sink.take_output()).unwrap();
        let restarted = out
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str::<serde::value::Value>(l).ok())
            .any(|v| {
                matches!(field(&v, "t"), Some(serde::value::Value::String(t)) if t == "counter")
                    && matches!(
                        field(&v, "name"),
                        Some(serde::value::Value::String(n)) if n == "train.worker_restarts"
                    )
                    && match field(&v, "value") {
                        Some(serde::value::Value::UInt(n)) => *n >= 1,
                        Some(serde::value::Value::Int(n)) => *n >= 1,
                        _ => false,
                    }
            });
        assert!(restarted, "no worker respawn recorded in telemetry:\n{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resumed_training_is_bit_identical_to_uninterrupted() {
        let path = temp_checkpoint("bit_identical");
        // Uninterrupted reference: three iterations straight through.
        let mut ref_env = real_env(11);
        let mut reference = MirasTrainer::new(&ref_env, MirasConfig::smoke_test(12));
        let _ = reference.run_iteration(&mut ref_env);
        let ref_r2 = reference.run_iteration(&mut ref_env);
        let ref_r3 = reference.run_iteration(&mut ref_env);

        // "Crashed" run: one iteration, checkpoint, drop everything.
        let mut env = real_env(11);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(12));
        let _ = trainer.run_iteration(&mut env);
        trainer.save_checkpoint(&env, &path).unwrap();
        drop(trainer);
        drop(env);

        // Resume from disk and continue.
        let (mut resumed, mut env) = MirasTrainer::resume(&path, Ensemble::msd()).unwrap();
        let r2 = resumed.run_iteration(&mut env);
        let r3 = resumed.run_iteration(&mut env);
        assert_eq!(r2, ref_r2);
        assert_eq!(r3, ref_r3);
        // Not just the reports: the full agent state matches bit for bit.
        assert_eq!(
            resumed.agent_mut().snapshot(),
            reference.agent_mut().snapshot()
        );
        // And the two environments are in identical simulator states.
        assert_eq!(env.snapshot(), ref_env.snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_deployable_agent_matches_trainer_agent() {
        let path = temp_checkpoint("deployable");
        let mut env = real_env(21);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(22));
        let _ = trainer.run_iteration(&mut env);
        trainer.save_checkpoint(&env, &path).unwrap();
        let payload = crate::CheckpointPayload::load(&path).unwrap();
        assert_eq!(payload.version(), crate::CHECKPOINT_VERSION);
        assert_eq!(payload.iteration(), 1);
        assert_eq!(payload.consumer_budget(), trainer.agent().consumer_budget());
        // The agent extracted straight from the payload is the exact agent
        // a full resume would deploy.
        assert_eq!(payload.deployable_agent(), trainer.agent());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_checkpoint_is_rejected_as_corrupt() {
        let path = temp_checkpoint("truncated");
        let mut env = real_env(13);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(14));
        let _ = trainer.run_iteration(&mut env);
        trainer.save_checkpoint(&env, &path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = MirasTrainer::resume(&path, Ensemble::msd()).unwrap_err();
        assert!(
            matches!(err, crate::CheckpointError::Corrupt(_)),
            "expected Corrupt, got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_save_leaves_no_temp_file() {
        let path = temp_checkpoint("atomic");
        let mut env = real_env(15);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(16));
        let _ = trainer.run_iteration(&mut env);
        trainer.save_checkpoint(&env, &path).unwrap();
        assert!(path.exists());
        assert!(!std::path::Path::new(&format!("{}.tmp", path.display())).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn watchdog_detects_poisoned_replay_and_recovering_driver_heals() {
        use rl::StoredTransition;
        let path = temp_checkpoint("recovery");
        let sink = telemetry::JsonlSink::in_memory();
        let mut env = real_env(17);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(18));
        trainer.set_telemetry(telemetry::Telemetry::new(sink.clone()));
        let mut health = rl::TrainHealth::default_policy();

        // A healthy first iteration establishes a baseline.
        let r1 = trainer
            .run_iteration_recovering(&mut env, &mut health, &path, 2)
            .unwrap();
        assert!(r1.eval_return.is_finite());

        // Poison the replay buffer behind the validation layer's back —
        // the stand-in for any divergence source inside an iteration. Many
        // copies so the next sampled batch almost surely hits one.
        let sigma_before = trainer.agent_mut().param_noise_sigma().unwrap();
        for _ in 0..24 {
            trainer
                .agent_mut()
                .replay_mut()
                .push_unchecked(StoredTransition {
                    state: vec![f64::NAN; 4],
                    action: vec![0.25; 4],
                    reward: f64::NAN,
                    next_state: vec![f64::NAN; 4],
                });
        }
        let r2 = trainer
            .run_iteration_recovering(&mut env, &mut health, &path, 3)
            .expect("rollback + retry heals the poisoned run");
        assert!(r2.model_loss.is_finite());
        assert!(r2.eval_return.is_finite());
        // The rollback restored the pre-poison checkpoint and halved σ.
        let sigma_after = trainer.agent_mut().param_noise_sigma().unwrap();
        assert!(
            sigma_after < sigma_before,
            "σ should shrink on recovery: {sigma_before} -> {sigma_after}"
        );

        // The recovery is visible in telemetry.
        trainer.set_telemetry(telemetry::Telemetry::noop());
        sink.try_flush().unwrap();
        let out = String::from_utf8(sink.take_output()).unwrap();
        assert!(out.contains("\"recovery\""), "no recovery event in {out}");
        assert!(out.contains("non_finite"), "no error kind in {out}");
        assert!(out.contains("trainer.recoveries"), "no counter in {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_iteration_recovering_gives_up_after_retry_budget() {
        let path = temp_checkpoint("gives_up");
        let mut env = real_env(19);
        let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(20));
        let mut health = rl::TrainHealth::default_policy();
        let _ = trainer
            .run_iteration_recovering(&mut env, &mut health, &path, 1)
            .unwrap();
        // A zero-retry budget with a poisoned buffer must surface
        // TrainerError::Train instead of retrying.
        use rl::StoredTransition;
        for _ in 0..24 {
            trainer
                .agent_mut()
                .replay_mut()
                .push_unchecked(StoredTransition {
                    state: vec![f64::NAN; 4],
                    action: vec![0.25; 4],
                    reward: f64::NAN,
                    next_state: vec![f64::NAN; 4],
                });
        }
        let err = trainer
            .run_iteration_recovering(&mut env, &mut health, &path, 0)
            .unwrap_err();
        assert!(matches!(err, TrainerError::Train(_)), "got {err}");
        std::fs::remove_file(&path).ok();
    }
}
