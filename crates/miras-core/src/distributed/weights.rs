//! Versioned weight broadcast: immutable snapshots published by the
//! learner, adopted by rollout workers at wave boundaries.

use std::sync::{Arc, Condvar, Mutex};

use rl::PolicyWeights;
use serde::{Deserialize, Serialize};

use crate::RefinedModel;

/// One immutable broadcast snapshot of everything a rollout worker needs:
/// the policy weights (actor, observation normaliser, parameter-noise σ)
/// and the refined dynamics model.
///
/// Versions are numbered `0, 1, 2, …` within one inner loop: version 0 is
/// the state at loop entry and version `g + 1` is published immediately
/// after the learner merges wave `g`. The dynamics model is retrained only
/// at outer-iteration boundaries, so all versions of one inner loop share
/// the same `dynamics` `Arc`.
#[derive(Debug, Clone)]
pub struct WeightVersion {
    /// Monotone version number (see type docs for the numbering).
    pub version: u64,
    /// Frozen policy weights captured from the learner's agent.
    pub policy: PolicyWeights,
    /// The iteration's refined dynamics model (shared across versions).
    pub dynamics: Arc<RefinedModel>,
}

struct StoreState {
    latest: Arc<WeightVersion>,
    /// Every version ever published (including the initial one), kept only
    /// in replay mode where workers must adopt *exact* historical versions.
    history: Option<Vec<Arc<WeightVersion>>>,
    closed: bool,
}

/// The broadcast slot the learner publishes [`WeightVersion`]s into.
///
/// Publishing swaps an `Arc` under a mutex (the critical section is two
/// pointer moves — std has no lock-free swap primitive, and the learner
/// publishes once per merged wave, so contention is negligible). Workers
/// either grab the freshest snapshot ([`VersionStore::latest`], live mode)
/// or block for an exact recorded version ([`VersionStore::wait_for`],
/// replay mode).
#[derive(Debug)]
pub struct VersionStore {
    inner: Mutex<StoreState>,
    published: Condvar,
}

impl std::fmt::Debug for StoreState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreState")
            .field("latest", &self.latest.version)
            .field("closed", &self.closed)
            .finish_non_exhaustive()
    }
}

impl VersionStore {
    /// Creates a store holding `initial` as the current version. With
    /// `keep_history` every published version stays reachable by number —
    /// required for schedule replay, wasteful otherwise.
    #[must_use]
    pub fn new(initial: WeightVersion, keep_history: bool) -> Self {
        let latest = Arc::new(initial);
        let history = keep_history.then(|| vec![Arc::clone(&latest)]);
        VersionStore {
            inner: Mutex::new(StoreState {
                latest,
                history,
                closed: false,
            }),
            published: Condvar::new(),
        }
    }

    /// Publishes the next version and wakes every waiting worker.
    ///
    /// # Panics
    ///
    /// Panics if `next.version` is not exactly one past the current
    /// version — out-of-order publishes would break the schedule-replay
    /// availability guarantee.
    pub fn publish(&self, next: WeightVersion) {
        let mut st = self.inner.lock().unwrap();
        assert_eq!(
            next.version,
            st.latest.version + 1,
            "weight versions must be published in order"
        );
        let arc = Arc::new(next);
        if let Some(history) = &mut st.history {
            history.push(Arc::clone(&arc));
        }
        st.latest = arc;
        drop(st);
        self.published.notify_all();
    }

    /// The freshest published version (what live-mode workers adopt).
    #[must_use]
    pub fn latest(&self) -> Arc<WeightVersion> {
        Arc::clone(&self.inner.lock().unwrap().latest)
    }

    /// Blocks until `version` has been published and returns it, or `None`
    /// if the store is [`close`](VersionStore::close)d first (the learner
    /// stopped early; the worker should exit).
    ///
    /// # Panics
    ///
    /// Panics if `version` was already superseded and the store was built
    /// without history — exact historical versions only exist in replay
    /// mode.
    #[must_use]
    pub fn wait_for(&self, version: u64) -> Option<Arc<WeightVersion>> {
        let mut st = self.inner.lock().unwrap();
        loop {
            if st.latest.version == version {
                return Some(Arc::clone(&st.latest));
            }
            if let Some(history) = &st.history {
                if let Some(v) = history.iter().find(|v| v.version == version) {
                    return Some(Arc::clone(v));
                }
            } else if st.latest.version > version {
                panic!("version {version} superseded and the store keeps no history");
            }
            if st.closed {
                return None;
            }
            st = self.published.wait(st).unwrap();
        }
    }

    /// Marks the store closed and wakes all waiters; subsequent or pending
    /// [`wait_for`](VersionStore::wait_for) calls for unpublished versions
    /// return `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.published.notify_all();
    }
}

/// One line of the run manifest: worker `worker` generated global wave
/// `wave` using weight version `version`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaveEntry {
    /// Worker index in `0..workers`.
    pub worker: usize,
    /// Global wave index (waves partition the iteration's rollout budget
    /// into `lanes`-wide batches).
    pub wave: usize,
    /// The weight version the worker adopted for this wave.
    pub version: u64,
}

/// The run manifest of one distributed inner loop: which weight version
/// each worker adopted for each wave, in merge order.
///
/// This is the *only* nondeterministic ingredient of an async run; forcing
/// a recorded schedule
/// ([`MirasTrainer::try_run_iteration_scheduled`](crate::MirasTrainer::try_run_iteration_scheduled))
/// replays the run bit for bit. Serialized inside checkpoints and (by the
/// CLI) as a standalone JSON manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionSchedule {
    /// Worker count the schedule was recorded with.
    pub workers: usize,
    /// Lanes per worker the schedule was recorded with.
    pub lanes: usize,
    /// One entry per merged wave, indexed by global wave number.
    pub entries: Vec<WaveEntry>,
}

impl VersionSchedule {
    /// Checks the structural invariants a recorded schedule must satisfy:
    /// entry `g` belongs to worker `g mod workers`, names wave `g`, and
    /// uses a version `≤ g` (causality: version `v` is published only
    /// after wave `v − 1` is merged, so a worker cannot have adopted a
    /// later one — and the same bound is what guarantees replay cannot
    /// deadlock).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("schedule has zero workers".to_string());
        }
        if self.lanes == 0 {
            return Err("schedule has zero lanes".to_string());
        }
        for (g, entry) in self.entries.iter().enumerate() {
            if entry.wave != g {
                return Err(format!("entry {g} names wave {}", entry.wave));
            }
            if entry.worker != g % self.workers {
                return Err(format!(
                    "wave {g} assigned to worker {} (expected {})",
                    entry.worker,
                    g % self.workers
                ));
            }
            if entry.version > g as u64 {
                return Err(format!(
                    "wave {g} claims version {} from the future",
                    entry.version
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicsModel, MirasConfig};
    use rl::{Ddpg, DdpgConfig};

    fn version(n: u64) -> WeightVersion {
        let agent = Ddpg::new(2, 2, DdpgConfig::small_test(0));
        let model = DynamicsModel::new(2, &MirasConfig::smoke_test(0));
        WeightVersion {
            version: n,
            policy: agent.policy_weights(),
            dynamics: Arc::new(RefinedModel::unrefined(model)),
        }
    }

    #[test]
    fn store_publishes_in_order_and_serves_history() {
        let store = VersionStore::new(version(0), true);
        assert_eq!(store.latest().version, 0);
        store.publish(version(1));
        store.publish(version(2));
        assert_eq!(store.latest().version, 2);
        // Historical versions stay reachable in replay mode.
        assert_eq!(store.wait_for(1).unwrap().version, 1);
        assert_eq!(store.wait_for(2).unwrap().version, 2);
        store.close();
        // Unpublished versions resolve to None once closed.
        assert!(store.wait_for(7).is_none());
    }

    #[test]
    #[should_panic(expected = "published in order")]
    fn out_of_order_publish_panics() {
        let store = VersionStore::new(version(0), false);
        store.publish(version(5));
    }

    #[test]
    fn wait_for_blocks_until_published() {
        let store = Arc::new(VersionStore::new(version(0), true));
        let waiter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.wait_for(2).map(|v| v.version))
        };
        store.publish(version(1));
        store.publish(version(2));
        assert_eq!(waiter.join().unwrap(), Some(2));
    }

    #[test]
    fn schedule_validation_catches_future_versions_and_misassignment() {
        let mut s = VersionSchedule {
            workers: 2,
            lanes: 4,
            entries: vec![
                WaveEntry {
                    worker: 0,
                    wave: 0,
                    version: 0,
                },
                WaveEntry {
                    worker: 1,
                    wave: 1,
                    version: 1,
                },
                WaveEntry {
                    worker: 0,
                    wave: 2,
                    version: 1,
                },
            ],
        };
        assert!(s.validate().is_ok());
        s.entries[2].version = 3;
        assert!(s.validate().unwrap_err().contains("future"));
        s.entries[2].version = 1;
        s.entries[1].worker = 0;
        assert!(s.validate().unwrap_err().contains("assigned"));
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let s = VersionSchedule {
            workers: 3,
            lanes: 8,
            entries: vec![
                WaveEntry {
                    worker: 0,
                    wave: 0,
                    version: 0,
                },
                WaveEntry {
                    worker: 1,
                    wave: 1,
                    version: 0,
                },
                WaveEntry {
                    worker: 2,
                    wave: 2,
                    version: 2,
                },
            ],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: VersionSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
