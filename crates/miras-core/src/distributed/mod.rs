//! Distributed actor–learner training: async rollout workers, sharded
//! replay, versioned weight broadcast.
//!
//! This module splits the inner policy loop of Algorithm 2 (the
//! synthetic-rollout + DDPG-update phase driven by
//! [`MirasTrainer`](crate::MirasTrainer)) into an actor–learner system in
//! the style of DRPC:
//!
//! * **N rollout workers** ([`worker`] module) each own a lane-batched
//!   [`BatchedSyntheticEnv`](crate::BatchedSyntheticEnv) plus a read-only
//!   snapshot of the actor/dynamics weights, generate whole rollout *waves*
//!   (one `lanes`-wide batch of synthetic rollouts), and push them into a
//!   **sharded replay stream** ([`replay_shard`] module) — one bounded
//!   channel per worker, so a slow learner applies backpressure instead of
//!   buffering unboundedly.
//! * **One central learner** ([`learner`] module) drains the shards in a
//!   *fixed visitation order* (wave `g` always comes from shard
//!   `g mod workers`), feeds every transition to the DDPG agent in a
//!   deterministic ordered reduction, and after each merged wave broadcasts
//!   an immutable, versioned weight snapshot
//!   ([`WeightVersion`]) through the [`VersionStore`]. Workers adopt the
//!   freshest published version at wave boundaries.
//!
//! # Determinism contract
//!
//! Asynchrony moves exactly **one** bit of nondeterminism into the run:
//! *which* weight version each worker happened to adopt for each wave. The
//! learner records that choice in a [`VersionSchedule`] manifest (one
//! [`WaveEntry`] per merged wave). Everything else is pinned:
//!
//! * Wave `g` is a **pure function of `(weights, seed)`**: its environment
//!   lanes are reseeded from `wave_seed(synth_seed, g)` (the PR-4
//!   `LANE_SEED_STRIDE` split applied on top of a per-wave
//!   [`WAVE_SEED_STRIDE`] stream), and its exploration is one actor-weight
//!   perturbation drawn from a wave-local RNG. No wave depends on any
//!   other wave's RNG history, which is also what makes a restarted worker
//!   able to regenerate wave `g` without replaying waves `0..g`.
//! * The learner merges waves in global wave order and consumes its own
//!   minibatch RNG in that order.
//! * Version `g + 1` is published immediately after merging wave `g`, so a
//!   recorded version `v ≤ g` is always *available* when a replay worker
//!   asks for it — replaying a schedule cannot deadlock.
//!
//! Re-running with the recorded schedule forced
//! ([`MirasTrainer::try_run_iteration_scheduled`](crate::MirasTrainer::try_run_iteration_scheduled))
//! therefore reproduces the original run **bit for bit** — same reports,
//! same agent weights — regardless of thread timing, and regardless of
//! whether a worker crashed and was respawned along the way.
//!
//! # The `workers = 1` base case
//!
//! With a single worker there is no version lag to record: the learner
//! runs the exact lockstep inner-loop body with the environment hosted on
//! the worker thread behind a request/reply channel. A
//! `Distributed { workers: 1, lanes }` run is therefore **bit-identical**
//! to `Lockstep(lanes)` — the same base-case discipline PR 4 used
//! (`Lockstep(1)` ≡ `Sequential`). With `workers ≥ 2` workers act on
//! *frozen* per-wave policy snapshots (observation normaliser and
//! parameter-noise σ included), so results are deterministic-but-different
//! from lockstep: a throughput regime, not a replay of it.

mod learner;
mod replay_shard;
mod weights;
mod worker;

pub use learner::{run_distributed_rollouts, DistributedOutcome, DistributedParams, WorkerFault};
pub use weights::{VersionSchedule, VersionStore, WaveEntry, WeightVersion};
pub use worker::{active_lanes, total_waves, wave_seed, WAVE_SEED_STRIDE};
