//! Sharded replay handoff: one bounded SPSC channel per rollout worker.
//!
//! Each worker owns exactly one [`ShardSender`]; the learner holds the
//! matching [`ShardReceiver`]s and visits them in the fixed order
//! `g mod workers` for global wave `g`. Bounded capacity gives
//! backpressure: a worker that runs ahead of the learner blocks on `send`
//! instead of piling up waves, which caps both memory and the
//! weight-version lag a wave can be generated at.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvError, SyncSender};
use std::sync::Arc;

/// Waves a shard buffers before its worker blocks. Small on purpose: depth
/// bounds the staleness of in-flight data (a buffered wave was generated
/// against weights up to `workers × (capacity + 1)` versions old).
pub(super) const SHARD_CAPACITY: usize = 4;

/// One completed rollout wave: `steps × active` transitions in step-major
/// layout, plus the provenance the learner needs for the run manifest.
#[derive(Debug)]
pub(super) struct WaveResult {
    /// Worker that generated the wave.
    pub worker: usize,
    /// Global wave index.
    pub wave: usize,
    /// Weight version the wave was generated under.
    pub version: u64,
    /// Lanes active in this wave (the last wave may be narrower).
    pub active: usize,
    /// State/action dimensionality `J`.
    pub state_dim: usize,
    /// Steps per lane (the configured rollout length).
    pub steps: usize,
    /// Pre-step states, `steps × active × J`, step-major.
    pub states: Vec<f64>,
    /// Actions taken, same layout as `states`.
    pub actions: Vec<f64>,
    /// Rewards, `steps × active`, step-major.
    pub rewards: Vec<f64>,
    /// Post-step states, same layout as `states`.
    pub next_states: Vec<f64>,
    /// Lend–Giveback triggers fired during the wave.
    pub lend_triggers: u64,
}

impl WaveResult {
    /// An empty wave with buffers sized for `steps × active` transitions.
    pub fn with_capacity(
        worker: usize,
        wave: usize,
        version: u64,
        active: usize,
        state_dim: usize,
        steps: usize,
    ) -> Self {
        let n = steps * active * state_dim;
        WaveResult {
            worker,
            wave,
            version,
            active,
            state_dim,
            steps,
            states: Vec::with_capacity(n),
            actions: Vec::with_capacity(n),
            rewards: Vec::with_capacity(steps * active),
            next_states: Vec::with_capacity(n),
            lend_triggers: 0,
        }
    }
}

/// Creates one bounded replay shard, returning the worker and learner
/// halves. The pair shares a depth counter so the learner can export the
/// shard's fill level as a gauge without locking the channel.
pub(super) fn shard_channel() -> (ShardSender, ShardReceiver) {
    let (tx, rx) = std::sync::mpsc::sync_channel(SHARD_CAPACITY);
    let depth = Arc::new(AtomicUsize::new(0));
    (
        ShardSender {
            tx,
            depth: Arc::clone(&depth),
        },
        ShardReceiver { rx, depth },
    )
}

/// The worker half of a replay shard.
#[derive(Debug)]
pub(super) struct ShardSender {
    tx: SyncSender<WaveResult>,
    depth: Arc<AtomicUsize>,
}

impl ShardSender {
    /// Pushes a wave, blocking while the shard is full. Returns `Err` with
    /// the wave when the learner hung up (the worker should exit).
    // The large Err is deliberate: like `std::sync::mpsc::SendError`, it
    // returns the unsent wave to the caller instead of dropping it.
    #[allow(clippy::result_large_err)]
    pub fn send(&self, wave: WaveResult) -> Result<(), WaveResult> {
        // Count the wave before the (possibly blocking) send so the gauge
        // includes the in-flight wave a stalled worker is holding.
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.tx.send(wave).map_err(|e| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            e.0
        })
    }
}

/// The learner half of a replay shard.
#[derive(Debug)]
pub(super) struct ShardReceiver {
    rx: Receiver<WaveResult>,
    depth: Arc<AtomicUsize>,
}

impl ShardReceiver {
    /// Pops the next wave, blocking until one arrives. `Err` means the
    /// worker exited (fault or schedule end) *and* the buffer is drained —
    /// `mpsc` receivers hand out everything buffered before reporting the
    /// hangup, so no completed wave is ever lost to a crash.
    pub fn recv(&self) -> Result<WaveResult, RecvError> {
        let wave = self.rx.recv()?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Ok(wave)
    }

    /// Waves currently buffered or blocked in-flight on the worker side.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> WaveResult {
        WaveResult::with_capacity(0, n, 0, 1, 1, 1)
    }

    #[test]
    fn depth_tracks_buffered_waves_and_survives_hangup() {
        let (tx, rx) = shard_channel();
        tx.send(wave(0)).unwrap();
        tx.send(wave(1)).unwrap();
        assert_eq!(rx.depth(), 2);
        assert_eq!(rx.recv().unwrap().wave, 0);
        assert_eq!(rx.depth(), 1);
        // Worker hangs up with a wave still buffered: it must be drained
        // before the hangup is reported.
        drop(tx);
        assert_eq!(rx.recv().unwrap().wave, 1);
        assert!(rx.recv().is_err());
        assert_eq!(rx.depth(), 0);
    }

    #[test]
    fn send_to_hung_up_learner_returns_the_wave() {
        let (tx, rx) = shard_channel();
        drop(rx);
        let returned = tx.send(wave(7)).unwrap_err();
        assert_eq!(returned.wave, 7);
    }
}
