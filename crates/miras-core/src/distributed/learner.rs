//! The central learner: ordered shard merge, DDPG updates, version
//! broadcast — plus the `workers = 1` synchronous base case.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use nn::Matrix;
use rl::{Ddpg, TrainError, TrainHealth};
use telemetry::{Telemetry, Value};

use super::replay_shard::{shard_channel, ShardReceiver};
use super::weights::{VersionSchedule, VersionStore, WaveEntry, WeightVersion};
use super::worker::{active_lanes, run_rollout_worker, total_waves, WorkerSpec};
use crate::{BatchedSyntheticEnv, RefinedModel, TransitionDataset};

/// Upper bound on worker respawns per inner loop before the learner gives
/// up — a worker that keeps dying at the same wave is a bug, not a crash.
const MAX_WORKER_RESTARTS: u64 = 8;

/// Chaos hook: make worker `worker` silently exit right before generating
/// global wave `at_wave`, so crash/restart recovery can be exercised
/// deterministically in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// Worker index to kill.
    pub worker: usize,
    /// Global wave index the worker dies at (it never generates this wave).
    pub at_wave: usize,
}

/// Everything one distributed inner loop needs, minus the mutable learner
/// state ([`run_distributed_rollouts`] borrows the agent and watchdog).
#[derive(Debug, Clone, Default)]
pub struct DistributedParams {
    /// Rollout worker count (`1` selects the synchronous lockstep-exact
    /// path, `≥ 2` the async frozen-version path).
    pub workers: usize,
    /// Lockstep lanes per worker.
    pub lanes: usize,
    /// Steps per synthetic rollout.
    pub rollout_len: usize,
    /// Rollout budget for the loop.
    pub rollouts: usize,
    /// Early-stop patience on completed-rollout returns (0 = off).
    pub patience: usize,
    /// Consumer budget `C`.
    pub consumer_budget: usize,
    /// The iteration's synthetic-rollout seed.
    pub synth_seed: u64,
    /// When false, transitions are observed but no gradient updates run —
    /// the pure rollout-throughput regime the benches measure.
    pub train: bool,
    /// Replay a recorded manifest instead of adopting fresh versions.
    pub schedule: Option<VersionSchedule>,
    /// Inject a worker crash (see [`WorkerFault`]).
    pub fault: Option<WorkerFault>,
}

/// What one distributed inner loop produced.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Per-rollout returns, in merge (= lane-within-wave) order.
    pub returns: Vec<f64>,
    /// Rollouts completed (early stop may cut the budget short).
    pub rollouts_run: usize,
    /// Lend–Giveback triggers across all waves.
    pub lend_triggers: u64,
    /// The recorded run manifest (replaying it reproduces this outcome
    /// bit for bit).
    pub schedule: VersionSchedule,
    /// Total environment steps taken (`Σ waves steps × active`).
    pub env_steps: u64,
    /// Worker respawns the learner performed.
    pub worker_restarts: u64,
}

/// Runs one inner policy loop of Algorithm 2 across `params.workers`
/// rollout workers, returning per-rollout returns plus the recorded
/// version-schedule manifest. See the [module docs](super) for the
/// architecture and determinism contract.
///
/// # Errors
///
/// Returns the [`TrainError`] raised by the first unhealthy DDPG update.
///
/// # Panics
///
/// Panics if `params` is structurally invalid (zero workers/lanes, a
/// schedule recorded under different workers/lanes, or a schedule that
/// fails [`VersionSchedule::validate`]), if a worker thread panics, or if
/// workers keep dying past the respawn budget.
pub fn run_distributed_rollouts(
    agent: &mut Ddpg,
    refined: RefinedModel,
    dataset: &TransitionDataset,
    params: &DistributedParams,
    health: &mut TrainHealth,
    telemetry: &Telemetry,
) -> Result<DistributedOutcome, TrainError> {
    assert!(params.workers > 0, "need at least one worker");
    assert!(params.lanes > 0, "need at least one lane");
    if let Some(schedule) = &params.schedule {
        assert_eq!(
            schedule.workers, params.workers,
            "schedule was recorded with a different worker count"
        );
        assert_eq!(
            schedule.lanes, params.lanes,
            "schedule was recorded with a different lane count"
        );
        schedule
            .validate()
            .unwrap_or_else(|e| panic!("invalid version schedule: {e}"));
        assert!(
            schedule.entries.len() <= total_waves(params.rollouts, params.lanes),
            "schedule is longer than the rollout budget"
        );
    }
    if params.workers == 1 {
        sync_rollouts(agent, refined, dataset, params, health, telemetry)
    } else {
        async_rollouts(agent, refined, dataset, params, health, telemetry)
    }
}

/// Remote-environment request/reply protocol of the synchronous path.
enum EnvRequest {
    Reset { active: usize },
    Step { actions: Matrix },
}

struct EnvReply {
    states: Matrix,
    rewards: Vec<f64>,
}

/// The `workers = 1` path: the learner executes the exact lockstep
/// inner-loop body — live agent acting (normaliser updates, parameter
/// noise ticking and adapting mid-wave) and per-step train steps — with
/// the environment hosted on the worker thread behind a request/reply
/// channel. Bit-identical to `Lockstep(lanes)` by construction.
fn sync_rollouts(
    agent: &mut Ddpg,
    refined: RefinedModel,
    dataset: &TransitionDataset,
    params: &DistributedParams,
    health: &mut TrainHealth,
    telemetry: &Telemetry,
) -> Result<DistributedOutcome, TrainError> {
    let (req_tx, req_rx) = channel::<EnvRequest>();
    let (rep_tx, rep_rx) = channel::<EnvReply>();
    let dataset = dataset.clone();
    let env_telemetry = telemetry.clone();
    let lanes = params.lanes;
    let consumer_budget = params.consumer_budget;
    let synth_seed = params.synth_seed;

    std::thread::scope(|scope| {
        let env_thread = scope.spawn(move || {
            env_host(
                refined,
                dataset,
                consumer_budget,
                synth_seed,
                lanes,
                env_telemetry,
                &req_rx,
                &rep_tx,
            )
        });
        let result = sync_learner_loop(agent, params, health, telemetry, &req_tx, &rep_rx);
        // Hang up so the env host exits, then collect its trigger count.
        drop(req_tx);
        let lend_triggers = env_thread.join().expect("environment host panicked");
        result.map(|mut outcome| {
            outcome.lend_triggers = lend_triggers;
            outcome
        })
    })
}

/// The environment host thread of the synchronous path: owns the batched
/// env, serves reset/step requests until the learner hangs up, and returns
/// the accumulated Lend-trigger count.
#[allow(clippy::too_many_arguments)]
fn env_host(
    refined: RefinedModel,
    dataset: TransitionDataset,
    consumer_budget: usize,
    synth_seed: u64,
    lanes: usize,
    telemetry: Telemetry,
    req_rx: &Receiver<EnvRequest>,
    rep_tx: &Sender<EnvReply>,
) -> u64 {
    nn::threads::with_serial(|| {
        let mut env =
            BatchedSyntheticEnv::new(refined, dataset, consumer_budget, synth_seed, lanes);
        env.set_telemetry(telemetry);
        while let Ok(req) = req_rx.recv() {
            let reply = match req {
                EnvRequest::Reset { active } => {
                    env.reset(active);
                    EnvReply {
                        states: env.states().clone(),
                        rewards: Vec::new(),
                    }
                }
                EnvRequest::Step { actions } => {
                    let rewards = env.step(&actions).to_vec();
                    EnvReply {
                        states: env.states().clone(),
                        rewards,
                    }
                }
            };
            if rep_tx.send(reply).is_err() {
                break;
            }
        }
        env.lend_triggers()
    })
}

fn sync_learner_loop(
    agent: &mut Ddpg,
    params: &DistributedParams,
    health: &mut TrainHealth,
    telemetry: &Telemetry,
    req_tx: &Sender<EnvRequest>,
    rep_rx: &Receiver<EnvReply>,
) -> Result<DistributedOutcome, TrainError> {
    let request = |req: EnvRequest| -> EnvReply {
        req_tx.send(req).expect("environment host hung up");
        rep_rx.recv().expect("environment host hung up")
    };
    let mut returns = Vec::new();
    let mut best = f64::NEG_INFINITY;
    let mut stale = 0usize;
    let mut rollouts_run = 0usize;
    let mut remaining = params.rollouts;
    let mut env_steps = 0u64;
    let mut schedule = VersionSchedule {
        workers: 1,
        lanes: params.lanes,
        entries: Vec::new(),
    };
    let mut totals: Vec<f64> = Vec::with_capacity(params.lanes);
    let mut wave = 0usize;
    'waves: while remaining > 0 {
        let active = params.lanes.min(remaining);
        let mut states = request(EnvRequest::Reset { active }).states;
        agent.resample_perturbation();
        totals.clear();
        totals.resize(active, 0.0);
        for _ in 0..params.rollout_len {
            let actions = agent.act_exploratory_batch(&states);
            let reply = request(EnvRequest::Step {
                actions: actions.clone(),
            });
            agent.observe_batch(&states, &actions, &reply.rewards, &reply.states);
            for (t, &r) in totals.iter_mut().zip(&reply.rewards) {
                *t += r;
            }
            if params.train {
                for _ in 0..active {
                    let _ = agent.try_train_step(health)?;
                }
            }
            states = reply.states;
        }
        env_steps += (params.rollout_len * active) as u64;
        // One worker has nothing to lag behind: every wave uses the
        // freshest weights, recorded as version = wave for the manifest.
        schedule.entries.push(WaveEntry {
            worker: 0,
            wave,
            version: wave as u64,
        });
        if telemetry.is_enabled() {
            record_wave_telemetry(
                telemetry,
                0,
                wave,
                wave as u64,
                0,
                params.rollout_len * active,
            );
        }
        wave += 1;
        for &total in &totals {
            returns.push(total);
            rollouts_run += 1;
            remaining -= 1;
            if params.patience > 0 {
                if total > best {
                    best = total;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= params.patience {
                        break 'waves;
                    }
                }
            }
        }
    }
    if telemetry.is_enabled() {
        telemetry.counter("train.worker_restarts", 0);
    }
    Ok(DistributedOutcome {
        returns,
        rollouts_run,
        lend_triggers: 0, // filled in by the caller from the env host
        schedule,
        env_steps,
        worker_restarts: 0,
    })
}

/// The `workers ≥ 2` path: spawn one rollout worker per shard, merge waves
/// in fixed global order, train after each merged wave, publish the next
/// weight version, and respawn workers that die mid-plan.
fn async_rollouts(
    agent: &mut Ddpg,
    refined: RefinedModel,
    dataset: &TransitionDataset,
    params: &DistributedParams,
    health: &mut TrainHealth,
    telemetry: &Telemetry,
) -> Result<DistributedOutcome, TrainError> {
    let workers = params.workers;
    let planned = match &params.schedule {
        Some(s) => s.entries.len(),
        None => total_waves(params.rollouts, params.lanes),
    };
    let store = Arc::new(VersionStore::new(
        WeightVersion {
            version: 0,
            policy: agent.policy_weights(),
            dynamics: Arc::new(refined),
        },
        params.schedule.is_some(),
    ));
    // All versions of one inner loop share the iteration's dynamics model.
    let dynamics = store.latest().dynamics.clone();
    let dataset = Arc::new(dataset.clone());
    let schedule_in = params.schedule.as_ref();

    std::thread::scope(|scope| {
        let spawn = |first_wave: usize, fault_at: Option<usize>| -> ShardReceiver {
            let (tx, rx) = shard_channel();
            let spec = WorkerSpec {
                worker: first_wave % workers,
                workers,
                lanes: params.lanes,
                rollout_len: params.rollout_len,
                rollouts: params.rollouts,
                synth_seed: params.synth_seed,
                consumer_budget: params.consumer_budget,
                first_wave,
                fault_at,
            };
            let store = Arc::clone(&store);
            let dataset = Arc::clone(&dataset);
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                run_rollout_worker(&spec, schedule_in, &store, &dataset, &telemetry, &tx);
            });
            rx
        };
        let mut shards: Vec<ShardReceiver> = (0..workers)
            .map(|w| {
                let fault_at = params
                    .fault
                    .as_ref()
                    .filter(|f| f.worker == w)
                    .map(|f| f.at_wave);
                spawn(w, fault_at)
            })
            .collect();

        let mut merge = || -> Result<DistributedOutcome, TrainError> {
            let mut returns = Vec::new();
            let mut best = f64::NEG_INFINITY;
            let mut stale = 0usize;
            let mut rollouts_run = 0usize;
            let mut env_steps = 0u64;
            let mut lend_triggers = 0u64;
            let mut restarts = 0u64;
            let mut schedule = VersionSchedule {
                workers,
                lanes: params.lanes,
                entries: Vec::new(),
            };
            let mut totals: Vec<f64> = Vec::with_capacity(params.lanes);
            'merge: for g in 0..planned {
                let w = g % workers;
                let wave = loop {
                    match shards[w].recv() {
                        Ok(wave) => break wave,
                        Err(_) => {
                            // The worker died before producing wave g (its
                            // shard drained everything it did finish).
                            // Respawn it exactly at the gap: waves are pure
                            // functions of (weights, seed), so nothing
                            // before g needs replaying.
                            restarts += 1;
                            assert!(
                                restarts <= MAX_WORKER_RESTARTS,
                                "worker {w} keeps dying at wave {g}; giving up after {restarts} respawns"
                            );
                            shards[w] = spawn(g, None);
                        }
                    }
                };
                assert_eq!(
                    (wave.worker, wave.wave),
                    (w, g),
                    "shard produced a wave out of order"
                );
                let active = active_lanes(g, params.rollouts, params.lanes);
                assert_eq!(wave.active, active, "wave width mismatch");
                schedule.entries.push(WaveEntry {
                    worker: w,
                    wave: g,
                    version: wave.version,
                });
                if telemetry.is_enabled() {
                    record_wave_telemetry(
                        telemetry,
                        w,
                        g,
                        wave.version,
                        shards[w].depth(),
                        wave.steps * wave.active,
                    );
                }

                // Ordered reduction: transitions enter the agent in
                // step-major, lane-minor order — the same order the
                // lockstep loop feeds observe_batch.
                let j = wave.state_dim;
                totals.clear();
                totals.resize(active, 0.0);
                for s in 0..wave.steps {
                    let base = s * active * j;
                    for (l, total) in totals.iter_mut().enumerate() {
                        let off = base + l * j;
                        let reward = wave.rewards[s * active + l];
                        agent.observe(
                            &wave.states[off..off + j],
                            &wave.actions[off..off + j],
                            reward,
                            &wave.next_states[off..off + j],
                        );
                        *total += reward;
                    }
                    if params.train {
                        for _ in 0..active {
                            let _ = agent.try_train_step(health)?;
                        }
                    }
                }
                env_steps += (wave.steps * active) as u64;
                lend_triggers += wave.lend_triggers;
                for &total in &totals {
                    returns.push(total);
                    rollouts_run += 1;
                    if params.patience > 0 {
                        if total > best {
                            best = total;
                            stale = 0;
                        } else {
                            stale += 1;
                            if stale >= params.patience {
                                break 'merge;
                            }
                        }
                    }
                }
                store.publish(WeightVersion {
                    version: g as u64 + 1,
                    policy: agent.policy_weights(),
                    dynamics: Arc::clone(&dynamics),
                });
            }
            if telemetry.is_enabled() {
                telemetry.counter("train.worker_restarts", restarts);
            }
            Ok(DistributedOutcome {
                returns,
                rollouts_run,
                lend_triggers,
                schedule,
                env_steps,
                worker_restarts: restarts,
            })
        };
        let result = merge();
        // Unblock and drain the workers: closing wakes replay waiters,
        // dropping the receivers fails their pending sends.
        store.close();
        drop(shards);
        result
    })
}

/// Emits the per-merged-wave telemetry the `--require-distributed` check
/// validates: worker-step throughput, weight-version lag, and the merged
/// shard's fill level, plus a structured `distributed.wave` event.
fn record_wave_telemetry(
    telemetry: &Telemetry,
    worker: usize,
    wave: usize,
    version: u64,
    shard_depth: usize,
    steps: usize,
) {
    telemetry.counter("train.worker_steps", steps as u64);
    telemetry.gauge("train.weight_version_lag", wave as f64 - version as f64);
    telemetry.gauge("train.replay_shard_depth", shard_depth as f64);
    telemetry.event(
        "distributed.wave",
        &[
            ("worker", Value::UInt(worker as u64)),
            ("wave", Value::UInt(wave as u64)),
            ("version", Value::UInt(version)),
        ],
    );
}
