//! The rollout worker: generates whole waves under frozen weight snapshots.

use std::sync::Arc;

use nn::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::replay_shard::{ShardSender, WaveResult};
use super::weights::{VersionSchedule, VersionStore};
use crate::{BatchedSyntheticEnv, TransitionDataset};

/// Multiplier applied to the global wave index when deriving a wave's env
/// seed from the iteration's synth seed (the SplitMix64 odd multiplier —
/// a second Weyl-style stream, orthogonal to the per-lane
/// [`LANE_SEED_STRIDE`](crate::BatchedSyntheticEnv::LANE_SEED_STRIDE)
/// split applied on top of it).
pub const WAVE_SEED_STRIDE: u64 = 0xBF58_476D_1CE4_E5B9;

/// XOR salt separating a wave's exploration-noise stream from its env
/// stream (another odd 64-bit mixing constant).
const NOISE_STREAM_SALT: u64 = 0x94D0_49BB_1331_11EB;

/// Seed for global wave `g`'s environment lanes. Lane `i` of the wave then
/// runs on `wave_seed + i · LANE_SEED_STRIDE`, exactly as a fresh
/// [`BatchedSyntheticEnv`] would. Distinct `(wave, lane)` pairs get
/// distinct streams for all practical wave/lane counts (both strides are
/// odd, so collisions need ≈ 2⁶⁴-scale indices).
#[must_use]
pub fn wave_seed(synth_seed: u64, wave: usize) -> u64 {
    synth_seed.wrapping_add((wave as u64).wrapping_mul(WAVE_SEED_STRIDE))
}

/// Number of waves a rollout budget of `rollouts` takes at `lanes` lanes
/// per wave (the last wave may be narrower).
#[must_use]
pub fn total_waves(rollouts: usize, lanes: usize) -> usize {
    assert!(lanes > 0, "need at least one lane");
    rollouts.div_ceil(lanes)
}

/// Lanes active in global wave `wave`: full waves of `lanes`, except a
/// narrower final wave when `lanes` does not divide `rollouts`.
#[must_use]
pub fn active_lanes(wave: usize, rollouts: usize, lanes: usize) -> usize {
    lanes.min(rollouts - (wave * lanes).min(rollouts))
}

/// Everything a (re)spawned worker needs to know about its slice of the
/// wave plan.
#[derive(Debug, Clone)]
pub(super) struct WorkerSpec {
    /// This worker's index (`first_wave mod workers`).
    pub worker: usize,
    /// Total worker count — the stride between this worker's waves.
    pub workers: usize,
    /// Lanes per wave.
    pub lanes: usize,
    /// Steps per rollout.
    pub rollout_len: usize,
    /// The iteration's total rollout budget.
    pub rollouts: usize,
    /// The iteration's synthetic-rollout seed.
    pub synth_seed: u64,
    /// Consumer budget `C` for action discretisation.
    pub consumer_budget: usize,
    /// First global wave this (re)spawn generates — `worker` for an
    /// initial spawn, the crashed wave for a respawn.
    pub first_wave: usize,
    /// Chaos hook: silently exit *instead of* generating this global wave
    /// (models a worker crash; the learner respawns from the gap).
    pub fault_at: Option<usize>,
}

/// The worker loop: for each of its waves, adopt a weight version (the
/// freshest in live mode, the recorded one in replay mode), reseed the
/// env to the wave's seed, roll `rollout_len` steps under one frozen
/// perturbed policy, and push the wave into the shard.
///
/// Exits when its waves are exhausted, when the learner hangs up (send or
/// version wait fails), or at the injected fault.
pub(super) fn run_rollout_worker(
    spec: &WorkerSpec,
    schedule: Option<&VersionSchedule>,
    store: &VersionStore,
    dataset: &Arc<TransitionDataset>,
    telemetry: &telemetry::Telemetry,
    tx: &ShardSender,
) {
    // Workers ARE the parallelism: force the nn kernels serial inside this
    // thread so `workers × NN_NUM_THREADS` nested pools don't oversubscribe
    // the machine. Kernels are bit-identical at any thread count, so this
    // is a scheduling choice, not a numeric one.
    nn::threads::with_serial(|| run_waves(spec, schedule, store, dataset, telemetry, tx));
}

fn run_waves(
    spec: &WorkerSpec,
    schedule: Option<&VersionSchedule>,
    store: &VersionStore,
    dataset: &Arc<TransitionDataset>,
    telemetry: &telemetry::Telemetry,
    tx: &ShardSender,
) {
    let total = match schedule {
        // Replay reruns exactly the recorded waves (an early-stopped run
        // records fewer waves than the full budget).
        Some(s) => s.entries.len().min(total_waves(spec.rollouts, spec.lanes)),
        None => total_waves(spec.rollouts, spec.lanes),
    };
    let mut env: Option<BatchedSyntheticEnv> = None;
    let mut g = spec.first_wave;
    while g < total {
        if spec.fault_at == Some(g) {
            return; // injected crash: drop the sender mid-plan
        }
        let version = match schedule {
            None => store.latest(),
            Some(s) => match store.wait_for(s.entries[g].version) {
                Some(v) => v,
                None => return, // learner stopped early
            },
        };
        // The env is built once (all versions of an iteration share one
        // dynamics model) and re-pointed at each wave's seed; placement
        // seed 0 is irrelevant because every wave reseeds before reset.
        let env = env.get_or_insert_with(|| {
            let mut env = BatchedSyntheticEnv::new(
                (*version.dynamics).clone(),
                (**dataset).clone(),
                spec.consumer_budget,
                0,
                spec.lanes,
            );
            env.set_telemetry(telemetry.clone());
            env
        });
        let seed = wave_seed(spec.synth_seed, g);
        let active = active_lanes(g, spec.rollouts, spec.lanes);
        env.reseed_lanes(seed);
        env.reset(active);
        let mut noise_rng = SmallRng::seed_from_u64(seed ^ NOISE_STREAM_SALT);
        let mut policy = version.policy.perturbed(&mut noise_rng);

        let j = env.state_dim();
        let lend_before = env.lend_triggers();
        let mut wave =
            WaveResult::with_capacity(spec.worker, g, version.version, active, j, spec.rollout_len);
        let mut prev = Matrix::zeros(active, j);
        for _ in 0..spec.rollout_len {
            prev.as_mut_slice().copy_from_slice(env.states().as_slice());
            let actions = policy.act_batch(&prev);
            env.step(&actions);
            wave.states.extend_from_slice(prev.as_slice());
            wave.actions.extend_from_slice(actions.as_slice());
            wave.rewards.extend_from_slice(env.rewards());
            wave.next_states.extend_from_slice(env.states().as_slice());
        }
        wave.lend_triggers = env.lend_triggers() - lend_before;
        if tx.send(wave).is_err() {
            return; // learner hung up
        }
        g += spec.workers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_plan_partitions_the_rollout_budget() {
        assert_eq!(total_waves(10, 4), 3);
        assert_eq!(active_lanes(0, 10, 4), 4);
        assert_eq!(active_lanes(1, 10, 4), 4);
        assert_eq!(active_lanes(2, 10, 4), 2);
        assert_eq!(total_waves(8, 4), 2);
        assert_eq!(active_lanes(1, 8, 4), 4);
        assert_eq!(total_waves(1, 16), 1);
        assert_eq!(active_lanes(0, 1, 16), 1);
        // Every wave's active count sums back to the budget.
        for (rollouts, lanes) in [(10, 4), (64, 16), (5, 8), (7, 1)] {
            let sum: usize = (0..total_waves(rollouts, lanes))
                .map(|g| active_lanes(g, rollouts, lanes))
                .sum();
            assert_eq!(sum, rollouts, "rollouts={rollouts} lanes={lanes}");
        }
    }

    #[test]
    fn wave_seeds_are_distinct_across_nearby_waves() {
        let seeds: Vec<u64> = (0..64).map(|g| wave_seed(42, g)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
