//! Batched lockstep synthetic environments.
//!
//! [`BatchedSyntheticEnv`] runs `B` independent synthetic-rollout *lanes*
//! over one refined model. Each lockstep step performs ONE `B×(2J)` batched
//! dynamics forward instead of `B` separate GEMV-shaped calls, which is what
//! lets the inner policy loop of Algorithm 2 reach the tiled GEMM kernels.
//!
//! Lane `i` owns its own `SmallRng` stream, seeded
//! `seed.wrapping_add(i · 0x9E3779B97F4A7C15)` (a Weyl-style split), so:
//!
//! * lane 0's stream is *exactly* the stream a [`SyntheticEnv`] built from
//!   the same seed would consume — a one-lane batched env reproduces the
//!   sequential env bit for bit;
//! * lanes never share randomness, so results are independent of how the
//!   batched forwards are scheduled.
//!
//! [`SyntheticEnv`]: crate::SyntheticEnv

use nn::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rl::policy::allocation_largest_remainder;
use telemetry::Telemetry;

use crate::{RefinedModel, TransitionDataset};

/// `B` synthetic-environment lanes stepped in lockstep through one batched
/// model forward per step.
///
/// # Examples
///
/// ```
/// use miras_core::{BatchedSyntheticEnv, DynamicsModel, MirasConfig, RefinedModel,
///                  Transition, TransitionDataset};
///
/// let mut data = TransitionDataset::new(2);
/// for i in 0..40 {
///     data.push(Transition {
///         state: vec![i as f64, 1.0],
///         action: vec![1.0, 1.0],
///         next_state: vec![i as f64 * 0.5, 1.0],
///     });
/// }
/// let mut model = DynamicsModel::new(2, &MirasConfig::smoke_test(0));
/// model.train(&data, 5, 16);
/// let refined = RefinedModel::fit(model, &data, 10.0);
/// let mut env = BatchedSyntheticEnv::new(refined, data, 14, 3, 4);
/// env.reset(4);
/// let actions = nn::Matrix::from_vec(4, 2, vec![0.5; 8]);
/// let rewards = env.step(&actions).to_vec();
/// assert_eq!(rewards.len(), 4);
/// ```
#[derive(Debug)]
pub struct BatchedSyntheticEnv {
    model: RefinedModel,
    init_states: TransitionDataset,
    consumer_budget: usize,
    /// Current per-lane states, `active × J`.
    states: Matrix,
    /// Scratch: next per-lane states, `active × J`.
    next_states: Matrix,
    /// Scratch: discretised per-lane actions, `active × J`.
    actions_f64: Matrix,
    /// Per-lane reward of the latest step.
    rewards: Vec<f64>,
    /// Per-dimension clamp, identical to the sequential env's
    /// (1.2 × max observed WIP, floor 10).
    state_cap: Vec<f64>,
    /// One RNG stream per configured lane; streams persist across resets.
    rngs: Vec<SmallRng>,
    /// Number of lanes live since the last [`BatchedSyntheticEnv::reset`].
    active: usize,
    telemetry: Telemetry,
    lend_triggers: u64,
    /// Per-lane Lend-trigger counts (indexed by lane, summed over steps).
    lane_lend_triggers: Vec<u64>,
    /// Per-lane counts of clamped state dimensions (indexed by lane).
    lane_clamps: Vec<u64>,
}

impl BatchedSyntheticEnv {
    /// Multiplier applied to the lane index when splitting the synth seed
    /// into per-lane streams (the golden-ratio Weyl increment). Lane 0 gets
    /// the unmodified seed, so it replays the sequential env's stream.
    pub const LANE_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a `lanes`-lane environment. Mirroring the sequential
    /// [`SyntheticEnv::new`](crate::SyntheticEnv::new), each lane samples an
    /// initial state from the dataset at construction (consuming one draw
    /// from its stream), so lane 0's stream stays aligned with a sequential
    /// env built from the same seed.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, `init_states` is empty, or its
    /// dimensionality differs from the model's.
    #[must_use]
    pub fn new(
        model: RefinedModel,
        init_states: TransitionDataset,
        consumer_budget: usize,
        seed: u64,
        lanes: usize,
    ) -> Self {
        assert!(lanes > 0, "need at least one lane");
        assert!(!init_states.is_empty(), "need initial states to sample");
        assert_eq!(
            init_states.state_dim(),
            model.model().state_dim(),
            "dimension mismatch"
        );
        let j = init_states.state_dim();
        let mut rngs: Vec<SmallRng> = (0..lanes)
            .map(|i| {
                SmallRng::seed_from_u64(
                    seed.wrapping_add((i as u64).wrapping_mul(Self::LANE_SEED_STRIDE)),
                )
            })
            .collect();
        let mut states = Matrix::zeros(lanes, j);
        for (i, rng) in rngs.iter_mut().enumerate() {
            states
                .row_mut(i)
                .copy_from_slice(&init_states.sample_state(rng));
        }
        let mut state_cap = vec![0.0f64; j];
        for t in init_states.transitions() {
            for (cap, &v) in state_cap.iter_mut().zip(&t.state) {
                *cap = cap.max(v);
            }
        }
        for cap in &mut state_cap {
            *cap = (*cap * 1.2).max(10.0);
        }
        BatchedSyntheticEnv {
            model,
            init_states,
            consumer_budget,
            states,
            next_states: Matrix::zeros(0, 0),
            actions_f64: Matrix::zeros(0, 0),
            rewards: Vec::with_capacity(lanes),
            state_cap,
            rngs,
            active: lanes,
            telemetry: Telemetry::noop(),
            lend_triggers: 0,
            lane_lend_triggers: vec![0; lanes],
            lane_clamps: vec![0; lanes],
        }
    }

    /// Attaches a telemetry handle: steps are timed under the
    /// `synth.batch_step` span, lane occupancy is exported as gauges and
    /// Lend-trigger counts as counters (same names as the sequential env).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Configured lane count `B`.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.rngs.len()
    }

    /// Lanes live since the last reset.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// State dimensionality `J`.
    #[must_use]
    pub fn state_dim(&self) -> usize {
        self.init_states.state_dim()
    }

    /// Current per-lane states (`active × J`).
    #[must_use]
    pub fn states(&self) -> &Matrix {
        &self.states
    }

    /// Per-lane rewards from the latest [`BatchedSyntheticEnv::step`].
    #[must_use]
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// Total Lend–Giveback trigger firings across all lanes and steps.
    #[must_use]
    pub fn lend_triggers(&self) -> u64 {
        self.lend_triggers
    }

    /// Per-lane Lend-trigger counts (indexed by lane).
    #[must_use]
    pub fn lane_lend_triggers(&self) -> &[u64] {
        &self.lane_lend_triggers
    }

    /// Per-lane counts of state dimensions clipped by the state cap.
    #[must_use]
    pub fn lane_clamps(&self) -> &[u64] {
        &self.lane_clamps
    }

    /// The wrapped refined model.
    #[must_use]
    pub fn model(&self) -> &RefinedModel {
        &self.model
    }

    /// Re-derives every lane's RNG stream from `seed` (lane `i` gets
    /// `seed + i · LANE_SEED_STRIDE`, exactly as construction does), without
    /// resampling states or touching counters.
    ///
    /// This is the distributed trainer's per-wave reseeding discipline: a
    /// rollout wave reseeds, then [`reset`](BatchedSyntheticEnv::reset)s, so
    /// the wave becomes a pure function of `(weights, seed)` — independent
    /// of every wave before it, which is what makes a restarted worker able
    /// to resume mid-iteration without replaying history.
    pub fn reseed_lanes(&mut self, seed: u64) {
        for (i, rng) in self.rngs.iter_mut().enumerate() {
            *rng = SmallRng::seed_from_u64(
                seed.wrapping_add((i as u64).wrapping_mul(Self::LANE_SEED_STRIDE)),
            );
        }
    }

    /// Starts a new wave: resamples initial states for the first `active`
    /// lanes (in lane order, each from its own stream) and parks the rest.
    ///
    /// # Panics
    ///
    /// Panics if `active` is zero or exceeds the configured lane count.
    pub fn reset(&mut self, active: usize) {
        assert!(
            active > 0 && active <= self.rngs.len(),
            "active lanes out of range"
        );
        self.active = active;
        let j = self.init_states.state_dim();
        self.states.resize(active, j);
        for (i, rng) in self.rngs.iter_mut().take(active).enumerate() {
            self.states
                .row_mut(i)
                .copy_from_slice(&self.init_states.sample_state(rng));
        }
    }

    /// Steps all active lanes in lockstep: discretises each lane's action,
    /// counts Lend triggers, runs ONE batched refined-model forward for the
    /// whole wave, clamps, computes rewards and advances every lane's state.
    ///
    /// Returns the per-lane rewards; the new states are available through
    /// [`BatchedSyntheticEnv::states`].
    ///
    /// Per lane this performs exactly the operations of the sequential
    /// [`SyntheticEnv::step`](crate::SyntheticEnv), in the same order with
    /// respect to that lane's RNG stream, so a one-lane env is bit-identical
    /// to the sequential env.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is not `active × J`.
    pub fn step(&mut self, actions: &Matrix) -> &[f64] {
        let j = self.init_states.state_dim();
        assert_eq!(
            (actions.rows(), actions.cols()),
            (self.active, j),
            "actions must be active × J"
        );
        let _span = self.telemetry.span("synth.batch_step");
        self.actions_f64.resize(self.active, j);
        let mut triggers_total = 0u64;
        for i in 0..self.active {
            let allocation = allocation_largest_remainder(actions.row(i), self.consumer_budget);
            for (dst, &v) in self.actions_f64.row_mut(i).iter_mut().zip(&allocation) {
                *dst = v as f64;
            }
            let triggers = self
                .states
                .row(i)
                .iter()
                .zip(self.model.tau())
                .filter(|(s, tau)| *s < tau)
                .count() as u64;
            self.lane_lend_triggers[i] += triggers;
            triggers_total += triggers;
        }
        self.lend_triggers += triggers_total;

        self.model.predict_batch_into(
            &self.states,
            &self.actions_f64,
            &mut self.rngs[..self.active],
            &mut self.next_states,
        );

        self.rewards.clear();
        for i in 0..self.active {
            let row = self.next_states.row_mut(i);
            let mut clamped = 0u64;
            for (v, &cap) in row.iter_mut().zip(&self.state_cap) {
                if *v > cap {
                    clamped += 1;
                }
                // Same expression as the sequential env (NaN-robust `min`).
                *v = v.min(cap);
            }
            self.lane_clamps[i] += clamped;
            self.rewards
                .push(microsim::reward_from_total_wip(row.iter().sum::<f64>()));
        }
        std::mem::swap(&mut self.states, &mut self.next_states);

        if self.telemetry.is_enabled() {
            self.telemetry.counter("synth.steps", self.active as u64);
            self.telemetry
                .counter("synth.lend_triggers", triggers_total);
            self.telemetry
                .gauge("synth.active_lanes", self.active as f64);
            self.telemetry.gauge("synth.lanes", self.rngs.len() as f64);
        }
        &self.rewards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicsModel, MirasConfig, SyntheticEnv, Transition};
    use rand::Rng;
    use rl::Environment;

    /// Drain dynamics s' = max(0, s − 2a) + 1 with a trained model.
    fn fixture(seed: u64) -> (RefinedModel, TransitionDataset) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = TransitionDataset::new(2);
        for _ in 0..400 {
            let s = vec![rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)];
            let a = vec![
                rng.gen_range(0.0f64..7.0).floor(),
                rng.gen_range(0.0f64..7.0).floor(),
            ];
            let next = vec![
                (s[0] - 2.0 * a[0]).max(0.0) + 1.0,
                (s[1] - 2.0 * a[1]).max(0.0) + 1.0,
            ];
            data.push(Transition {
                state: s,
                action: a,
                next_state: next,
            });
        }
        let mut config = MirasConfig::smoke_test(seed);
        config.model_hidden = vec![32, 32];
        let mut model = DynamicsModel::new(2, &config);
        model.train(&data, 30, 32);
        (RefinedModel::fit(model, &data, 10.0), data)
    }

    /// One lane replays the sequential env bit for bit: same construction
    /// draw, same reset draws, same per-step predictions and rewards.
    #[test]
    fn single_lane_matches_sequential_env_bitwise() {
        let (refined, data) = fixture(0);
        let mut seq = SyntheticEnv::new(refined.clone(), data.clone(), 14, 42);
        let mut batched = BatchedSyntheticEnv::new(refined, data, 14, 42, 1);

        for _ in 0..3 {
            let s_seq = seq.reset();
            batched.reset(1);
            assert_eq!(s_seq.as_slice(), batched.states().row(0));
            for step in 0..10 {
                let phase = step as f64 / 10.0;
                let action = [0.3 + 0.4 * phase, 0.7 - 0.4 * phase];
                let t = seq.step(&action);
                let actions = Matrix::from_rows(&[&action]);
                let rewards = batched.step(&actions).to_vec();
                assert_eq!(t.next_state.as_slice(), batched.states().row(0));
                assert_eq!(t.reward.to_bits(), rewards[0].to_bits());
            }
        }
        assert_eq!(seq.lend_triggers(), batched.lend_triggers());
    }

    /// Each lane of a wide env evolves exactly as a sequential env seeded
    /// with that lane's split seed.
    #[test]
    fn every_lane_matches_its_split_seeded_sequential_env() {
        let (refined, data) = fixture(1);
        let lanes = 4usize;
        let seed = 7u64;
        let mut batched = BatchedSyntheticEnv::new(refined.clone(), data.clone(), 14, seed, lanes);
        let mut seqs: Vec<SyntheticEnv> = (0..lanes)
            .map(|i| {
                let lane_seed = seed
                    .wrapping_add((i as u64).wrapping_mul(BatchedSyntheticEnv::LANE_SEED_STRIDE));
                SyntheticEnv::new(refined.clone(), data.clone(), 14, lane_seed)
            })
            .collect();

        batched.reset(lanes);
        let seq_states: Vec<Vec<f64>> = seqs.iter_mut().map(SyntheticEnv::reset).collect();
        for (i, s) in seq_states.iter().enumerate() {
            assert_eq!(s.as_slice(), batched.states().row(i), "lane {i} reset");
        }
        for step in 0..8 {
            let action_rows: Vec<Vec<f64>> = (0..lanes)
                .map(|i| {
                    let x = (i + step) as f64 * 0.1;
                    vec![0.2 + x % 0.6, 0.8 - x % 0.6]
                })
                .collect();
            let refs: Vec<&[f64]> = action_rows.iter().map(Vec::as_slice).collect();
            let actions = Matrix::from_rows(&refs);
            let rewards = batched.step(&actions).to_vec();
            for (i, seq) in seqs.iter_mut().enumerate() {
                let t = seq.step(&action_rows[i]);
                assert_eq!(
                    t.next_state.as_slice(),
                    batched.states().row(i),
                    "lane {i} step {step}"
                );
                assert_eq!(t.reward.to_bits(), rewards[i].to_bits(), "lane {i}");
            }
        }
        let seq_triggers: u64 = seqs.iter().map(SyntheticEnv::lend_triggers).sum();
        assert_eq!(seq_triggers, batched.lend_triggers());
        assert_eq!(
            batched.lane_lend_triggers().iter().sum::<u64>(),
            batched.lend_triggers()
        );
    }

    /// Partial waves step only the active prefix of lanes.
    #[test]
    fn partial_wave_steps_active_prefix() {
        let (refined, data) = fixture(2);
        let mut env = BatchedSyntheticEnv::new(refined, data, 14, 3, 8);
        env.reset(3);
        assert_eq!(env.active(), 3);
        assert_eq!(env.states().rows(), 3);
        let actions = Matrix::from_vec(3, 2, vec![0.5; 6]);
        let rewards = env.step(&actions).to_vec();
        assert_eq!(rewards.len(), 3);
        assert!(rewards.iter().all(|r| r.is_finite()));
    }

    /// `reseed_lanes(s)` + `reset` erases lane-stream history: two envs
    /// with different seeds and different step histories walk identical
    /// trajectories once reseeded to the same value. This is what lets a
    /// restarted rollout worker regenerate a wave without replaying the
    /// waves before it.
    #[test]
    fn reseeded_env_forgets_its_history() {
        let (refined, data) = fixture(4);
        let mut used = BatchedSyntheticEnv::new(refined.clone(), data.clone(), 14, 5, 3);
        // Burn some stream state on one env only.
        used.reset(3);
        let burn = Matrix::from_vec(3, 2, vec![0.4; 6]);
        for _ in 0..4 {
            used.step(&burn);
        }
        let mut other = BatchedSyntheticEnv::new(refined, data, 14, 7, 3);

        used.reseed_lanes(99);
        used.reset(3);
        other.reseed_lanes(99);
        other.reset(3);
        assert_eq!(used.states().as_slice(), other.states().as_slice());
        for step in 0..6 {
            let actions = Matrix::from_vec(3, 2, vec![0.2 + 0.1 * (step % 3) as f64; 6]);
            let a = used.step(&actions).to_vec();
            let b = other.step(&actions).to_vec();
            assert_eq!(a, b, "step {step}");
            assert_eq!(used.states().as_slice(), other.states().as_slice());
        }
        // Counters are cumulative across reseeds (they track the env's
        // lifetime, not the wave), so only the deltas must agree.
        assert_eq!(used.active(), other.active());
    }

    #[test]
    #[should_panic(expected = "active lanes out of range")]
    fn resetting_beyond_lanes_panics() {
        let (refined, data) = fixture(3);
        let mut env = BatchedSyntheticEnv::new(refined, data, 14, 0, 2);
        env.reset(3);
    }
}
