//! The learnt environment model `f̂_Φ` (paper §IV-C1).

use nn::{Activation, Adam, Matrix, Mlp};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::{Standardizer, TransitionDataset};
use crate::MirasConfig;

/// The neural environment model: `ŝ(k+1) = f̂_Φ(s(k), a(k))`.
///
/// Inputs are the standardised concatenation `[s ‖ a]`; the output is the
/// standardised next state, de-standardised and clamped at zero on
/// prediction (WIP is non-negative). Trained by minimising the paper's
/// one-step squared error (Eq. 2) with Adam.
///
/// # Examples
///
/// ```
/// use miras_core::{DynamicsModel, MirasConfig, Transition, TransitionDataset};
///
/// let mut data = TransitionDataset::new(2);
/// for i in 0..64 {
///     let s = vec![i as f64 % 8.0, (i / 8) as f64];
///     // Toy dynamics: each consumer removes one WIP unit.
///     let a = vec![1.0, 2.0];
///     let next = vec![(s[0] - a[0]).max(0.0), (s[1] - a[1]).max(0.0)];
///     data.push(Transition { state: s, action: a, next_state: next });
/// }
/// let mut model = DynamicsModel::new(2, &MirasConfig::smoke_test(0));
/// let loss = model.train(&data, 20, 16);
/// assert!(loss.is_finite());
/// let pred = model.predict(&[5.0, 5.0], &[1.0, 2.0]);
/// assert_eq!(pred.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsModel {
    net: Mlp,
    state_dim: usize,
    state_scaler: Option<Standardizer>,
    action_scaler: Option<Standardizer>,
    target_scaler: Option<Standardizer>,
    /// Serialized so a resumed training run continues with the exact Adam
    /// moments of the interrupted one (bit-identical checkpoint/resume).
    /// The default only applies to legacy payloads that predate optimizer
    /// persistence.
    #[serde(default = "default_adam")]
    optimizer: Adam,
    seed: u64,
}

fn default_adam() -> Adam {
    Adam::new(1e-3)
}

impl DynamicsModel {
    /// Creates an untrained model for `state_dim`-dimensional systems using
    /// the hidden sizes and learning rate from `config`.
    #[must_use]
    pub fn new(state_dim: usize, config: &MirasConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0x5EED));
        let mut sizes = vec![2 * state_dim];
        sizes.extend_from_slice(&config.model_hidden);
        sizes.push(state_dim);
        let net = Mlp::new(&sizes, Activation::Relu, Activation::Linear, &mut rng);
        DynamicsModel {
            net,
            state_dim,
            state_scaler: None,
            action_scaler: None,
            target_scaler: None,
            optimizer: Adam::new(config.model_lr).with_clip_norm(10.0),
            seed: config.seed,
        }
    }

    /// State dimensionality `J`.
    #[must_use]
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Whether the model has been trained at least once (scalers fitted).
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.state_scaler.is_some()
    }

    /// Trains on the dataset for `epochs` epochs with the given minibatch
    /// size; returns the final epoch's mean squared error (in standardised
    /// target space).
    ///
    /// Each call refits the standardisation scalers to the (grown) dataset
    /// and continues training the same network — the incremental retraining
    /// of Algorithm 2, line 4.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its dimensionality differs.
    pub fn train(&mut self, data: &TransitionDataset, epochs: usize, batch: usize) -> f64 {
        self.train_with_telemetry(data, epochs, batch, &telemetry::Telemetry::noop())
    }

    /// Like [`DynamicsModel::train`], additionally emitting one
    /// `model.epoch` event (epoch index + mean standardised MSE) per epoch
    /// and a `model.train_secs` timing span through `telemetry`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its dimensionality differs.
    pub fn train_with_telemetry(
        &mut self,
        data: &TransitionDataset,
        epochs: usize,
        batch: usize,
        telemetry: &telemetry::Telemetry,
    ) -> f64 {
        assert_eq!(data.state_dim(), self.state_dim, "dimension mismatch");
        let _span = telemetry.span("model.train_secs");
        let (x, y, s_scaler, a_scaler, y_scaler) = data.training_matrices();
        self.state_scaler = Some(s_scaler);
        self.action_scaler = Some(a_scaler);
        self.target_scaler = Some(y_scaler);

        let n = x.rows();
        let batch = batch.max(1).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_add(n as u64));
        let mut last_loss = f64::NAN;
        for epoch in 0..epochs.max(1) {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                let xb_rows: Vec<&[f64]> = chunk.iter().map(|&i| x.row(i)).collect();
                let yb_rows: Vec<&[f64]> = chunk.iter().map(|&i| y.row(i)).collect();
                let xb = Matrix::from_rows(&xb_rows);
                let yb = Matrix::from_rows(&yb_rows);
                epoch_loss += self.net.train_mse(&xb, &yb, &mut self.optimizer);
                batches += 1;
            }
            last_loss = epoch_loss / batches as f64;
            telemetry.event(
                "model.epoch",
                &[
                    ("epoch", telemetry::Value::UInt(epoch as u64)),
                    ("loss", telemetry::Value::Float(last_loss)),
                ],
            );
        }
        last_loss
    }

    /// Predicts the next state for one `(state, action)` pair. Outputs are
    /// clamped at zero (WIP is non-negative).
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or the inputs have the wrong
    /// dimensionality.
    #[must_use]
    pub fn predict(&self, state: &[f64], action: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.state_dim, "state dimension mismatch");
        assert_eq!(action.len(), self.state_dim, "action dimension mismatch");
        let s_scaler = self.state_scaler.as_ref().expect("model not trained yet");
        let a_scaler = self.action_scaler.as_ref().expect("model not trained yet");
        let y_scaler = self.target_scaler.as_ref().expect("model not trained yet");
        let mut input = s_scaler.transform(state);
        input.extend(a_scaler.transform(action));
        let z = self.net.forward_one(&input);
        y_scaler
            .inverse(&z)
            .into_iter()
            .map(|v| v.max(0.0))
            .collect()
    }

    /// Batched [`DynamicsModel::predict`]: one network forward for a whole
    /// row-batch of `(state, action)` pairs, written into `out` (resized to
    /// `B × J`). Row `i` of the result is bitwise-equal to
    /// `predict(states.row(i), actions.row(i))` — standardisation, the
    /// de-standardisation and the zero clamp are elementwise, and the GEMM
    /// core guarantees row-wise equivalence of the batched forward.
    ///
    /// All intermediates come from the pooled matrix buffers, so a
    /// steady-state call performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained, the two input batches disagree on
    /// row count, or either has the wrong width.
    pub fn predict_batch_into(&self, states: &Matrix, actions: &Matrix, out: &mut Matrix) {
        let j = self.state_dim;
        assert_eq!(states.cols(), j, "state dimension mismatch");
        assert_eq!(actions.cols(), j, "action dimension mismatch");
        assert_eq!(states.rows(), actions.rows(), "batch size mismatch");
        let s_scaler = self.state_scaler.as_ref().expect("model not trained yet");
        let a_scaler = self.action_scaler.as_ref().expect("model not trained yet");
        let y_scaler = self.target_scaler.as_ref().expect("model not trained yet");
        let b = states.rows();
        let mut input = Matrix::zeros(b, 2 * j);
        for r in 0..b {
            let (zs, za) = input.row_mut(r).split_at_mut(j);
            s_scaler.transform_into(states.row(r), zs);
            a_scaler.transform_into(actions.row(r), za);
        }
        self.net.forward_into(&input, out);
        for r in 0..b {
            let row = out.row_mut(r);
            y_scaler.inverse_in_place(row);
            for v in row {
                *v = v.max(0.0);
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`DynamicsModel::predict_batch_into`].
    ///
    /// # Panics
    ///
    /// See [`DynamicsModel::predict_batch_into`].
    #[must_use]
    pub fn predict_batch(&self, states: &Matrix, actions: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.predict_batch_into(states, actions, &mut out);
        out
    }

    /// Mean squared one-step prediction error on a held-out dataset, in raw
    /// (de-standardised) WIP units.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or `data` is empty.
    #[must_use]
    pub fn evaluate(&self, data: &TransitionDataset) -> f64 {
        assert!(!data.is_empty(), "cannot evaluate on empty dataset");
        let mut total = 0.0;
        for t in data.transitions() {
            let pred = self.predict(&t.state, &t.action);
            total += pred
                .iter()
                .zip(&t.next_state)
                .map(|(&p, &y)| (p - y) * (p - y))
                .sum::<f64>()
                / self.state_dim as f64;
        }
        total / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;
    use rand::Rng;

    /// A dataset from linear toy dynamics `s' = max(0, s − a) + 1`.
    fn toy_dataset(n: usize, seed: u64) -> TransitionDataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = TransitionDataset::new(2);
        for _ in 0..n {
            let s: Vec<f64> = vec![rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)];
            let a: Vec<f64> = vec![rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)];
            let next = vec![
                (s[0] - 2.0 * a[0]).max(0.0) + 1.0,
                (s[1] - 2.0 * a[1]).max(0.0) + 1.0,
            ];
            d.push(Transition {
                state: s,
                action: a,
                next_state: next,
            });
        }
        d
    }

    #[test]
    fn learns_toy_dynamics() {
        let train = toy_dataset(600, 0);
        let test = toy_dataset(100, 1);
        let mut config = MirasConfig::smoke_test(2);
        config.model_hidden = vec![32, 32];
        let mut model = DynamicsModel::new(2, &config);
        model.train(&train, 60, 32);
        let mse = model.evaluate(&test);
        assert!(mse < 2.0, "test MSE {mse}");
    }

    #[test]
    fn predictions_are_non_negative() {
        let train = toy_dataset(200, 3);
        let mut model = DynamicsModel::new(2, &MirasConfig::smoke_test(4));
        model.train(&train, 10, 32);
        for s0 in [0.0, 1.0, 50.0] {
            let pred = model.predict(&[s0, 0.0], &[5.0, 5.0]);
            assert!(pred.iter().all(|&v| v >= 0.0), "{pred:?}");
        }
    }

    #[test]
    fn retraining_improves_fit() {
        let train = toy_dataset(400, 5);
        let mut model = DynamicsModel::new(2, &MirasConfig::smoke_test(6));
        model.train(&train, 2, 32);
        let early = model.evaluate(&train);
        model.train(&train, 40, 32);
        let late = model.evaluate(&train);
        assert!(late < early, "early {early}, late {late}");
    }

    #[test]
    #[should_panic(expected = "model not trained yet")]
    fn predicting_untrained_panics() {
        let model = DynamicsModel::new(2, &MirasConfig::smoke_test(7));
        let _ = model.predict(&[0.0, 0.0], &[0.0, 0.0]);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let train = toy_dataset(100, 8);
        let mut model = DynamicsModel::new(2, &MirasConfig::smoke_test(9));
        model.train(&train, 5, 32);
        let json = serde_json::to_string(&model).unwrap();
        let back: DynamicsModel = serde_json::from_str(&json).unwrap();
        let p1 = model.predict(&[3.0, 4.0], &[1.0, 1.0]);
        let p2 = back.predict(&[3.0, 4.0], &[1.0, 1.0]);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
