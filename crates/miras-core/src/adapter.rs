//! Adapter presenting the emulated cluster as an RL environment.

use microsim::{EnvSnapshot, MicroserviceEnv, WindowMetrics};
use rl::policy::allocation_largest_remainder;
use rl::{Environment, Transition as RlTransition};
use serde::{Deserialize, Serialize};
use workflow::Ensemble;

use crate::{Transition, TransitionDataset};

/// Wraps a [`MicroserviceEnv`] as an [`rl::Environment`] whose actions are
/// softmax distributions over task types.
///
/// Each step converts the distribution into consumer counts with the
/// largest-remainder rule (the paper's `m_j = ⌊C · a_j⌋` floor, plus
/// assignment of the up-to-`J − 1` consumers the plain floor would discard
/// — see DESIGN.md §4b), applies them for one decision window, and records
/// the `(s, m, s')` tuple so the trainer can harvest model-training data
/// ([`ClusterEnvAdapter::take_transitions`]).
///
/// # Examples
///
/// ```
/// use miras_core::ClusterEnvAdapter;
/// use microsim::{EnvConfig, MicroserviceEnv};
/// use rl::Environment;
/// use workflow::Ensemble;
///
/// let ensemble = Ensemble::msd();
/// let config = EnvConfig::for_ensemble(&ensemble).with_seed(5);
/// let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config));
/// let s = env.reset();
/// let t = env.step(&[0.25, 0.25, 0.25, 0.25]);
/// assert_eq!(t.next_state.len(), s.len());
/// assert_eq!(env.take_transitions().len(), 1);
/// ```
#[derive(Debug)]
pub struct ClusterEnvAdapter {
    env: MicroserviceEnv,
    pending: Vec<Transition>,
    last_metrics: Option<WindowMetrics>,
    current_state: Vec<f64>,
}

impl ClusterEnvAdapter {
    /// Wraps the environment.
    #[must_use]
    pub fn new(env: MicroserviceEnv) -> Self {
        let current_state = env.state();
        ClusterEnvAdapter {
            env,
            pending: Vec::new(),
            last_metrics: None,
            current_state,
        }
    }

    /// The total-consumer budget `C`.
    #[must_use]
    pub fn consumer_budget(&self) -> usize {
        self.env.consumer_budget()
    }

    /// Read access to the wrapped environment.
    #[must_use]
    pub fn env(&self) -> &MicroserviceEnv {
        &self.env
    }

    /// Mutable access to the wrapped environment (e.g. to inject bursts).
    pub fn env_mut(&mut self) -> &mut MicroserviceEnv {
        &mut self.env
    }

    /// Attaches a telemetry handle to the wrapped environment (see
    /// [`MicroserviceEnv::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.env.set_telemetry(telemetry);
    }

    /// Metrics of the most recent step, if any.
    #[must_use]
    pub fn last_metrics(&self) -> Option<&WindowMetrics> {
        self.last_metrics.as_ref()
    }

    /// Invariant violations recorded by the wrapped environment's
    /// [`microsim::SimAuditor`] so far. Empty unless auditing was enabled
    /// via [`microsim::SimConfig::with_audit`] or `MIRAS_AUDIT=1`.
    #[must_use]
    pub fn audit_violations(&self) -> &[microsim::AuditViolation] {
        self.env.audit_violations()
    }

    /// Removes and returns the recorded invariant violations, so training
    /// loops can surface them once per epoch without re-reporting.
    pub fn take_audit_violations(&mut self) -> Vec<microsim::AuditViolation> {
        self.env.take_audit_violations()
    }

    /// Removes and returns the `(s, m, s')` tuples recorded since the last
    /// call — the raw material for [`TransitionDataset`].
    pub fn take_transitions(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.pending)
    }

    /// Appends all pending transitions into `dataset`.
    pub fn drain_into(&mut self, dataset: &mut TransitionDataset) {
        for t in self.take_transitions() {
            dataset.push(t);
        }
    }

    /// Captures the adapter's complete dynamic state — the wrapped
    /// environment plus the not-yet-drained transitions — for checkpointing.
    /// Telemetry is not part of the snapshot; reattach after restoring.
    #[must_use]
    pub fn snapshot(&self) -> AdapterSnapshot {
        AdapterSnapshot {
            env: self.env.snapshot(),
            pending: self.pending.clone(),
            last_metrics: self.last_metrics.clone(),
            current_state: self.current_state.clone(),
        }
    }

    /// Rebuilds an adapter from an [`AdapterSnapshot`], continuing
    /// bit-identically with the run that produced it.
    ///
    /// # Panics
    ///
    /// Panics if `ensemble` does not match the snapshot (see
    /// [`MicroserviceEnv::from_snapshot`]).
    #[must_use]
    pub fn from_snapshot(ensemble: Ensemble, snapshot: AdapterSnapshot) -> Self {
        ClusterEnvAdapter {
            env: MicroserviceEnv::from_snapshot(ensemble, snapshot.env),
            pending: snapshot.pending,
            last_metrics: snapshot.last_metrics,
            current_state: snapshot.current_state,
        }
    }
}

/// Serializable checkpoint of a [`ClusterEnvAdapter`]'s full dynamic state.
///
/// An opaque token: its only contract is that
/// [`ClusterEnvAdapter::from_snapshot`] resumes bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdapterSnapshot {
    env: EnvSnapshot,
    pending: Vec<Transition>,
    last_metrics: Option<WindowMetrics>,
    current_state: Vec<f64>,
}

impl Environment for ClusterEnvAdapter {
    fn state_dim(&self) -> usize {
        self.env.num_task_types()
    }

    fn action_dim(&self) -> usize {
        self.env.num_task_types()
    }

    fn reset(&mut self) -> Vec<f64> {
        let s = self.env.reset();
        self.current_state = s.clone();
        s
    }

    fn step(&mut self, action: &[f64]) -> RlTransition {
        let allocation = allocation_largest_remainder(action, self.env.consumer_budget());
        let outcome = self.env.step(&allocation);
        self.pending.push(Transition {
            state: self.current_state.clone(),
            action: allocation.iter().map(|&m| m as f64).collect(),
            next_state: outcome.state.clone(),
        });
        self.current_state = outcome.state.clone();
        self.last_metrics = Some(outcome.metrics);
        RlTransition {
            next_state: outcome.state,
            reward: outcome.reward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::EnvConfig;
    use workflow::Ensemble;

    fn adapter(seed: u64) -> ClusterEnvAdapter {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config))
    }

    #[test]
    fn dims_match_ensemble() {
        let a = adapter(0);
        assert_eq!(a.state_dim(), 4);
        assert_eq!(a.action_dim(), 4);
        assert_eq!(a.consumer_budget(), 14);
    }

    #[test]
    fn step_applies_largest_remainder_rule() {
        let mut a = adapter(1);
        let _ = a.reset();
        let _ = a.step(&[0.5, 0.25, 0.25, 0.0]);
        let metrics = a.last_metrics().unwrap();
        assert_eq!(metrics.action_applied, vec![7, 4, 3, 0]);
        assert!(!metrics.constraint_violated);
    }

    #[test]
    fn transitions_record_applied_allocation() {
        let mut a = adapter(2);
        let s0 = a.reset();
        let t = a.step(&[0.25; 4]);
        let recorded = a.take_transitions();
        assert_eq!(recorded.len(), 1);
        assert_eq!(recorded[0].state, s0);
        assert_eq!(recorded[0].action, vec![4.0, 4.0, 3.0, 3.0]);
        assert_eq!(recorded[0].next_state, t.next_state);
        // Taking again yields nothing.
        assert!(a.take_transitions().is_empty());
    }

    #[test]
    fn drain_into_fills_dataset() {
        let mut a = adapter(3);
        let _ = a.reset();
        for _ in 0..5 {
            let _ = a.step(&[0.25; 4]);
        }
        let mut d = TransitionDataset::new(4);
        a.drain_into(&mut d);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn reset_resyncs_current_state() {
        let mut a = adapter(4);
        let _ = a.reset();
        let _ = a.step(&[0.0, 0.0, 0.0, 0.0]); // WIP accumulates
        let s = a.reset();
        let _ = a.step(&[0.25; 4]);
        let recorded = a.take_transitions();
        assert_eq!(recorded[1].state, s);
    }
}
