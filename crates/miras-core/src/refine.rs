//! Model refinement: the Lend–Giveback procedure (paper §IV-C2, Alg. 1).

use nn::Matrix;
use rand::Rng;

use crate::{DynamicsModel, TransitionDataset};

/// The refined environment model.
///
/// Near the WIP ≈ 0 boundary the raw neural model is dominated by the
/// system's randomness and produces "inappropriate" outputs that mislead the
/// policy (§IV-C2). The refinement exploits the loose coupling between
/// microservices: for each dimension `j` whose WIP is below the threshold
/// `τ_j`, it *lends* `ρ_j ~ U(τ_j, ω_j)` tasks to that dimension, queries
/// the model in the well-sampled region, then *gives back* the lent tasks
/// from the prediction. Thresholds come from the `p`- and
/// `(100 − p)`-percentiles of the collected dataset.
///
/// # Examples
///
/// ```
/// use miras_core::{DynamicsModel, MirasConfig, RefinedModel, Transition, TransitionDataset};
/// use rand::SeedableRng;
///
/// let mut data = TransitionDataset::new(2);
/// for i in 0..50 {
///     let s = vec![i as f64, (50 - i) as f64];
///     data.push(Transition { state: s.clone(), action: vec![1.0, 1.0],
///                            next_state: s });
/// }
/// let mut model = DynamicsModel::new(2, &MirasConfig::smoke_test(0));
/// model.train(&data, 5, 16);
/// let refined = RefinedModel::fit(model, &data, 10.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let pred = refined.predict(&[0.0, 25.0], &[1.0, 1.0], &mut rng);
/// assert!(pred.iter().all(|&v| v >= 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RefinedModel {
    model: DynamicsModel,
    /// Lower (lend-trigger) threshold per dimension: τ_j.
    tau: Vec<f64>,
    /// Upper threshold per dimension: ω_j.
    omega: Vec<f64>,
    /// When false the wrapper passes predictions through unrefined (the
    /// refinement ablation).
    enabled: bool,
}

impl RefinedModel {
    /// Wraps `model`, deriving thresholds from the dataset: `τ_j` is the
    /// `p`-percentile and `ω_j` the `(100 − p)`-percentile of `w_j` in `D`
    /// (Algorithm 1, initialisation).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `p` is outside `(0, 50)`.
    #[must_use]
    pub fn fit(model: DynamicsModel, data: &TransitionDataset, p: f64) -> Self {
        assert!(p > 0.0 && p < 50.0, "percentile must be in (0, 50)");
        assert!(!data.is_empty(), "cannot fit thresholds on empty dataset");
        let j = model.state_dim();
        let mut tau = Vec::with_capacity(j);
        let mut omega = Vec::with_capacity(j);
        for dim in 0..j {
            let lo = data.state_percentile(dim, p);
            let hi = data.state_percentile(dim, 100.0 - p);
            tau.push(lo);
            // Guarantee a non-degenerate lend interval even for dimensions
            // whose WIP barely varies.
            omega.push(hi.max(lo + 1.0));
        }
        RefinedModel {
            model,
            tau,
            omega,
            enabled: true,
        }
    }

    /// Wraps `model` with refinement disabled — predictions pass through
    /// the raw network (ablation A2).
    #[must_use]
    pub fn unrefined(model: DynamicsModel) -> Self {
        let j = model.state_dim();
        RefinedModel {
            model,
            tau: vec![0.0; j],
            omega: vec![1.0; j],
            enabled: false,
        }
    }

    /// Whether Lend–Giveback is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The lend-trigger thresholds τ.
    #[must_use]
    pub fn tau(&self) -> &[f64] {
        &self.tau
    }

    /// The upper thresholds ω.
    #[must_use]
    pub fn omega(&self) -> &[f64] {
        &self.omega
    }

    /// The wrapped raw model.
    #[must_use]
    pub fn model(&self) -> &DynamicsModel {
        &self.model
    }

    /// Consumes the wrapper, returning the raw model.
    #[must_use]
    pub fn into_model(self) -> DynamicsModel {
        self.model
    }

    /// Predicts `ŝ(k+1)` with per-dimension Lend–Giveback (Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if the wrapped model is untrained or dimensions mismatch.
    #[must_use]
    pub fn predict<R: Rng + ?Sized>(&self, state: &[f64], action: &[f64], rng: &mut R) -> Vec<f64> {
        let base = self.model.predict(state, action);
        if !self.enabled {
            return base;
        }
        let mut out = base;
        for j in 0..state.len() {
            if state[j] < self.tau[j] {
                // Lend: push dimension j into the well-sampled region.
                let rho = if self.omega[j] > self.tau[j] {
                    rng.gen_range(self.tau[j]..self.omega[j])
                } else {
                    self.tau[j]
                };
                let mut lent = state.to_vec();
                lent[j] += rho;
                let pred = self.model.predict(&lent, action);
                // Giveback: remove the lent tasks from this dimension only.
                out[j] = (pred[j] - rho).max(0.0);
            }
        }
        out
    }

    /// Batched [`RefinedModel::predict`] over `B` lanes, each with its own
    /// RNG stream: one base model forward for all lanes plus one forward for
    /// *all* lend queries across all lanes (GEMM rows are independent, so
    /// batching the queries cannot change any value).
    ///
    /// Row `i` of `out` is bitwise-equal to
    /// `predict(states.row(i), actions.row(i), &mut rngs[i])`: the lend
    /// draws for lane `i` are taken from `rngs[i]` in ascending-dimension
    /// order, exactly as the sequential path draws them, and the model
    /// itself never consumes randomness.
    ///
    /// # Panics
    ///
    /// Panics if the wrapped model is untrained, dimensions mismatch, or
    /// `rngs.len() != states.rows()`.
    pub fn predict_batch_into<R: Rng>(
        &self,
        states: &Matrix,
        actions: &Matrix,
        rngs: &mut [R],
        out: &mut Matrix,
    ) {
        assert_eq!(states.rows(), rngs.len(), "one RNG stream per lane");
        self.model.predict_batch_into(states, actions, out);
        if !self.enabled {
            return;
        }
        let j_dim = self.tau.len();
        // Lend: collect every below-threshold (lane, dimension) pair, with
        // its ρ drawn lane-major / dimension-ascending so each lane consumes
        // its stream in the sequential order.
        let mut queries: Vec<(usize, usize, f64)> = Vec::new();
        for (i, rng) in rngs.iter_mut().enumerate() {
            let s = states.row(i);
            for (j, &sj) in s.iter().enumerate().take(j_dim) {
                if sj < self.tau[j] {
                    let rho = if self.omega[j] > self.tau[j] {
                        rng.gen_range(self.tau[j]..self.omega[j])
                    } else {
                        self.tau[j]
                    };
                    queries.push((i, j, rho));
                }
            }
        }
        if queries.is_empty() {
            return;
        }
        let mut lent_states = Matrix::zeros(queries.len(), j_dim);
        let mut lent_actions = Matrix::zeros(queries.len(), j_dim);
        for (r, &(i, j, rho)) in queries.iter().enumerate() {
            let row = lent_states.row_mut(r);
            row.copy_from_slice(states.row(i));
            row[j] += rho;
            lent_actions.row_mut(r).copy_from_slice(actions.row(i));
        }
        let mut pred = Matrix::zeros(0, 0);
        self.model
            .predict_batch_into(&lent_states, &lent_actions, &mut pred);
        // Giveback.
        for (r, &(i, j, rho)) in queries.iter().enumerate() {
            out.row_mut(i)[j] = (pred.row(r)[j] - rho).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MirasConfig, Transition};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Dynamics where each consumer drains ~2 WIP per window and one new
    /// task arrives: s' = max(0, s − 2a) + 1.
    fn drain_dataset(n: usize, seed: u64) -> TransitionDataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = TransitionDataset::new(2);
        for _ in 0..n {
            let s = vec![rng.gen_range(0.0..30.0), rng.gen_range(0.0..30.0)];
            let a = vec![
                rng.gen_range(0.0f64..4.0).floor(),
                rng.gen_range(0.0f64..4.0).floor(),
            ];
            let next = vec![
                (s[0] - 2.0 * a[0]).max(0.0) + 1.0,
                (s[1] - 2.0 * a[1]).max(0.0) + 1.0,
            ];
            d.push(Transition {
                state: s,
                action: a,
                next_state: next,
            });
        }
        d
    }

    fn trained_model(data: &TransitionDataset, seed: u64) -> DynamicsModel {
        let mut config = MirasConfig::smoke_test(seed);
        config.model_hidden = vec![32, 32];
        let mut m = DynamicsModel::new(2, &config);
        m.train(data, 40, 32);
        m
    }

    #[test]
    fn thresholds_come_from_percentiles() {
        let data = drain_dataset(500, 0);
        let model = trained_model(&data, 1);
        let refined = RefinedModel::fit(model, &data, 10.0);
        for j in 0..2 {
            assert!(refined.tau()[j] < refined.omega()[j]);
            assert!(refined.tau()[j] >= 0.0);
            // 10th percentile of U(0,30) is around 3.
            assert!(refined.tau()[j] < 8.0);
            assert!(refined.omega()[j] > 20.0);
        }
    }

    #[test]
    fn refinement_only_touches_boundary_dimensions() {
        let data = drain_dataset(500, 2);
        let model = trained_model(&data, 3);
        let refined = RefinedModel::fit(model.clone(), &data, 10.0);
        let mut rng = SmallRng::seed_from_u64(4);
        // Both dimensions far from the boundary: refined == raw.
        let s = [15.0, 15.0];
        let a = [2.0, 2.0];
        let raw = model.predict(&s, &a);
        let ref_pred = refined.predict(&s, &a, &mut rng);
        assert_eq!(raw, ref_pred);
    }

    #[test]
    fn refined_boundary_prediction_reflects_drain_rate() {
        // At s_j = 0 the true dynamics with a = 2 stay near the boundary:
        // s' = max(0, 0 − 4) + 1 = 1. An unrefined net extrapolates here;
        // the refined model evaluates at s_j ≈ 15 and gives back, landing
        // near the true small value.
        let data = drain_dataset(800, 5);
        let model = trained_model(&data, 6);
        let refined = RefinedModel::fit(model, &data, 10.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut max_err: f64 = 0.0;
        for _ in 0..20 {
            let pred = refined.predict(&[0.0, 20.0], &[3.0, 1.0], &mut rng);
            // True: dim0 → 1 (drained), dim1 → 19.
            max_err = max_err.max((pred[0] - 1.0).abs());
            assert!(pred[0] >= 0.0);
        }
        assert!(max_err < 6.0, "boundary error {max_err}");
    }

    #[test]
    fn unrefined_passthrough() {
        let data = drain_dataset(200, 8);
        let model = trained_model(&data, 9);
        let refined = RefinedModel::unrefined(model.clone());
        assert!(!refined.is_enabled());
        let mut rng = SmallRng::seed_from_u64(10);
        let s = [0.0, 0.0];
        let a = [1.0, 1.0];
        assert_eq!(refined.predict(&s, &a, &mut rng), model.predict(&s, &a));
    }

    #[test]
    fn predictions_never_negative() {
        let data = drain_dataset(300, 11);
        let model = trained_model(&data, 12);
        let refined = RefinedModel::fit(model, &data, 10.0);
        let mut rng = SmallRng::seed_from_u64(13);
        for s0 in [0.0, 0.5, 1.0, 2.0] {
            let pred = refined.predict(&[s0, s0], &[3.0, 3.0], &mut rng);
            assert!(pred.iter().all(|&v| v >= 0.0), "{pred:?}");
        }
    }

    #[test]
    #[should_panic(expected = "percentile must be in (0, 50)")]
    fn bad_percentile_panics() {
        let data = drain_dataset(50, 14);
        let model = trained_model(&data, 15);
        let _ = RefinedModel::fit(model, &data, 60.0);
    }
}
