//! MIRAS hyper-parameters.

use microsim::ConfigError;
use rl::{DdpgConfig, Exploration};
use serde::{Deserialize, Serialize};

/// How the inner policy loop of Algorithm 2 executes its synthetic rollouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RolloutMode {
    /// One rollout at a time, one model forward per step (the original
    /// loop). The reference semantics every other mode is measured against.
    #[default]
    Sequential,
    /// `B` rollout lanes stepped in lockstep through batched model and
    /// actor forwards (see
    /// [`BatchedSyntheticEnv`](crate::BatchedSyntheticEnv)). `Lockstep(1)`
    /// is bit-identical to [`RolloutMode::Sequential`]; wider batches are
    /// deterministic but consume exploration randomness in a different
    /// order, so they are a *throughput* option, not a replay of the
    /// sequential run.
    Lockstep(usize),
    /// Actor–learner scale-out: `workers` asynchronous rollout workers,
    /// each stepping its own `lanes`-lane [`BatchedSyntheticEnv`] under a
    /// frozen versioned weight snapshot, feed a sharded replay stream that
    /// the central learner drains in a fixed order (see the
    /// [`distributed`](crate::distributed) module).
    ///
    /// `Distributed { workers: 1, lanes }` degenerates to the lockstep loop
    /// with the environment hosted on a worker thread and is bit-identical
    /// to `Lockstep(lanes)`. With `workers ≥ 2` the run is deterministic
    /// given its recorded version schedule
    /// ([`MirasTrainer::last_version_schedule`](crate::MirasTrainer::last_version_schedule)):
    /// replaying the schedule reproduces the run bit for bit.
    ///
    /// Built by [`MirasConfig::with_distributed`]; requires parameter-space
    /// or greedy exploration (workers perturb actor weights locally, so
    /// there is no per-step action-noise stream to distribute).
    ///
    /// [`BatchedSyntheticEnv`]: crate::BatchedSyntheticEnv
    Distributed {
        /// Number of asynchronous rollout workers.
        workers: usize,
        /// Lockstep lanes per worker.
        lanes: usize,
    },
}

/// Hyper-parameters of the full MIRAS pipeline (model + policy + loop).
///
/// [`MirasConfig::msd_paper`] and [`MirasConfig::ligo_paper`] mirror §VI-A3
/// of the paper; [`MirasConfig::msd_fast`] / [`MirasConfig::ligo_fast`] are
/// proportionally scaled-down versions used by the benchmark harness where
/// wall-clock matters more than exact scale, and
/// [`MirasConfig::smoke_test`] is a miniature for unit tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirasConfig {
    /// Hidden-layer widths of the environment model (paper: `[20; 3]` for
    /// MSD, `[20]` for LIGO — the smaller LIGO model avoids overfitting).
    pub model_hidden: Vec<usize>,
    /// Learning rate for the environment model.
    pub model_lr: f64,
    /// Environment-model training epochs per outer iteration.
    pub model_epochs: usize,
    /// Minibatch size for model training.
    pub model_batch: usize,
    /// Percentile `p` for the refinement thresholds τ (and `100 − p` for ω;
    /// Algorithm 1).
    pub refine_percentile: f64,
    /// Whether Lend–Giveback refinement is applied (the refinement ablation
    /// turns this off).
    pub refine_enabled: bool,
    /// Real-environment steps collected per outer iteration (paper: 1000
    /// for MSD, 2000 for LIGO).
    pub real_steps_per_iter: usize,
    /// Reset the real environment every this many collection steps
    /// (paper: 25).
    pub reset_every: usize,
    /// Length of one synthetic rollout (paper: 25 for MSD, 10 for LIGO).
    pub rollout_len: usize,
    /// Number of synthetic rollouts per outer iteration (the paper trains
    /// "until performance stops improving"; we run a fixed budget with an
    /// early-stop patience below).
    pub rollouts_per_iter: usize,
    /// Stop the inner loop early when the mean synthetic return has not
    /// improved for this many consecutive rollouts (0 disables).
    pub inner_patience: usize,
    /// Steps used when evaluating the policy on the real environment
    /// (paper: 25 for MSD, 100 for LIGO).
    pub eval_steps: usize,
    /// Collect the first iteration's real transitions with uniformly random
    /// allocations (changed every 4 steps, as in the paper's §VI-B model
    /// study). An untrained policy produces near-constant actions, from
    /// which the environment model cannot identify the action response.
    pub initial_random_collection: bool,
    /// During later collection iterations, replace this fraction of policy
    /// actions with random ones, keeping persistent action-space coverage
    /// for the model.
    pub random_action_fraction: f64,
    /// When set, each collection episode starts with a random request burst
    /// of up to `max[i]` requests per workflow type. The evaluation protocol
    /// (§VI-D) front-loads large bursts; on the paper's real testbed the
    /// slow task times meant ordinary collection already visited such
    /// high-WIP states, while this emulator needs them injected explicitly
    /// (see DESIGN.md, substitutions).
    pub collect_burst_max: Option<Vec<usize>>,
    /// DDPG hyper-parameters.
    pub ddpg: DdpgConfig,
    /// How the inner loop's synthetic rollouts execute. Defaults to
    /// [`RolloutMode::Sequential`]; absent in older checkpoints/configs,
    /// hence the serde default.
    #[serde(default)]
    pub rollout_mode: RolloutMode,
    /// Master seed.
    pub seed: u64,
}

impl MirasConfig {
    /// Paper-faithful configuration for the MSD ensemble (§VI-A3).
    #[must_use]
    pub fn msd_paper(seed: u64) -> Self {
        MirasConfig {
            model_hidden: vec![20, 20, 20],
            model_lr: 3e-3,
            model_epochs: 60,
            model_batch: 64,
            refine_percentile: 10.0,
            refine_enabled: true,
            real_steps_per_iter: 1000,
            reset_every: 25,
            rollout_len: 25,
            rollouts_per_iter: 120,
            inner_patience: 30,
            eval_steps: 25,
            initial_random_collection: true,
            random_action_fraction: 0.1,
            collect_burst_max: Some(vec![400, 250, 400]),
            ddpg: DdpgConfig::paper(256, seed),
            rollout_mode: RolloutMode::Sequential,
            seed,
        }
    }

    /// Paper-faithful configuration for the LIGO ensemble (§VI-A3).
    #[must_use]
    pub fn ligo_paper(seed: u64) -> Self {
        MirasConfig {
            model_hidden: vec![20],
            model_lr: 3e-3,
            model_epochs: 60,
            model_batch: 64,
            refine_percentile: 10.0,
            refine_enabled: true,
            real_steps_per_iter: 2000,
            reset_every: 25,
            rollout_len: 10,
            rollouts_per_iter: 150,
            inner_patience: 30,
            eval_steps: 100,
            initial_random_collection: true,
            random_action_fraction: 0.1,
            collect_burst_max: Some(vec![150, 150, 80, 80]),
            ddpg: {
                let mut d = DdpgConfig::paper(512, seed);
                // The 9-dimensional LIGO action space needs a stronger
                // entropy bonus to stay off the softmax vertices (found by
                // the entropy sweep recorded in EXPERIMENTS.md).
                d.entropy_weight = 4.0;
                d
            },
            rollout_mode: RolloutMode::Sequential,
            seed,
        }
    }

    /// Configuration for the GPU inference-serving ensemble
    /// ([`workflow::Ensemble::gpu_serve`]): MSD-sized state/action spaces
    /// (6 task types vs MSD's 4), so it reuses the MSD network shapes with
    /// burst collection sized to the three request classes.
    #[must_use]
    pub fn gpu_serve_paper(seed: u64) -> Self {
        let mut c = MirasConfig::msd_paper(seed);
        c.collect_burst_max = Some(vec![300, 120, 40]);
        c
    }

    /// A proportionally scaled-down GPU-serving configuration for the
    /// benchmark harness.
    #[must_use]
    pub fn gpu_serve_fast(seed: u64) -> Self {
        let mut c = MirasConfig::gpu_serve_paper(seed);
        c.real_steps_per_iter = 250;
        c.model_epochs = 150;
        c.rollouts_per_iter = 100;
        c.ddpg = DdpgConfig::paper(64, seed);
        c
    }

    /// A proportionally scaled-down MSD configuration for the benchmark
    /// harness (same structure, smaller step and network budgets).
    #[must_use]
    pub fn msd_fast(seed: u64) -> Self {
        let mut c = MirasConfig::msd_paper(seed);
        c.real_steps_per_iter = 250;
        c.model_epochs = 150;
        c.rollouts_per_iter = 100;
        c.ddpg = DdpgConfig::paper(64, seed);
        c
    }

    /// A proportionally scaled-down LIGO configuration for the benchmark
    /// harness.
    #[must_use]
    pub fn ligo_fast(seed: u64) -> Self {
        let mut c = MirasConfig::ligo_paper(seed);
        c.real_steps_per_iter = 450;
        c.model_epochs = 150;
        c.rollouts_per_iter = 150;
        c.eval_steps = 50;
        c.ddpg = DdpgConfig::paper(96, seed);
        c.ddpg.entropy_weight = 4.0;
        c
    }

    /// A miniature configuration for unit tests and doctests.
    #[must_use]
    pub fn smoke_test(seed: u64) -> Self {
        let mut ddpg = DdpgConfig::small_test(seed);
        ddpg.exploration = Exploration::ParamNoise {
            initial_sigma: 0.05,
            delta: 0.1,
            alpha: 1.01,
            resample_every: 10,
        };
        MirasConfig {
            model_hidden: vec![16],
            model_lr: 3e-3,
            model_epochs: 8,
            model_batch: 16,
            refine_percentile: 10.0,
            refine_enabled: true,
            real_steps_per_iter: 30,
            reset_every: 10,
            rollout_len: 8,
            rollouts_per_iter: 4,
            inner_patience: 0,
            eval_steps: 5,
            initial_random_collection: true,
            random_action_fraction: 0.1,
            collect_burst_max: None,
            ddpg,
            rollout_mode: RolloutMode::Sequential,
            seed,
        }
    }

    /// Returns a copy with the master seed (and the DDPG agent's seed)
    /// replaced — the same knob every other config exposes as `with_seed`.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.ddpg.seed = seed;
        self
    }

    /// Returns a copy running the inner loop as `lanes` lockstep rollout
    /// lanes (batched model and actor forwards).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero; see [`MirasConfig::try_with_lockstep`]
    /// for the non-panicking form.
    #[must_use]
    pub fn with_lockstep(self, lanes: usize) -> Self {
        self.try_with_lockstep(lanes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`MirasConfig::with_lockstep`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Miras`] if `lanes` is zero (a zero-lane inner loop
    /// would make no progress).
    pub fn try_with_lockstep(mut self, lanes: usize) -> Result<Self, ConfigError> {
        if lanes == 0 {
            return Err(ConfigError::Miras {
                field: "rollout_mode",
                reason: "lockstep lane count must be positive",
            });
        }
        self.rollout_mode = RolloutMode::Lockstep(lanes);
        Ok(self)
    }

    /// Returns a copy running the inner loop as `workers` asynchronous
    /// rollout workers of `lanes` lockstep lanes each (actor–learner
    /// scale-out; see the [`distributed`](crate::distributed) module).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `lanes` is zero, or if exploration is
    /// action-space noise; see [`MirasConfig::try_with_distributed`] for
    /// the non-panicking form.
    #[must_use]
    pub fn with_distributed(self, workers: usize, lanes: usize) -> Self {
        self.try_with_distributed(workers, lanes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`MirasConfig::with_distributed`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Miras`] if `workers` or `lanes` is zero, or if the
    /// DDPG exploration mode is [`Exploration::ActionNoise`]: workers
    /// explore by perturbing a frozen copy of the actor weights, so a
    /// per-step Ornstein–Uhlenbeck stream on the learner's agent cannot be
    /// distributed without changing its draw order.
    pub fn try_with_distributed(
        mut self,
        workers: usize,
        lanes: usize,
    ) -> Result<Self, ConfigError> {
        if workers == 0 {
            return Err(ConfigError::Miras {
                field: "rollout_mode",
                reason: "distributed worker count must be positive",
            });
        }
        if lanes == 0 {
            return Err(ConfigError::Miras {
                field: "rollout_mode",
                reason: "distributed lane count must be positive",
            });
        }
        if matches!(self.ddpg.exploration, Exploration::ActionNoise { .. }) {
            return Err(ConfigError::Miras {
                field: "rollout_mode",
                reason: "distributed rollouts require parameter-space or greedy exploration",
            });
        }
        self.rollout_mode = RolloutMode::Distributed { workers, lanes };
        Ok(self)
    }

    /// Returns a copy with Lend–Giveback refinement switched on or off.
    #[must_use]
    pub fn with_refinement(mut self, enabled: bool) -> Self {
        self.refine_enabled = enabled;
        self
    }

    /// Returns a copy with refinement disabled (ablation A2).
    #[must_use]
    pub fn without_refinement(self) -> Self {
        self.with_refinement(false)
    }

    /// Returns a copy using action-space instead of parameter-space noise
    /// (ablation A3).
    ///
    /// # Panics
    ///
    /// Panics on non-finite noise parameters; see
    /// [`MirasConfig::try_with_action_noise`] for the non-panicking form.
    #[must_use]
    pub fn with_action_noise(self, theta: f64, sigma: f64) -> Self {
        self.try_with_action_noise(theta, sigma)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`MirasConfig::with_action_noise`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Miras`] unless `theta` and `sigma` are finite and
    /// non-negative — a NaN noise parameter would poison every exploration
    /// draw.
    pub fn try_with_action_noise(mut self, theta: f64, sigma: f64) -> Result<Self, ConfigError> {
        if !(theta.is_finite() && theta >= 0.0 && sigma.is_finite() && sigma >= 0.0) {
            return Err(ConfigError::Miras {
                field: "ddpg.exploration",
                reason: "action noise parameters must be finite and non-negative",
            });
        }
        self.ddpg.exploration = Exploration::ActionNoise { theta, sigma };
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_section_vi() {
        let msd = MirasConfig::msd_paper(0);
        assert_eq!(msd.model_hidden, vec![20, 20, 20]);
        assert_eq!(msd.real_steps_per_iter, 1000);
        assert_eq!(msd.rollout_len, 25);
        assert_eq!(msd.eval_steps, 25);
        assert_eq!(msd.ddpg.hidden, vec![256, 256, 256]);

        let ligo = MirasConfig::ligo_paper(0);
        assert_eq!(ligo.model_hidden, vec![20]); // one layer: overfitting fix
        assert_eq!(ligo.real_steps_per_iter, 2000);
        assert_eq!(ligo.rollout_len, 10);
        assert_eq!(ligo.eval_steps, 100);
        assert_eq!(ligo.ddpg.hidden, vec![512, 512, 512]);
    }

    #[test]
    fn ablation_builders() {
        let c = MirasConfig::msd_paper(0).without_refinement();
        assert!(!c.refine_enabled);
        let c = MirasConfig::msd_paper(0).with_action_noise(0.15, 0.2);
        assert_eq!(
            c.ddpg.exploration,
            Exploration::ActionNoise {
                theta: 0.15,
                sigma: 0.2
            }
        );
    }

    #[test]
    fn seed_and_refinement_builders() {
        let c = MirasConfig::msd_paper(0).with_seed(42);
        assert_eq!(c.seed, 42);
        assert_eq!(c.ddpg.seed, 42);
        let c = MirasConfig::msd_paper(0)
            .with_refinement(false)
            .with_refinement(true);
        assert!(c.refine_enabled);
    }

    #[test]
    fn try_builders_share_the_config_error_enum() {
        let err = MirasConfig::smoke_test(0)
            .try_with_lockstep(0)
            .err()
            .unwrap();
        assert_eq!(
            err,
            ConfigError::Miras {
                field: "rollout_mode",
                reason: "lockstep lane count must be positive",
            }
        );
        assert!(err.to_string().starts_with("invalid MirasConfig."));
        let err = MirasConfig::smoke_test(0)
            .try_with_action_noise(f64::NAN, 0.2)
            .err()
            .unwrap();
        assert!(matches!(err, ConfigError::Miras { .. }));
        let ok = MirasConfig::smoke_test(0).try_with_lockstep(4).unwrap();
        assert_eq!(ok.rollout_mode, RolloutMode::Lockstep(4));
    }

    #[test]
    fn distributed_builder_validates_shape_and_exploration() {
        for (workers, lanes) in [(0, 4), (2, 0)] {
            let err = MirasConfig::smoke_test(0)
                .try_with_distributed(workers, lanes)
                .err()
                .unwrap();
            assert!(
                matches!(
                    err,
                    ConfigError::Miras {
                        field: "rollout_mode",
                        ..
                    }
                ),
                "expected rollout_mode error for workers={workers} lanes={lanes}, got {err}"
            );
        }
        // Action-space noise has no distributable exploration stream.
        let err = MirasConfig::smoke_test(0)
            .with_action_noise(0.15, 0.2)
            .try_with_distributed(2, 4)
            .err()
            .unwrap();
        assert_eq!(
            err,
            ConfigError::Miras {
                field: "rollout_mode",
                reason: "distributed rollouts require parameter-space or greedy exploration",
            }
        );
        let ok = MirasConfig::smoke_test(0)
            .try_with_distributed(2, 4)
            .unwrap();
        assert_eq!(
            ok.rollout_mode,
            RolloutMode::Distributed {
                workers: 2,
                lanes: 4
            }
        );
    }
}
