//! Extension: ensembles of environment models.
//!
//! The paper trains a single neural environment model; its own Fig. 5 shows
//! the open-loop rollouts of that model drifting from ground truth through
//! cumulative error. The canonical mitigation in model-based RL (Nagabandi
//! et al., the paper's reference \[25\], and later MBPO-style methods) is an
//! *ensemble*: several models trained from different initialisations, whose
//! mean prediction is lower-variance and whose disagreement flags states
//! where the model should not be trusted. This module provides that
//! extension; the `ablation_model_ensemble` benchmark measures how much it
//! narrows the iterative-prediction gap of Fig. 5.

use nn::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{DynamicsModel, MirasConfig, RefinedModel, TransitionDataset};

/// An ensemble of independently initialised environment models.
///
/// # Examples
///
/// ```
/// use miras_core::{EnsembleDynamics, MirasConfig, Transition, TransitionDataset};
///
/// let mut data = TransitionDataset::new(2);
/// for i in 0..64 {
///     let s = vec![(i % 8) as f64, (i / 8) as f64];
///     let next = vec![s[0] * 0.5, s[1] * 0.5];
///     data.push(Transition { state: s, action: vec![1.0, 1.0], next_state: next });
/// }
/// let mut ensemble = EnsembleDynamics::new(2, &MirasConfig::smoke_test(0), 3);
/// ensemble.train(&data, 10, 16);
/// let pred = ensemble.predict_mean(&[4.0, 2.0], &[1.0, 1.0]);
/// assert_eq!(pred.len(), 2);
/// let sigma = ensemble.disagreement(&[4.0, 2.0], &[1.0, 1.0]);
/// assert!(sigma >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleDynamics {
    members: Vec<DynamicsModel>,
    state_dim: usize,
}

impl EnsembleDynamics {
    /// Creates `n_members` models with distinct weight initialisations.
    ///
    /// # Panics
    ///
    /// Panics if `n_members` is zero.
    #[must_use]
    pub fn new(state_dim: usize, config: &MirasConfig, n_members: usize) -> Self {
        assert!(n_members > 0, "ensemble needs at least one member");
        let members = (0..n_members)
            .map(|i| {
                let mut member_config = config.clone();
                member_config.seed = config.seed.wrapping_add(1 + i as u64);
                DynamicsModel::new(state_dim, &member_config)
            })
            .collect();
        EnsembleDynamics { members, state_dim }
    }

    /// Number of ensemble members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true for constructed
    /// ensembles; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// State dimensionality `J`.
    #[must_use]
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// The individual members.
    #[must_use]
    pub fn members(&self) -> &[DynamicsModel] {
        &self.members
    }

    /// Trains every member on the dataset; returns the mean of the members'
    /// final-epoch losses. Members share the data but differ in weight
    /// initialisation and minibatch shuffling, which is the standard
    /// deep-ensemble recipe.
    ///
    /// Members are independent, so they train on scoped threads (up to the
    /// `NN_NUM_THREADS` budget, see [`nn::threads`]), each with nested
    /// kernel parallelism disabled. Every member's minibatch schedule is
    /// derived from its own seed and losses are reduced in member order, so
    /// the result is bit-identical to serial training for any thread count.
    pub fn train(&mut self, data: &TransitionDataset, epochs: usize, batch: usize) -> f64 {
        let n = self.members.len();
        let threads = nn::threads::effective_threads().min(n);
        let mut losses = vec![0.0; n];
        if threads <= 1 {
            for (m, loss) in self.members.iter_mut().zip(losses.iter_mut()) {
                *loss = m.train(data, epochs, batch);
            }
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (members, chunk_losses) in
                    self.members.chunks_mut(chunk).zip(losses.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        nn::threads::with_serial(|| {
                            for (m, loss) in members.iter_mut().zip(chunk_losses.iter_mut()) {
                                *loss = m.train(data, epochs, batch);
                            }
                        });
                    });
                }
            });
        }
        losses.iter().sum::<f64>() / n as f64
    }

    /// The ensemble-mean prediction of the next state.
    ///
    /// # Panics
    ///
    /// Panics if any member is untrained or dimensions mismatch.
    #[must_use]
    pub fn predict_mean(&self, state: &[f64], action: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.state_dim];
        for m in &self.members {
            for (a, v) in acc.iter_mut().zip(m.predict(state, action)) {
                *a += v;
            }
        }
        let n = self.members.len() as f64;
        acc.into_iter().map(|v| v / n).collect()
    }

    /// Batched [`EnsembleDynamics::predict_mean`]: one forward per member
    /// for a whole row-batch, accumulated in member order and scaled by
    /// `1/n`, so row `i` is bitwise-equal to
    /// `predict_mean(states.row(i), actions.row(i))`.
    ///
    /// # Panics
    ///
    /// Panics if any member is untrained or dimensions mismatch.
    pub fn predict_mean_batch_into(&self, states: &Matrix, actions: &Matrix, out: &mut Matrix) {
        out.resize(states.rows(), self.state_dim);
        let mut member_out = Matrix::zeros(0, 0);
        for m in &self.members {
            m.predict_batch_into(states, actions, &mut member_out);
            for (a, &v) in out.as_mut_slice().iter_mut().zip(member_out.as_slice()) {
                *a += v;
            }
        }
        let n = self.members.len() as f64;
        for v in out.as_mut_slice() {
            *v /= n;
        }
    }

    /// Allocating convenience wrapper around
    /// [`EnsembleDynamics::predict_mean_batch_into`].
    ///
    /// # Panics
    ///
    /// Panics if any member is untrained or dimensions mismatch.
    #[must_use]
    pub fn predict_mean_batch(&self, states: &Matrix, actions: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.predict_mean_batch_into(states, actions, &mut out);
        out
    }

    /// One member's prediction (e.g. for trajectory-sampling schemes that
    /// pick a random member per rollout).
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range or the model is untrained.
    #[must_use]
    pub fn predict_member(&self, member: usize, state: &[f64], action: &[f64]) -> Vec<f64> {
        self.members[member].predict(state, action)
    }

    /// Samples a uniformly random member's prediction — the TS1
    /// trajectory-sampling propagation of Chua et al.
    pub fn predict_sampled<R: Rng + ?Sized>(
        &self,
        state: &[f64],
        action: &[f64],
        rng: &mut R,
    ) -> Vec<f64> {
        let idx = rng.gen_range(0..self.members.len());
        self.predict_member(idx, state, action)
    }

    /// Epistemic disagreement: the mean (over dimensions) standard deviation
    /// of member predictions. Large values flag out-of-distribution
    /// `(state, action)` pairs where the learnt dynamics should not be
    /// trusted.
    ///
    /// # Panics
    ///
    /// Panics if any member is untrained.
    #[must_use]
    pub fn disagreement(&self, state: &[f64], action: &[f64]) -> f64 {
        let preds: Vec<Vec<f64>> = self
            .members
            .iter()
            .map(|m| m.predict(state, action))
            .collect();
        let n = preds.len() as f64;
        let mut total = 0.0;
        for d in 0..self.state_dim {
            let mean: f64 = preds.iter().map(|p| p[d]).sum::<f64>() / n;
            let var: f64 = preds.iter().map(|p| (p[d] - mean).powi(2)).sum::<f64>() / n;
            total += var.sqrt();
        }
        total / self.state_dim as f64
    }

    /// Wraps every member with Lend–Giveback refinement fitted on `data`,
    /// returning the refined models (for ensemble synthetic environments).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `p` is outside `(0, 50)`.
    #[must_use]
    pub fn refined(&self, data: &TransitionDataset, p: f64) -> Vec<RefinedModel> {
        self.members
            .iter()
            .map(|m| RefinedModel::fit(m.clone(), data, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize, seed: u64) -> TransitionDataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = TransitionDataset::new(2);
        for _ in 0..n {
            let s: Vec<f64> = vec![rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)];
            let a: Vec<f64> = vec![rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)];
            let next = vec![
                (s[0] - 2.0 * a[0]).max(0.0) + 1.0,
                (s[1] - 2.0 * a[1]).max(0.0) + 1.0,
            ];
            d.push(Transition {
                state: s,
                action: a,
                next_state: next,
            });
        }
        d
    }

    #[test]
    fn members_differ_but_agree_in_distribution() {
        let data = toy_dataset(400, 0);
        let mut ens = EnsembleDynamics::new(2, &MirasConfig::smoke_test(1), 3);
        let _ = ens.train(&data, 40, 32);
        let s = [10.0, 10.0];
        let a = [2.0, 2.0];
        // Members were initialised differently, so their predictions are not
        // identical…
        let p0 = ens.predict_member(0, &s, &a);
        let p1 = ens.predict_member(1, &s, &a);
        assert_ne!(p0, p1);
        // …but in-distribution disagreement is small relative to the scale.
        assert!(ens.disagreement(&s, &a) < 5.0);
    }

    #[test]
    fn disagreement_grows_out_of_distribution() {
        let data = toy_dataset(400, 2);
        let mut ens = EnsembleDynamics::new(2, &MirasConfig::smoke_test(3), 4);
        let _ = ens.train(&data, 40, 32);
        let inside = ens.disagreement(&[10.0, 10.0], &[2.0, 2.0]);
        let outside = ens.disagreement(&[500.0, 500.0], &[2.0, 2.0]);
        assert!(
            outside > inside,
            "outside {outside} should exceed inside {inside}"
        );
    }

    #[test]
    fn mean_prediction_is_average_of_members() {
        let data = toy_dataset(200, 4);
        let mut ens = EnsembleDynamics::new(2, &MirasConfig::smoke_test(5), 3);
        let _ = ens.train(&data, 10, 32);
        let s = [5.0, 5.0];
        let a = [1.0, 1.0];
        let mean = ens.predict_mean(&s, &a);
        let manual: Vec<f64> = (0..2)
            .map(|d| {
                (0..3)
                    .map(|m| ens.predict_member(m, &s, &a)[d])
                    .sum::<f64>()
                    / 3.0
            })
            .collect();
        for (x, y) in mean.iter().zip(&manual) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn sampled_prediction_comes_from_a_member() {
        let data = toy_dataset(200, 6);
        let mut ens = EnsembleDynamics::new(2, &MirasConfig::smoke_test(7), 3);
        let _ = ens.train(&data, 10, 32);
        let mut rng = SmallRng::seed_from_u64(8);
        let s = [5.0, 5.0];
        let a = [1.0, 1.0];
        let sampled = ens.predict_sampled(&s, &a, &mut rng);
        let members: Vec<Vec<f64>> = (0..3).map(|m| ens.predict_member(m, &s, &a)).collect();
        assert!(members.contains(&sampled));
    }

    #[test]
    fn train_is_deterministic_with_threads() {
        // Two identical seeded runs must produce bitwise-identical losses and
        // equal trained members, even when member training fans out across
        // scoped threads. Members derive their minibatch schedule from their
        // own seed, so the thread schedule cannot perturb results.
        let run = || {
            let data = toy_dataset(200, 12);
            let mut ens = EnsembleDynamics::new(2, &MirasConfig::smoke_test(13), 4);
            let loss = ens.train(&data, 15, 32);
            (loss, ens)
        };
        let (loss_a, ens_a) = run();
        let (loss_b, ens_b) = run();
        assert_eq!(loss_a.to_bits(), loss_b.to_bits());
        assert_eq!(ens_a, ens_b);
    }

    #[test]
    fn refined_wraps_every_member() {
        let data = toy_dataset(200, 9);
        let mut ens = EnsembleDynamics::new(2, &MirasConfig::smoke_test(10), 3);
        let _ = ens.train(&data, 10, 32);
        let refined = ens.refined(&data, 10.0);
        assert_eq!(refined.len(), 3);
        assert!(refined.iter().all(RefinedModel::is_enabled));
    }

    #[test]
    #[should_panic(expected = "ensemble needs at least one member")]
    fn empty_ensemble_panics() {
        let _ = EnsembleDynamics::new(2, &MirasConfig::smoke_test(11), 0);
    }
}
