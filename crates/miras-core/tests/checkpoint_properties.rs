//! Property: checkpointing is invisible. For arbitrary seeds, interposing
//! save → load between training iterations changes nothing — the resumed
//! run's reports, agent state, and environment state are bit-identical to
//! an uninterrupted run's.

use microsim::{EnvConfig, MicroserviceEnv};
use miras_core::{ClusterEnvAdapter, MirasConfig, MirasTrainer};
use proptest::prelude::*;
use workflow::Ensemble;

fn fresh(env_seed: u64, train_seed: u64) -> (MirasTrainer, ClusterEnvAdapter) {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(env_seed);
    let env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config));
    let trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(train_seed));
    (trainer, env)
}

proptest! {
    // Each case trains several smoke iterations; keep the budget small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn save_load_train_k_is_bit_identical(
        env_seed in 0u64..1_000_000,
        train_seed in 0u64..1_000_000,
        k in 1usize..3,
    ) {
        let path = std::env::temp_dir()
            .join(format!("miras_ckpt_prop_{env_seed}_{train_seed}_{k}.json"));

        // Uninterrupted run: 1 + k iterations.
        let (mut ref_trainer, mut ref_env) = fresh(env_seed, train_seed);
        let _ = ref_trainer.run_iteration(&mut ref_env);
        let mut ref_reports = Vec::new();
        for _ in 0..k {
            ref_reports.push(ref_trainer.run_iteration(&mut ref_env));
        }

        // Round-tripped run: 1 iteration, save, load, k iterations.
        let (mut trainer, mut env) = fresh(env_seed, train_seed);
        let _ = trainer.run_iteration(&mut env);
        trainer.save_checkpoint(&env, &path).unwrap();
        let (mut resumed, mut resumed_env) =
            MirasTrainer::resume(&path, Ensemble::msd()).unwrap();
        let mut reports = Vec::new();
        for _ in 0..k {
            reports.push(resumed.run_iteration(&mut resumed_env));
        }

        prop_assert_eq!(reports, ref_reports);
        // Bit-exact state comparison through the exact-f64 JSON round trip.
        prop_assert_eq!(
            serde_json::to_string(&resumed.agent_mut().snapshot()).unwrap(),
            serde_json::to_string(&ref_trainer.agent_mut().snapshot()).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&resumed_env.snapshot()).unwrap(),
            serde_json::to_string(&ref_env.snapshot()).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }
}
