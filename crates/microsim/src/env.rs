//! The RL-facing, window-stepped view of the cluster.

use std::collections::VecDeque;

use desim::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};
use workflow::{Arrival, ArrivalTrace, BurstSpec, Ensemble, WorkflowTypeId};

use telemetry::{Telemetry, Value};

use crate::cluster::ClusterSnapshot;
use crate::{Cluster, EnvConfig, WindowMetrics, WorkloadSpec};

/// The paper's reward function, `r(k) = 1 − Σ_j w_j(k+1)`: the single
/// audited implementation every layer (real environment, synthetic
/// model-based environment, evaluation harnesses) must route through.
///
/// The reward is 1 when the cluster is fully drained and decreases linearly
/// in the total work-in-progress left at the end of the window (§IV-B).
#[must_use]
pub fn reward_from_total_wip(total_wip: f64) -> f64 {
    1.0 - total_wip
}

/// The result of advancing the environment by one decision window.
///
/// This is the environment-side mirror of [`rl::Transition`]'s
/// `(next_state, reward)` pair (the `rl` crate keeps its own copy to stay
/// independent of the emulator): `state` feeds the agent's next decision and
/// `reward` is `r(k) = 1 − Σ_j w_j(k+1)` per [`reward_from_total_wip`],
/// while `metrics` carries everything else an evaluation harness may want.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The next state `w(k+1)`: WIP per task type as floats (RL convention).
    pub state: Vec<f64>,
    /// The paper's reward `r(k) = 1 − Σ_j w_j(k+1)`.
    pub reward: f64,
    /// Full window observability for evaluation harnesses.
    pub metrics: WindowMetrics,
}

impl StepOutcome {
    /// Total work-in-progress across task types at the end of the window,
    /// `Σ_j w_j(k+1)` — the quantity the reward penalises:
    /// `reward == reward_from_total_wip(out.wip_total())`.
    #[must_use]
    pub fn wip_total(&self) -> f64 {
        self.state.iter().sum()
    }
}

/// The microservice workflow system viewed as a reinforcement-learning
/// environment (paper §IV-B).
///
/// Each [`step`](MicroserviceEnv::step) applies a consumer allocation
/// `m(k)`, advances simulated time by one decision window (default 30 s)
/// while background Poisson arrivals stream in, and returns the WIP state,
/// reward, and evaluation metrics. [`reset`](MicroserviceEnv::reset)
/// implements the paper's reset: "provision sufficient consumers of each
/// microservice to reduce WIP close to 0" (§VI-A3).
///
/// # Examples
///
/// ```
/// use microsim::{EnvConfig, MicroserviceEnv};
/// use workflow::{BurstSpec, Ensemble};
///
/// let ensemble = Ensemble::msd();
/// let config = EnvConfig::for_ensemble(&ensemble).with_seed(3);
/// let mut env = MicroserviceEnv::new(ensemble, config);
/// env.reset();
/// env.inject_burst(&BurstSpec::new(vec![50, 0, 0]));
/// let out = env.step(&[8, 3, 2, 1]);
/// assert!(out.metrics.arrivals[0] >= 50);
/// ```
#[derive(Debug)]
pub struct MicroserviceEnv {
    cluster: Cluster,
    config: EnvConfig,
    arrival_rng: SmallRng,
    window_index: usize,
    /// Injected (burst/trace) arrivals not yet attributed to a window's
    /// metrics, sorted by arrival time.
    injected_schedule: VecDeque<(SimTime, usize)>,
    /// Reusable buffer for draining the cluster's completion records each
    /// window without a fresh allocation.
    completion_buf: Vec<crate::CompletionRecord>,
    /// In-flight trace recording (observation-only; not part of
    /// [`EnvSnapshot`]). See [`MicroserviceEnv::record_trace`].
    trace_recorder: Option<TraceRecorder>,
    telemetry: Telemetry,
}

/// State of an in-progress trace recording: arrivals are stored relative
/// to `origin`, so the trace replays with
/// [`MicroserviceEnv::inject_trace`] (which offsets by the instant of
/// injection).
#[derive(Debug)]
struct TraceRecorder {
    origin: SimTime,
    trace: ArrivalTrace,
}

/// Hard ceiling on the Poisson mean of one window's background arrivals
/// for a single workflow type — an order of magnitude above the
/// million-request stress scale, so no legitimate scenario reaches it.
/// It exists so a pathological rate × window × modulation product (up to
/// and including infinity) degrades to a bounded, deterministic flood
/// instead of a panic in `Poisson::new`.
const MAX_WINDOW_ARRIVAL_MEAN: f64 = 10_000_000.0;

/// Draws a Poisson-distributed arrival count with a checked, saturating
/// `f64 → usize` conversion.
///
/// The pre-workload code wrote `Poisson::new(mean).expect(..).sample(rng)
/// as usize`, which panics outright for a non-finite mean (a huge
/// time-varying rate times a long window overflows to infinity) and
/// leans on the implicit saturation of `as` for negative or non-finite
/// samples. This helper makes every edge explicit: non-positive or NaN
/// means draw nothing (and consume no RNG), over-large means clamp to
/// [`MAX_WINDOW_ARRIVAL_MEAN`], and the sampled count clamps into
/// `[0, usize::MAX]`.
///
/// For any positive finite mean at or below the ceiling this performs
/// exactly one `Poisson::new(mean)` construction and one sample — the
/// same RNG stream as the pre-workload code, which keeps `Stationary`
/// runs bit-identical.
fn checked_poisson_count(mean: f64, rng: &mut SmallRng) -> usize {
    if mean.is_nan() || mean <= 0.0 {
        return 0; // zero, negative, or NaN mean: nothing arrives
    }
    let mean = if mean.is_finite() {
        mean.min(MAX_WINDOW_ARRIVAL_MEAN)
    } else {
        MAX_WINDOW_ARRIVAL_MEAN
    };
    let sample = Poisson::new(mean)
        .expect("mean is positive and finite")
        .sample(rng);
    if sample.is_nan() || sample <= 0.0 {
        return 0; // guard a NaN or negative draw from the sampler
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    if sample >= usize::MAX as f64 {
        usize::MAX
    } else {
        sample as usize
    }
}

impl MicroserviceEnv {
    /// Creates an environment over a fresh cluster.
    ///
    /// # Panics
    ///
    /// Panics if `config.arrival_rates.len()` differs from the ensemble's
    /// number of workflow types.
    #[must_use]
    pub fn new(ensemble: Ensemble, config: EnvConfig) -> Self {
        assert_eq!(
            config.arrival_rates.len(),
            ensemble.num_workflow_types(),
            "one arrival rate per workflow type"
        );
        // Derive a distinct stream for arrivals so that arrival sampling and
        // service-time sampling do not interleave.
        let arrival_rng = SmallRng::seed_from_u64(config.sim.seed.wrapping_add(0x9E37_79B9));
        let cluster = Cluster::new(ensemble, config.sim.clone());
        MicroserviceEnv {
            cluster,
            config,
            arrival_rng,
            window_index: 0,
            injected_schedule: VecDeque::new(),
            completion_buf: Vec::new(),
            trace_recorder: None,
            telemetry: Telemetry::noop(),
        }
    }

    /// Attaches a telemetry handle. Each subsequent [`step`] emits a
    /// `window` event carrying the full [`WindowMetrics`] plus an
    /// event-engine checkpoint; recording is observability-only and leaves
    /// simulation results bit-identical.
    ///
    /// [`step`]: MicroserviceEnv::step
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.cluster.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Number of task types `J` (the state and action dimensionality).
    #[must_use]
    pub fn num_task_types(&self) -> usize {
        self.cluster.ensemble().num_task_types()
    }

    /// Number of workflow types `N`.
    #[must_use]
    pub fn num_workflow_types(&self) -> usize {
        self.cluster.ensemble().num_workflow_types()
    }

    /// The total-consumer constraint `C`.
    #[must_use]
    pub fn consumer_budget(&self) -> usize {
        self.config.consumer_budget
    }

    /// The decision-window length.
    #[must_use]
    pub fn window(&self) -> SimTime {
        self.config.window
    }

    /// The current state `w(k)` as floats.
    #[must_use]
    pub fn state(&self) -> Vec<f64> {
        self.cluster.wip().iter().map(|&w| w as f64).collect()
    }

    /// Read-only access to the underlying cluster.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The environment's configuration.
    #[must_use]
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Index of the next decision window.
    #[must_use]
    pub fn window_index(&self) -> usize {
        self.window_index
    }

    /// Injects a front-loaded request burst at the current instant (the
    /// paper's §VI-D evaluation protocol).
    pub fn inject_burst(&mut self, burst: &BurstSpec) {
        let now = self.cluster.now();
        for arrival in burst.trace().arrivals() {
            self.cluster.submit(now, arrival.workflow_type);
            self.record_injection(now, arrival.workflow_type.index());
            self.record_arrival(now, arrival.workflow_type);
        }
    }

    /// Injects a pre-generated arrival trace, offset so that trace time 0 is
    /// the current instant. The trace's sorted order is preserved: equal
    /// offsets keep their trace order, and the attribution schedule stays
    /// time-sorted even if the trace was built out of order.
    pub fn inject_trace(&mut self, trace: &ArrivalTrace) {
        let now = self.cluster.now();
        for arrival in trace.arrivals() {
            let at = now + arrival.time;
            self.cluster.submit(at, arrival.workflow_type);
            self.record_injection(at, arrival.workflow_type.index());
            self.record_arrival(at, arrival.workflow_type);
        }
    }

    /// If the configured workload is [`WorkloadSpec::TraceReplay`], loads
    /// its trace file and injects it at the current instant, returning the
    /// number of arrivals injected; for every other workload this is a
    /// no-op returning 0. Call it right after [`reset`] so trace time 0
    /// lines up with the first decision window.
    ///
    /// [`reset`]: MicroserviceEnv::reset
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse errors from loading the trace file.
    pub fn load_workload_trace(&mut self) -> std::io::Result<usize> {
        let WorkloadSpec::TraceReplay { path } = &self.config.workload else {
            return Ok(0);
        };
        let trace = if path.ends_with(".json") {
            ArrivalTrace::load_json(path)?
        } else {
            ArrivalTrace::load_jsonl(path)?
        };
        self.inject_trace(&trace);
        Ok(trace.len())
    }

    /// Starts recording every subsequent arrival — background and injected
    /// alike — into a trace whose time 0 is the current instant. Recording
    /// is observation-only (it never changes the run and is not part of
    /// [`EnvSnapshot`]); fetch the result with
    /// [`take_recorded_trace`](MicroserviceEnv::take_recorded_trace).
    ///
    /// Replaying the recorded trace from the same post-reset state via
    /// [`inject_trace`](MicroserviceEnv::inject_trace) under a
    /// [`WorkloadSpec::TraceReplay`] (or zero-rate) configuration
    /// reproduces the original run byte-identically; see DESIGN.md §17 for
    /// the determinism contract and its measure-zero boundary caveat.
    pub fn record_trace(&mut self) {
        self.trace_recorder = Some(TraceRecorder {
            origin: self.cluster.now(),
            trace: ArrivalTrace::new(),
        });
    }

    /// Stops recording and returns the trace accumulated since
    /// [`record_trace`](MicroserviceEnv::record_trace) (empty if recording
    /// was never started).
    pub fn take_recorded_trace(&mut self) -> ArrivalTrace {
        self.trace_recorder
            .take()
            .map_or_else(ArrivalTrace::new, |r| r.trace)
    }

    /// Appends an arrival to the in-flight recording, if one is active.
    /// `ArrivalTrace::push` is stable for equal times, so submission order
    /// — which is what the engine's tie-break preserves — survives the
    /// round trip.
    fn record_arrival(&mut self, at: SimTime, workflow_type: WorkflowTypeId) {
        if let Some(rec) = &mut self.trace_recorder {
            rec.trace.push(Arrival::new(at - rec.origin, workflow_type));
        }
    }

    /// Queues an injected arrival for metric attribution, keeping the
    /// schedule time-sorted.
    fn record_injection(&mut self, at: SimTime, workflow_type: usize) {
        // Injections come in time order per call; merge lazily by insertion.
        let pos = self
            .injected_schedule
            .iter()
            .rposition(|&(t, _)| t <= at)
            .map_or(0, |p| p + 1);
        self.injected_schedule.insert(pos, (at, workflow_type));
    }

    /// Applies the consumer allocation `action` for one window and advances
    /// simulated time to the window's end.
    ///
    /// If the allocation's total exceeds the budget it is proportionally
    /// scaled down (when `clamp_actions` is set) and the violation recorded.
    ///
    /// # Panics
    ///
    /// Panics if `action.len()` differs from the number of task types, or if
    /// the action violates the budget while `clamp_actions` is disabled.
    pub fn step(&mut self, action: &[usize]) -> StepOutcome {
        assert_eq!(
            action.len(),
            self.num_task_types(),
            "one consumer count per task type"
        );
        let (applied, violated) = self.enforce_budget(action);
        self.cluster.set_consumers(&applied);

        // Stream this window's background Poisson arrivals, and attribute
        // any injected arrivals whose time falls inside this window.
        let window_start = self.cluster.now();
        let window_end = window_start + self.config.window;
        let mut arrivals = vec![0; self.num_workflow_types()];
        // A window owns injected arrivals with `t <= window_end`, matching
        // the engine's `pop_until(horizon)` (which processes events at
        // `t <= horizon`): an arrival landing exactly on the boundary is
        // executed in this window, so it must be attributed here too.
        // Windows are contiguous, so each arrival is popped exactly once.
        while let Some(&(t, wf)) = self.injected_schedule.front() {
            if t > window_end {
                break;
            }
            arrivals[wf] += 1;
            self.injected_schedule.pop_front();
        }
        let window_secs = self.config.window.as_secs_f64();
        // Integrate the workload modulation analytically over the window:
        // one Poisson draw per (type, window) whatever the shape.
        // `Stationary` yields exactly 1.0 and `x * 1.0 == x` for finite x,
        // so the stationary RNG stream is bit-identical to the
        // pre-workload code; `TraceReplay` yields 0.0 and samples nothing.
        let workload_factor = self.config.workload.mean_factor(window_start, window_end);
        for (i, &rate) in self.config.arrival_rates.iter().enumerate() {
            let mean = rate * window_secs * workload_factor;
            if mean <= 0.0 {
                continue;
            }
            let n = checked_poisson_count(mean, &mut self.arrival_rng);
            for _ in 0..n {
                let offset = self.arrival_rng.gen_range(0.0..window_secs);
                let at = window_start + SimTime::from_secs_f64(offset);
                self.cluster.submit(at, WorkflowTypeId::new(i));
                if let Some(rec) = &mut self.trace_recorder {
                    rec.trace
                        .push(Arrival::new(at - rec.origin, WorkflowTypeId::new(i)));
                }
            }
            arrivals[i] += n;
        }

        self.cluster.run_until(window_start + self.config.window);

        let wip = self.cluster.wip();
        #[allow(clippy::cast_precision_loss)]
        let reward = reward_from_total_wip(wip.iter().sum::<usize>() as f64);
        let (completions, mean_response_secs) = self.summarise_completions();
        let metrics = WindowMetrics {
            window_index: self.window_index,
            wip: wip.clone(),
            reward,
            action_applied: applied,
            constraint_violated: violated,
            arrivals,
            completions,
            mean_response_secs,
        };
        self.audit_metrics(&metrics);
        self.cluster.audit_window();
        self.window_index += 1;
        if self.telemetry.is_enabled() {
            self.cluster.telemetry_checkpoint();
            self.telemetry.event_struct("window", &metrics);
            self.telemetry.counter(
                "microsim.arrivals",
                metrics.arrivals.iter().sum::<usize>() as u64,
            );
            self.telemetry.counter(
                "microsim.completions",
                metrics.completions.iter().sum::<usize>() as u64,
            );
            #[allow(clippy::cast_precision_loss)]
            self.telemetry.gauge(
                "microsim.workflows_in_flight",
                self.cluster.workflows_in_flight() as f64,
            );
            let base_rate: f64 = self.config.arrival_rates.iter().sum();
            self.telemetry.event(
                "workload.target_rate",
                &[
                    ("window_index", Value::UInt(metrics.window_index as u64)),
                    (
                        "workload",
                        Value::String(self.config.workload.name().to_string()),
                    ),
                    ("factor", Value::Float(workload_factor)),
                    ("rate_per_sec", Value::Float(base_rate * workload_factor)),
                ],
            );
        }
        StepOutcome {
            state: wip.iter().map(|&w| w as f64).collect(),
            reward,
            metrics,
        }
    }

    /// Drains WIP close to zero by provisioning ample consumers, then winds
    /// the pools back down. Returns the post-reset state.
    ///
    /// Background arrivals are paused during the reset, which happens
    /// "outside" the measured decision timeline (the window index does not
    /// advance).
    pub fn reset(&mut self) -> Vec<f64> {
        let capacity = self.config.consumer_budget * self.config.reset_capacity_factor;
        let targets = vec![capacity.max(1); self.num_task_types()];
        self.cluster.force_consumers(&targets);
        for _ in 0..self.config.reset_max_windows {
            let horizon = self.cluster.now() + self.config.window;
            self.cluster.run_until(horizon);
            if self.cluster.total_wip() <= self.config.reset_wip_threshold {
                break;
            }
        }
        // Wind the pools back down; the next step's action re-provisions.
        let zeros = vec![0; self.num_task_types()];
        self.cluster.set_consumers(&zeros);
        // Reset-period completions are not part of any window's metrics;
        // injected arrivals overtaken by the reset drop out of attribution.
        let _ = self.cluster.drain_completions();
        let now = self.cluster.now();
        while matches!(self.injected_schedule.front(), Some(&(t, _)) if t <= now) {
            self.injected_schedule.pop_front();
        }
        self.state()
    }

    /// Checks the per-window metric vectors for length agreement: the
    /// task-type–indexed vectors must have `J` entries and the
    /// workflow-type–indexed ones `N`. A disagreement would make
    /// [`WindowMetrics::overall_mean_response_secs`] silently drop workflow
    /// types from its weighted mean, so it is flagged here at the source.
    fn audit_metrics(&mut self, metrics: &WindowMetrics) {
        if !(cfg!(debug_assertions) || self.cluster.audit_enabled()) {
            return;
        }
        let j = self.num_task_types();
        let n = self.num_workflow_types();
        let checks: [(&'static str, usize, usize); 5] = [
            ("wip", j, metrics.wip.len()),
            ("action_applied", j, metrics.action_applied.len()),
            ("arrivals", n, metrics.arrivals.len()),
            ("completions", n, metrics.completions.len()),
            ("mean_response_secs", n, metrics.mean_response_secs.len()),
        ];
        for (field, expected, actual) in checks {
            if expected != actual {
                self.cluster
                    .flag_metric_shape(metrics.window_index, field, expected, actual);
            }
        }
    }

    /// Invariant violations recorded so far by the audit layer (see
    /// [`Cluster::audit_violations`](crate::Cluster::audit_violations)).
    #[must_use]
    pub fn audit_violations(&self) -> &[crate::AuditViolation] {
        self.cluster.audit_violations()
    }

    /// Removes and returns the invariant violations recorded so far.
    pub fn take_audit_violations(&mut self) -> Vec<crate::AuditViolation> {
        self.cluster.take_audit_violations()
    }

    fn enforce_budget(&self, action: &[usize]) -> (Vec<usize>, bool) {
        let total: usize = action.iter().sum();
        let budget = self.config.consumer_budget;
        if total <= budget {
            return (action.to_vec(), false);
        }
        assert!(
            self.config.clamp_actions,
            "action uses {total} consumers, budget is {budget}"
        );
        // Proportional scale-down with largest-remainder rounding: floor
        // each share, then hand the leftover consumers to the largest
        // fractional remainders (ties to the lowest index). Plain flooring
        // systematically wasted budget — [14, 14, 14, 14] at C = 14
        // floored to 3+3+3+3 = 12, a 14% under-allocation on every
        // clamped window — while largest-remainder always spends exactly
        // the budget and stays within one consumer of the exact
        // proportional share.
        #[allow(clippy::cast_precision_loss)]
        let scale = budget as f64 / total as f64;
        #[allow(clippy::cast_precision_loss)]
        let shares: Vec<f64> = action.iter().map(|&m| m as f64 * scale).collect();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let mut applied: Vec<usize> = shares.iter().map(|&s| s.floor() as usize).collect();
        let mut leftover = budget.saturating_sub(applied.iter().sum());
        let mut order: Vec<usize> = (0..shares.len()).collect();
        order.sort_by(|&a, &b| {
            let (fa, fb) = (shares[a] - shares[a].floor(), shares[b] - shares[b].floor());
            fb.partial_cmp(&fa)
                .expect("shares are finite")
                .then(a.cmp(&b))
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            applied[i] += 1;
            leftover -= 1;
        }
        (applied, true)
    }

    /// Captures the environment's complete dynamic state (cluster, arrival
    /// RNG, window index, pending injected arrivals) for checkpointing.
    /// Telemetry attachment is not part of the snapshot; reattach with
    /// [`MicroserviceEnv::set_telemetry`] after restoring.
    #[must_use]
    pub fn snapshot(&self) -> EnvSnapshot {
        EnvSnapshot {
            cluster: self.cluster.snapshot(),
            config: self.config.clone(),
            arrival_rng_state: self.arrival_rng.state(),
            window_index: self.window_index,
            injected_schedule: self.injected_schedule.clone(),
        }
    }

    /// Rebuilds an environment from an [`EnvSnapshot`], continuing
    /// bit-identically with the run that produced it.
    ///
    /// # Panics
    ///
    /// Panics if `ensemble` does not match the snapshot (wrong task-type or
    /// workflow-type count for this checkpoint).
    #[must_use]
    pub fn from_snapshot(ensemble: Ensemble, snapshot: EnvSnapshot) -> Self {
        assert_eq!(
            snapshot.config.arrival_rates.len(),
            ensemble.num_workflow_types(),
            "one arrival rate per workflow type"
        );
        MicroserviceEnv {
            cluster: Cluster::from_snapshot(ensemble, snapshot.cluster),
            config: snapshot.config,
            arrival_rng: SmallRng::from_state(snapshot.arrival_rng_state),
            window_index: snapshot.window_index,
            injected_schedule: snapshot.injected_schedule,
            completion_buf: Vec::new(),
            trace_recorder: None,
            telemetry: Telemetry::noop(),
        }
    }

    fn summarise_completions(&mut self) -> (Vec<usize>, Vec<Option<f64>>) {
        let n = self.num_workflow_types();
        let mut counts = vec![0usize; n];
        let mut sums = vec![0.0f64; n];
        let mut records = std::mem::take(&mut self.completion_buf);
        records.clear();
        self.cluster.drain_completions_into(&mut records);
        for record in &records {
            let i = record.workflow_type.index();
            counts[i] += 1;
            sums[i] += record.response_secs();
        }
        records.clear();
        self.completion_buf = records;
        let means = counts
            .iter()
            .zip(&sums)
            .map(|(&c, &s)| (c > 0).then(|| s / c as f64))
            .collect();
        (counts, means)
    }
}

/// Serializable checkpoint of a [`MicroserviceEnv`]'s full dynamic state.
///
/// An opaque token: its only contract is that
/// [`MicroserviceEnv::from_snapshot`] resumes bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvSnapshot {
    cluster: ClusterSnapshot,
    config: EnvConfig,
    arrival_rng_state: [u64; 4],
    window_index: usize,
    injected_schedule: VecDeque<(SimTime, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msd_env(seed: u64) -> MicroserviceEnv {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        MicroserviceEnv::new(ensemble, config)
    }

    /// A quiet environment: no background arrivals.
    fn quiet_env(seed: u64) -> MicroserviceEnv {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(seed)
            .with_arrival_rates(vec![0.0; 3]);
        MicroserviceEnv::new(ensemble, config)
    }

    #[test]
    fn step_advances_one_window() {
        let mut env = msd_env(1);
        let before = env.cluster().now();
        let _ = env.step(&[4, 4, 4, 2]);
        assert_eq!(env.cluster().now() - before, SimTime::from_secs(30));
        assert_eq!(env.window_index(), 1);
    }

    #[test]
    fn reward_is_one_minus_total_wip() {
        let mut env = msd_env(2);
        let out = env.step(&[4, 4, 4, 2]);
        assert!((out.reward - (1.0 - out.metrics.total_wip() as f64)).abs() < 1e-12);
        assert_eq!(out.reward, reward_from_total_wip(out.wip_total()));
    }

    #[test]
    fn telemetry_emits_one_window_event_per_step() {
        use telemetry::{JsonlSink, Recorder, Telemetry};
        let sink = JsonlSink::in_memory();
        let mut env = msd_env(12);
        env.set_telemetry(Telemetry::new(sink.clone()));
        let _ = env.step(&[4, 4, 4, 2]);
        let _ = env.step(&[4, 4, 4, 2]);
        Recorder::flush(&*sink);
        let text = String::from_utf8(sink.take_output()).unwrap();
        let windows = text
            .lines()
            .filter(|l| l.contains("\"name\":\"window\""))
            .count();
        assert_eq!(windows, 2);
        assert!(text.contains("\"desim.events_processed\""));
        assert!(text.contains("\"window_index\""));
    }

    #[test]
    fn telemetry_does_not_change_results() {
        let run = |with_telemetry: bool| {
            let mut env = msd_env(13);
            if with_telemetry {
                env.set_telemetry(telemetry::Telemetry::new(telemetry::JsonlSink::in_memory()));
            }
            env.reset();
            (0..6).map(|_| env.step(&[4, 4, 4, 2])).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wip_grows_without_consumers() {
        let mut env = msd_env(3);
        let mut last = 0usize;
        for _ in 0..5 {
            let out = env.step(&[0, 0, 0, 0]);
            let wip = out.metrics.total_wip();
            assert!(wip >= last, "WIP must be monotone with no capacity");
            last = wip;
        }
        assert!(last > 0, "arrivals should have accumulated WIP");
    }

    #[test]
    fn sufficient_capacity_keeps_wip_low() {
        let mut env = msd_env(4);
        env.reset();
        let mut total = 0usize;
        for _ in 0..10 {
            total = env.step(&[4, 4, 4, 2]).metrics.total_wip();
        }
        // Offered load ≈ 8.1 consumer-seconds/s vs 14 consumers: stable.
        assert!(total < 60, "WIP exploded: {total}");
    }

    #[test]
    fn reset_drains_wip() {
        let mut env = msd_env(5);
        // Pile up a burst with no capacity.
        env.inject_burst(&BurstSpec::new(vec![100, 100, 100]));
        let out = env.step(&[0, 0, 0, 0]);
        assert!(out.metrics.total_wip() >= 300);
        let state = env.reset();
        assert!(
            state.iter().sum::<f64>() <= 1.0,
            "reset left WIP: {state:?}"
        );
    }

    #[test]
    fn over_budget_action_is_clamped_proportionally() {
        let mut env = quiet_env(6);
        let out = env.step(&[14, 14, 14, 14]); // 56 > 14
        assert!(out.metrics.constraint_violated);
        let total: usize = out.metrics.action_applied.iter().sum();
        // Largest-remainder rounding spends the whole budget (the old
        // floor-only clamp produced [3, 3, 3, 3] = 12 of 14); equal
        // fractional remainders break ties toward the lowest index.
        assert_eq!(total, 14);
        assert_eq!(out.metrics.action_applied, vec![4, 4, 3, 3]);
    }

    /// Regression for the floor-bias bug: the clamp must allocate exactly
    /// the budget for *every* over-budget action, not just on average.
    /// The old floor-only scaling under-allocated on almost every clamped
    /// window (e.g. [5, 5, 5, 4] of a 14 budget from [10, 10, 10, 8]),
    /// a systematic capacity loss under sustained overload.
    #[test]
    fn budget_clamp_has_no_floor_bias() {
        use rand::Rng;
        let mut env = quiet_env(20);
        let budget = env.consumer_budget();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut clamped_windows = 0usize;
        for _ in 0..40 {
            let action: Vec<usize> = (0..4).map(|_| rng.gen_range(0..30)).collect();
            let requested: usize = action.iter().sum();
            let out = env.step(&action);
            let applied = &out.metrics.action_applied;
            let total: usize = applied.iter().sum();
            if requested > budget {
                clamped_windows += 1;
                assert_eq!(total, budget, "clamp must spend the budget: {action:?}");
                // Each entry stays within one consumer of its exact
                // proportional share.
                for (i, (&m, &a)) in action.iter().zip(applied).enumerate() {
                    let share = m as f64 * budget as f64 / requested as f64;
                    assert!(
                        (a as f64 - share).abs() < 1.0 + 1e-9,
                        "entry {i} of {action:?}: applied {a} vs share {share}"
                    );
                }
            } else {
                assert_eq!(applied, &action);
            }
        }
        assert!(clamped_windows > 20, "the sweep should mostly over-ask");
    }

    /// Regression for the unchecked `as usize` Poisson cast: a huge
    /// rate × window × modulation product (up to infinity) used to panic
    /// in `Poisson::new("positive mean")`; now it clamps to the
    /// per-window ceiling and every conversion edge is explicit.
    #[test]
    fn poisson_count_conversion_is_checked_at_extreme_means() {
        let mut rng = SmallRng::seed_from_u64(7);
        // Non-positive and NaN means draw nothing and consume no RNG.
        let state = rng.state();
        assert_eq!(checked_poisson_count(0.0, &mut rng), 0);
        assert_eq!(checked_poisson_count(-3.0, &mut rng), 0);
        assert_eq!(checked_poisson_count(f64::NAN, &mut rng), 0);
        assert_eq!(rng.state(), state, "guards must not burn RNG draws");
        // Infinite and absurd finite means clamp instead of panicking
        // (the old code's Poisson::new(inf) panicked outright).
        for mean in [f64::INFINITY, f64::MAX, 1e300] {
            let n = checked_poisson_count(mean, &mut rng);
            let bound = 2.0 * MAX_WINDOW_ARRIVAL_MEAN;
            assert!(n > 0 && (n as f64) < bound, "mean {mean}: n = {n}");
        }
        // A sane mean still behaves like a Poisson draw.
        let n = checked_poisson_count(9.0, &mut rng);
        assert!(n < 100, "mean 9 drew {n}");
    }

    /// An extreme (but finite-mean) arrival rate must flow through the
    /// whole step path without panic or truncation.
    #[test]
    fn step_survives_extreme_arrival_rates() {
        let ensemble = Ensemble::msd();
        // ~1500 arrivals per 30 s window for type 0.
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(13)
            .with_arrival_rates(vec![50.0, 0.0, 0.0]);
        let mut env = MicroserviceEnv::new(ensemble, config);
        let out = env.step(&[4, 4, 4, 2]);
        assert!(out.metrics.arrivals[0] > 1000);
        assert!(env.audit_violations().is_empty());
    }

    /// Regression for the window-boundary attribution bug: the engine's
    /// `pop_until(horizon)` executes events at `t <= horizon`, so an
    /// injected arrival landing exactly on a window's end boundary has its
    /// cluster effects in that window — but the old attribution loop broke
    /// at `t >= window_end` and counted it one window late, making the
    /// reported arrivals disagree with the WIP they caused.
    #[test]
    fn boundary_arrival_is_attributed_to_the_window_it_executes_in() {
        let mut env = quiet_env(30);
        let mut trace = ArrivalTrace::new();
        // Exactly on the end of the first window (30 s in trace time).
        trace.push(Arrival::new(SimTime::from_secs(30), WorkflowTypeId::new(0)));
        // Strictly inside the second window.
        trace.push(Arrival::new(SimTime::from_secs(31), WorkflowTypeId::new(1)));
        env.inject_trace(&trace);
        let w0 = env.step(&[0, 0, 0, 0]);
        assert_eq!(
            w0.metrics.arrivals,
            vec![1, 0, 0],
            "boundary arrival belongs to the window whose horizon executed it"
        );
        assert!(
            w0.metrics.total_wip() > 0,
            "its WIP is visible in the same window's state"
        );
        let w1 = env.step(&[0, 0, 0, 0]);
        assert_eq!(w1.metrics.arrivals, vec![0, 1, 0], "no double count");
        let w2 = env.step(&[0, 0, 0, 0]);
        assert_eq!(w2.metrics.arrivals, vec![0, 0, 0], "exactly one window");
    }

    /// An out-of-order trace (possible via hand-edited files) must land
    /// the same attribution as its sorted form: `record_injection` keeps
    /// the pending schedule time-sorted regardless of push order.
    #[test]
    fn out_of_order_trace_attribution_matches_sorted() {
        let arrivals = [(95u64, 2usize), (5, 0), (65, 1), (35, 0), (65, 2), (5, 1)];
        let run = |order: &[usize]| {
            let mut env = quiet_env(31);
            let mut trace = ArrivalTrace::new();
            for &i in order {
                let (secs, wf) = arrivals[i];
                trace.push(Arrival::new(
                    SimTime::from_secs(secs),
                    WorkflowTypeId::new(wf),
                ));
            }
            env.inject_trace(&trace);
            (0..4)
                .map(|_| env.step(&[4, 4, 4, 2]).metrics.arrivals)
                .collect::<Vec<_>>()
        };
        let shuffled = run(&[0, 1, 2, 3, 4, 5]);
        let sorted = run(&[1, 5, 3, 2, 4, 0]);
        assert_eq!(shuffled, sorted);
        assert_eq!(
            shuffled,
            vec![vec![1, 1, 0], vec![1, 0, 0], vec![0, 1, 1], vec![0, 0, 1],]
        );
    }

    #[test]
    fn recorded_trace_replays_burst_and_background() {
        // Record a run's arrivals, then inject them into a quiet env and
        // check per-window counts line up (the byte-identical round-trip
        // lives in tests/workload_roundtrip.rs).
        let mut env = msd_env(33);
        env.reset();
        env.record_trace();
        env.inject_burst(&BurstSpec::new(vec![5, 2, 0]));
        let original: Vec<_> = (0..3)
            .map(|_| env.step(&[4, 4, 4, 2]).metrics.arrivals)
            .collect();
        let trace = env.take_recorded_trace();
        assert_eq!(trace.len(), original.iter().flatten().sum::<usize>());

        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(33)
            .with_arrival_rates(vec![0.0; 3]);
        let mut replay_env = MicroserviceEnv::new(ensemble, config);
        replay_env.reset();
        replay_env.inject_trace(&trace);
        let replayed: Vec<_> = (0..3)
            .map(|_| replay_env.step(&[4, 4, 4, 2]).metrics.arrivals)
            .collect();
        assert_eq!(replayed, original);
        // Taking again yields an empty trace; recording is one-shot.
        assert!(env.take_recorded_trace().is_empty());
    }

    #[test]
    fn within_budget_action_untouched() {
        let mut env = quiet_env(7);
        let out = env.step(&[5, 4, 3, 2]);
        assert!(!out.metrics.constraint_violated);
        assert_eq!(out.metrics.action_applied, vec![5, 4, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "budget is 14")]
    fn strict_mode_panics_on_violation() {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(8)
            .with_strict_actions();
        let mut env = MicroserviceEnv::new(ensemble, config);
        let _ = env.step(&[14, 14, 14, 14]);
    }

    #[test]
    fn burst_is_visible_in_arrival_counts() {
        let mut env = quiet_env(9);
        env.inject_burst(&BurstSpec::new(vec![10, 20, 30]));
        let out = env.step(&[4, 4, 4, 2]);
        assert_eq!(out.metrics.arrivals, vec![10, 20, 30]);
    }

    #[test]
    fn completions_report_response_times() {
        let mut env = quiet_env(10);
        env.inject_burst(&BurstSpec::new(vec![3, 0, 0]));
        let mut completed = 0;
        for _ in 0..10 {
            let out = env.step(&[4, 4, 4, 2]);
            for (i, c) in out.metrics.completions.iter().enumerate() {
                if *c > 0 {
                    assert!(out.metrics.mean_response_secs[i].unwrap() > 0.0);
                }
                completed += c;
            }
        }
        assert_eq!(completed, 3);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let run = |seed| {
            let mut env = msd_env(seed);
            env.reset();
            let mut states = Vec::new();
            for k in 0..8 {
                let a = [(k % 4) + 1, 3, 4, 2];
                states.push(env.step(&a).state);
            }
            states
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn env_snapshot_restore_resumes_bit_identically() {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(91)
            .with_sim(crate::SimConfig::new(91).with_failure_rate(10.0));
        let mut env = MicroserviceEnv::new(ensemble, config);
        env.reset();
        for k in 0..4 {
            let _ = env.step(&[(k % 4) + 1, 3, 4, 2]);
        }
        // Leave injected arrivals pending across the snapshot boundary: they
        // are attributed to the first post-restore window.
        env.inject_burst(&BurstSpec::new(vec![5, 5, 5]));

        let json = serde_json::to_string(&env.snapshot()).unwrap();
        let snap: EnvSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = MicroserviceEnv::from_snapshot(Ensemble::msd(), snap);

        for k in 0..6 {
            let a = [(k % 4) + 1, 3, 4, 2];
            assert_eq!(env.step(&a), restored.step(&a), "window {k}");
        }
        assert_eq!(env.snapshot(), restored.snapshot());
    }

    #[test]
    fn ligo_env_has_nine_dims() {
        let ensemble = Ensemble::ligo();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(11);
        let mut env = MicroserviceEnv::new(ensemble, config);
        let state = env.reset();
        assert_eq!(state.len(), 9);
        assert_eq!(env.consumer_budget(), 30);
        let out = env.step(&[4, 4, 4, 3, 3, 3, 3, 3, 3]);
        assert_eq!(out.state.len(), 9);
    }
}
