//! The RL-facing, window-stepped view of the cluster.

use std::collections::VecDeque;

use desim::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};
use workflow::{ArrivalTrace, BurstSpec, Ensemble, WorkflowTypeId};

use telemetry::Telemetry;

use crate::cluster::ClusterSnapshot;
use crate::{Cluster, EnvConfig, WindowMetrics};

/// The paper's reward function, `r(k) = 1 − Σ_j w_j(k+1)`: the single
/// audited implementation every layer (real environment, synthetic
/// model-based environment, evaluation harnesses) must route through.
///
/// The reward is 1 when the cluster is fully drained and decreases linearly
/// in the total work-in-progress left at the end of the window (§IV-B).
#[must_use]
pub fn reward_from_total_wip(total_wip: f64) -> f64 {
    1.0 - total_wip
}

/// The result of advancing the environment by one decision window.
///
/// This is the environment-side mirror of [`rl::Transition`]'s
/// `(next_state, reward)` pair (the `rl` crate keeps its own copy to stay
/// independent of the emulator): `state` feeds the agent's next decision and
/// `reward` is `r(k) = 1 − Σ_j w_j(k+1)` per [`reward_from_total_wip`],
/// while `metrics` carries everything else an evaluation harness may want.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The next state `w(k+1)`: WIP per task type as floats (RL convention).
    pub state: Vec<f64>,
    /// The paper's reward `r(k) = 1 − Σ_j w_j(k+1)`.
    pub reward: f64,
    /// Full window observability for evaluation harnesses.
    pub metrics: WindowMetrics,
}

impl StepOutcome {
    /// Total work-in-progress across task types at the end of the window,
    /// `Σ_j w_j(k+1)` — the quantity the reward penalises:
    /// `reward == reward_from_total_wip(out.wip_total())`.
    #[must_use]
    pub fn wip_total(&self) -> f64 {
        self.state.iter().sum()
    }
}

/// The microservice workflow system viewed as a reinforcement-learning
/// environment (paper §IV-B).
///
/// Each [`step`](MicroserviceEnv::step) applies a consumer allocation
/// `m(k)`, advances simulated time by one decision window (default 30 s)
/// while background Poisson arrivals stream in, and returns the WIP state,
/// reward, and evaluation metrics. [`reset`](MicroserviceEnv::reset)
/// implements the paper's reset: "provision sufficient consumers of each
/// microservice to reduce WIP close to 0" (§VI-A3).
///
/// # Examples
///
/// ```
/// use microsim::{EnvConfig, MicroserviceEnv};
/// use workflow::{BurstSpec, Ensemble};
///
/// let ensemble = Ensemble::msd();
/// let config = EnvConfig::for_ensemble(&ensemble).with_seed(3);
/// let mut env = MicroserviceEnv::new(ensemble, config);
/// env.reset();
/// env.inject_burst(&BurstSpec::new(vec![50, 0, 0]));
/// let out = env.step(&[8, 3, 2, 1]);
/// assert!(out.metrics.arrivals[0] >= 50);
/// ```
#[derive(Debug)]
pub struct MicroserviceEnv {
    cluster: Cluster,
    config: EnvConfig,
    arrival_rng: SmallRng,
    window_index: usize,
    /// Injected (burst/trace) arrivals not yet attributed to a window's
    /// metrics, sorted by arrival time.
    injected_schedule: VecDeque<(SimTime, usize)>,
    /// Reusable buffer for draining the cluster's completion records each
    /// window without a fresh allocation.
    completion_buf: Vec<crate::CompletionRecord>,
    telemetry: Telemetry,
}

impl MicroserviceEnv {
    /// Creates an environment over a fresh cluster.
    ///
    /// # Panics
    ///
    /// Panics if `config.arrival_rates.len()` differs from the ensemble's
    /// number of workflow types.
    #[must_use]
    pub fn new(ensemble: Ensemble, config: EnvConfig) -> Self {
        assert_eq!(
            config.arrival_rates.len(),
            ensemble.num_workflow_types(),
            "one arrival rate per workflow type"
        );
        // Derive a distinct stream for arrivals so that arrival sampling and
        // service-time sampling do not interleave.
        let arrival_rng = SmallRng::seed_from_u64(config.sim.seed.wrapping_add(0x9E37_79B9));
        let cluster = Cluster::new(ensemble, config.sim.clone());
        MicroserviceEnv {
            cluster,
            config,
            arrival_rng,
            window_index: 0,
            injected_schedule: VecDeque::new(),
            completion_buf: Vec::new(),
            telemetry: Telemetry::noop(),
        }
    }

    /// Attaches a telemetry handle. Each subsequent [`step`] emits a
    /// `window` event carrying the full [`WindowMetrics`] plus an
    /// event-engine checkpoint; recording is observability-only and leaves
    /// simulation results bit-identical.
    ///
    /// [`step`]: MicroserviceEnv::step
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.cluster.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Number of task types `J` (the state and action dimensionality).
    #[must_use]
    pub fn num_task_types(&self) -> usize {
        self.cluster.ensemble().num_task_types()
    }

    /// Number of workflow types `N`.
    #[must_use]
    pub fn num_workflow_types(&self) -> usize {
        self.cluster.ensemble().num_workflow_types()
    }

    /// The total-consumer constraint `C`.
    #[must_use]
    pub fn consumer_budget(&self) -> usize {
        self.config.consumer_budget
    }

    /// The decision-window length.
    #[must_use]
    pub fn window(&self) -> SimTime {
        self.config.window
    }

    /// The current state `w(k)` as floats.
    #[must_use]
    pub fn state(&self) -> Vec<f64> {
        self.cluster.wip().iter().map(|&w| w as f64).collect()
    }

    /// Read-only access to the underlying cluster.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The environment's configuration.
    #[must_use]
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Index of the next decision window.
    #[must_use]
    pub fn window_index(&self) -> usize {
        self.window_index
    }

    /// Injects a front-loaded request burst at the current instant (the
    /// paper's §VI-D evaluation protocol).
    pub fn inject_burst(&mut self, burst: &BurstSpec) {
        let now = self.cluster.now();
        for arrival in burst.trace().arrivals() {
            self.cluster.submit(now, arrival.workflow_type);
            self.record_injection(now, arrival.workflow_type.index());
        }
    }

    /// Injects a pre-generated arrival trace, offset so that trace time 0 is
    /// the current instant.
    pub fn inject_trace(&mut self, trace: &ArrivalTrace) {
        let now = self.cluster.now();
        for arrival in trace.arrivals() {
            let at = now + arrival.time;
            self.cluster.submit(at, arrival.workflow_type);
            self.record_injection(at, arrival.workflow_type.index());
        }
    }

    /// Queues an injected arrival for metric attribution, keeping the
    /// schedule time-sorted.
    fn record_injection(&mut self, at: SimTime, workflow_type: usize) {
        // Injections come in time order per call; merge lazily by insertion.
        let pos = self
            .injected_schedule
            .iter()
            .rposition(|&(t, _)| t <= at)
            .map_or(0, |p| p + 1);
        self.injected_schedule.insert(pos, (at, workflow_type));
    }

    /// Applies the consumer allocation `action` for one window and advances
    /// simulated time to the window's end.
    ///
    /// If the allocation's total exceeds the budget it is proportionally
    /// scaled down (when `clamp_actions` is set) and the violation recorded.
    ///
    /// # Panics
    ///
    /// Panics if `action.len()` differs from the number of task types, or if
    /// the action violates the budget while `clamp_actions` is disabled.
    pub fn step(&mut self, action: &[usize]) -> StepOutcome {
        assert_eq!(
            action.len(),
            self.num_task_types(),
            "one consumer count per task type"
        );
        let (applied, violated) = self.enforce_budget(action);
        self.cluster.set_consumers(&applied);

        // Stream this window's background Poisson arrivals, and attribute
        // any injected arrivals whose time falls inside this window.
        let window_start = self.cluster.now();
        let window_end = window_start + self.config.window;
        let mut arrivals = vec![0; self.num_workflow_types()];
        while let Some(&(t, wf)) = self.injected_schedule.front() {
            if t >= window_end {
                break;
            }
            arrivals[wf] += 1;
            self.injected_schedule.pop_front();
        }
        let window_secs = self.config.window.as_secs_f64();
        for (i, &rate) in self.config.arrival_rates.iter().enumerate() {
            if rate <= 0.0 {
                continue;
            }
            let n = Poisson::new(rate * window_secs)
                .expect("positive mean")
                .sample(&mut self.arrival_rng) as usize;
            for _ in 0..n {
                let offset = self.arrival_rng.gen_range(0.0..window_secs);
                self.cluster.submit(
                    window_start + SimTime::from_secs_f64(offset),
                    WorkflowTypeId::new(i),
                );
            }
            arrivals[i] += n;
        }

        self.cluster.run_until(window_start + self.config.window);

        let wip = self.cluster.wip();
        #[allow(clippy::cast_precision_loss)]
        let reward = reward_from_total_wip(wip.iter().sum::<usize>() as f64);
        let (completions, mean_response_secs) = self.summarise_completions();
        let metrics = WindowMetrics {
            window_index: self.window_index,
            wip: wip.clone(),
            reward,
            action_applied: applied,
            constraint_violated: violated,
            arrivals,
            completions,
            mean_response_secs,
        };
        self.audit_metrics(&metrics);
        self.cluster.audit_window();
        self.window_index += 1;
        if self.telemetry.is_enabled() {
            self.cluster.telemetry_checkpoint();
            self.telemetry.event_struct("window", &metrics);
            self.telemetry.counter(
                "microsim.arrivals",
                metrics.arrivals.iter().sum::<usize>() as u64,
            );
            self.telemetry.counter(
                "microsim.completions",
                metrics.completions.iter().sum::<usize>() as u64,
            );
            #[allow(clippy::cast_precision_loss)]
            self.telemetry.gauge(
                "microsim.workflows_in_flight",
                self.cluster.workflows_in_flight() as f64,
            );
        }
        StepOutcome {
            state: wip.iter().map(|&w| w as f64).collect(),
            reward,
            metrics,
        }
    }

    /// Drains WIP close to zero by provisioning ample consumers, then winds
    /// the pools back down. Returns the post-reset state.
    ///
    /// Background arrivals are paused during the reset, which happens
    /// "outside" the measured decision timeline (the window index does not
    /// advance).
    pub fn reset(&mut self) -> Vec<f64> {
        let capacity = self.config.consumer_budget * self.config.reset_capacity_factor;
        let targets = vec![capacity.max(1); self.num_task_types()];
        self.cluster.force_consumers(&targets);
        for _ in 0..self.config.reset_max_windows {
            let horizon = self.cluster.now() + self.config.window;
            self.cluster.run_until(horizon);
            if self.cluster.total_wip() <= self.config.reset_wip_threshold {
                break;
            }
        }
        // Wind the pools back down; the next step's action re-provisions.
        let zeros = vec![0; self.num_task_types()];
        self.cluster.set_consumers(&zeros);
        // Reset-period completions are not part of any window's metrics;
        // injected arrivals overtaken by the reset drop out of attribution.
        let _ = self.cluster.drain_completions();
        let now = self.cluster.now();
        while matches!(self.injected_schedule.front(), Some(&(t, _)) if t <= now) {
            self.injected_schedule.pop_front();
        }
        self.state()
    }

    /// Checks the per-window metric vectors for length agreement: the
    /// task-type–indexed vectors must have `J` entries and the
    /// workflow-type–indexed ones `N`. A disagreement would make
    /// [`WindowMetrics::overall_mean_response_secs`] silently drop workflow
    /// types from its weighted mean, so it is flagged here at the source.
    fn audit_metrics(&mut self, metrics: &WindowMetrics) {
        if !(cfg!(debug_assertions) || self.cluster.audit_enabled()) {
            return;
        }
        let j = self.num_task_types();
        let n = self.num_workflow_types();
        let checks: [(&'static str, usize, usize); 5] = [
            ("wip", j, metrics.wip.len()),
            ("action_applied", j, metrics.action_applied.len()),
            ("arrivals", n, metrics.arrivals.len()),
            ("completions", n, metrics.completions.len()),
            ("mean_response_secs", n, metrics.mean_response_secs.len()),
        ];
        for (field, expected, actual) in checks {
            if expected != actual {
                self.cluster
                    .flag_metric_shape(metrics.window_index, field, expected, actual);
            }
        }
    }

    /// Invariant violations recorded so far by the audit layer (see
    /// [`Cluster::audit_violations`](crate::Cluster::audit_violations)).
    #[must_use]
    pub fn audit_violations(&self) -> &[crate::AuditViolation] {
        self.cluster.audit_violations()
    }

    /// Removes and returns the invariant violations recorded so far.
    pub fn take_audit_violations(&mut self) -> Vec<crate::AuditViolation> {
        self.cluster.take_audit_violations()
    }

    fn enforce_budget(&self, action: &[usize]) -> (Vec<usize>, bool) {
        let total: usize = action.iter().sum();
        let budget = self.config.consumer_budget;
        if total <= budget {
            return (action.to_vec(), false);
        }
        assert!(
            self.config.clamp_actions,
            "action uses {total} consumers, budget is {budget}"
        );
        // Proportional scale-down with floors keeps Σ m_j ≤ C.
        let scale = budget as f64 / total as f64;
        let applied = action
            .iter()
            .map(|&m| (m as f64 * scale).floor() as usize)
            .collect();
        (applied, true)
    }

    /// Captures the environment's complete dynamic state (cluster, arrival
    /// RNG, window index, pending injected arrivals) for checkpointing.
    /// Telemetry attachment is not part of the snapshot; reattach with
    /// [`MicroserviceEnv::set_telemetry`] after restoring.
    #[must_use]
    pub fn snapshot(&self) -> EnvSnapshot {
        EnvSnapshot {
            cluster: self.cluster.snapshot(),
            config: self.config.clone(),
            arrival_rng_state: self.arrival_rng.state(),
            window_index: self.window_index,
            injected_schedule: self.injected_schedule.clone(),
        }
    }

    /// Rebuilds an environment from an [`EnvSnapshot`], continuing
    /// bit-identically with the run that produced it.
    ///
    /// # Panics
    ///
    /// Panics if `ensemble` does not match the snapshot (wrong task-type or
    /// workflow-type count for this checkpoint).
    #[must_use]
    pub fn from_snapshot(ensemble: Ensemble, snapshot: EnvSnapshot) -> Self {
        assert_eq!(
            snapshot.config.arrival_rates.len(),
            ensemble.num_workflow_types(),
            "one arrival rate per workflow type"
        );
        MicroserviceEnv {
            cluster: Cluster::from_snapshot(ensemble, snapshot.cluster),
            config: snapshot.config,
            arrival_rng: SmallRng::from_state(snapshot.arrival_rng_state),
            window_index: snapshot.window_index,
            injected_schedule: snapshot.injected_schedule,
            completion_buf: Vec::new(),
            telemetry: Telemetry::noop(),
        }
    }

    fn summarise_completions(&mut self) -> (Vec<usize>, Vec<Option<f64>>) {
        let n = self.num_workflow_types();
        let mut counts = vec![0usize; n];
        let mut sums = vec![0.0f64; n];
        let mut records = std::mem::take(&mut self.completion_buf);
        records.clear();
        self.cluster.drain_completions_into(&mut records);
        for record in &records {
            let i = record.workflow_type.index();
            counts[i] += 1;
            sums[i] += record.response_secs();
        }
        records.clear();
        self.completion_buf = records;
        let means = counts
            .iter()
            .zip(&sums)
            .map(|(&c, &s)| (c > 0).then(|| s / c as f64))
            .collect();
        (counts, means)
    }
}

/// Serializable checkpoint of a [`MicroserviceEnv`]'s full dynamic state.
///
/// An opaque token: its only contract is that
/// [`MicroserviceEnv::from_snapshot`] resumes bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvSnapshot {
    cluster: ClusterSnapshot,
    config: EnvConfig,
    arrival_rng_state: [u64; 4],
    window_index: usize,
    injected_schedule: VecDeque<(SimTime, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msd_env(seed: u64) -> MicroserviceEnv {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        MicroserviceEnv::new(ensemble, config)
    }

    /// A quiet environment: no background arrivals.
    fn quiet_env(seed: u64) -> MicroserviceEnv {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(seed)
            .with_arrival_rates(vec![0.0; 3]);
        MicroserviceEnv::new(ensemble, config)
    }

    #[test]
    fn step_advances_one_window() {
        let mut env = msd_env(1);
        let before = env.cluster().now();
        let _ = env.step(&[4, 4, 4, 2]);
        assert_eq!(env.cluster().now() - before, SimTime::from_secs(30));
        assert_eq!(env.window_index(), 1);
    }

    #[test]
    fn reward_is_one_minus_total_wip() {
        let mut env = msd_env(2);
        let out = env.step(&[4, 4, 4, 2]);
        assert!((out.reward - (1.0 - out.metrics.total_wip() as f64)).abs() < 1e-12);
        assert_eq!(out.reward, reward_from_total_wip(out.wip_total()));
    }

    #[test]
    fn telemetry_emits_one_window_event_per_step() {
        use telemetry::{JsonlSink, Recorder, Telemetry};
        let sink = JsonlSink::in_memory();
        let mut env = msd_env(12);
        env.set_telemetry(Telemetry::new(sink.clone()));
        let _ = env.step(&[4, 4, 4, 2]);
        let _ = env.step(&[4, 4, 4, 2]);
        Recorder::flush(&*sink);
        let text = String::from_utf8(sink.take_output()).unwrap();
        let windows = text
            .lines()
            .filter(|l| l.contains("\"name\":\"window\""))
            .count();
        assert_eq!(windows, 2);
        assert!(text.contains("\"desim.events_processed\""));
        assert!(text.contains("\"window_index\""));
    }

    #[test]
    fn telemetry_does_not_change_results() {
        let run = |with_telemetry: bool| {
            let mut env = msd_env(13);
            if with_telemetry {
                env.set_telemetry(telemetry::Telemetry::new(telemetry::JsonlSink::in_memory()));
            }
            env.reset();
            (0..6).map(|_| env.step(&[4, 4, 4, 2])).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wip_grows_without_consumers() {
        let mut env = msd_env(3);
        let mut last = 0usize;
        for _ in 0..5 {
            let out = env.step(&[0, 0, 0, 0]);
            let wip = out.metrics.total_wip();
            assert!(wip >= last, "WIP must be monotone with no capacity");
            last = wip;
        }
        assert!(last > 0, "arrivals should have accumulated WIP");
    }

    #[test]
    fn sufficient_capacity_keeps_wip_low() {
        let mut env = msd_env(4);
        env.reset();
        let mut total = 0usize;
        for _ in 0..10 {
            total = env.step(&[4, 4, 4, 2]).metrics.total_wip();
        }
        // Offered load ≈ 8.1 consumer-seconds/s vs 14 consumers: stable.
        assert!(total < 60, "WIP exploded: {total}");
    }

    #[test]
    fn reset_drains_wip() {
        let mut env = msd_env(5);
        // Pile up a burst with no capacity.
        env.inject_burst(&BurstSpec::new(vec![100, 100, 100]));
        let out = env.step(&[0, 0, 0, 0]);
        assert!(out.metrics.total_wip() >= 300);
        let state = env.reset();
        assert!(
            state.iter().sum::<f64>() <= 1.0,
            "reset left WIP: {state:?}"
        );
    }

    #[test]
    fn over_budget_action_is_clamped_proportionally() {
        let mut env = quiet_env(6);
        let out = env.step(&[14, 14, 14, 14]); // 56 > 14
        assert!(out.metrics.constraint_violated);
        let total: usize = out.metrics.action_applied.iter().sum();
        assert!(total <= 14);
        assert_eq!(out.metrics.action_applied, vec![3, 3, 3, 3]);
    }

    #[test]
    fn within_budget_action_untouched() {
        let mut env = quiet_env(7);
        let out = env.step(&[5, 4, 3, 2]);
        assert!(!out.metrics.constraint_violated);
        assert_eq!(out.metrics.action_applied, vec![5, 4, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "budget is 14")]
    fn strict_mode_panics_on_violation() {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(8)
            .with_strict_actions();
        let mut env = MicroserviceEnv::new(ensemble, config);
        let _ = env.step(&[14, 14, 14, 14]);
    }

    #[test]
    fn burst_is_visible_in_arrival_counts() {
        let mut env = quiet_env(9);
        env.inject_burst(&BurstSpec::new(vec![10, 20, 30]));
        let out = env.step(&[4, 4, 4, 2]);
        assert_eq!(out.metrics.arrivals, vec![10, 20, 30]);
    }

    #[test]
    fn completions_report_response_times() {
        let mut env = quiet_env(10);
        env.inject_burst(&BurstSpec::new(vec![3, 0, 0]));
        let mut completed = 0;
        for _ in 0..10 {
            let out = env.step(&[4, 4, 4, 2]);
            for (i, c) in out.metrics.completions.iter().enumerate() {
                if *c > 0 {
                    assert!(out.metrics.mean_response_secs[i].unwrap() > 0.0);
                }
                completed += c;
            }
        }
        assert_eq!(completed, 3);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let run = |seed| {
            let mut env = msd_env(seed);
            env.reset();
            let mut states = Vec::new();
            for k in 0..8 {
                let a = [(k % 4) + 1, 3, 4, 2];
                states.push(env.step(&a).state);
            }
            states
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn env_snapshot_restore_resumes_bit_identically() {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(91)
            .with_sim(crate::SimConfig::new(91).with_failure_rate(10.0));
        let mut env = MicroserviceEnv::new(ensemble, config);
        env.reset();
        for k in 0..4 {
            let _ = env.step(&[(k % 4) + 1, 3, 4, 2]);
        }
        // Leave injected arrivals pending across the snapshot boundary: they
        // are attributed to the first post-restore window.
        env.inject_burst(&BurstSpec::new(vec![5, 5, 5]));

        let json = serde_json::to_string(&env.snapshot()).unwrap();
        let snap: EnvSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = MicroserviceEnv::from_snapshot(Ensemble::msd(), snap);

        for k in 0..6 {
            let a = [(k % 4) + 1, 3, 4, 2];
            assert_eq!(env.step(&a), restored.step(&a), "window {k}");
        }
        assert_eq!(env.snapshot(), restored.snapshot());
    }

    #[test]
    fn ligo_env_has_nine_dims() {
        let ensemble = Ensemble::ligo();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(11);
        let mut env = MicroserviceEnv::new(ensemble, config);
        let state = env.reset();
        assert_eq!(state.len(), 9);
        assert_eq!(env.consumer_budget(), 30);
        let out = env.step(&[4, 4, 4, 3, 3, 3, 3, 3, 3]);
        assert_eq!(out.state.len(), 9);
    }
}
