//! The simulator correctness-audit layer.
//!
//! Every figure the repo reproduces rests on the emulator faithfully
//! conserving work: requests must never be silently created or lost, pool
//! populations must obey their algebra through arbitrary
//! retarget/fail/reset sequences, simulated time must be monotone, and the
//! per-window metric vectors must agree in shape. [`SimAuditor`] checks all
//! of that:
//!
//! * **debug builds** — the checks run unconditionally as `debug_assert!`s,
//!   so any violation aborts the offending test with a precise message;
//! * **release builds** — checks are off by default (zero cost) and opt-in
//!   via [`SimConfig::with_audit`](crate::SimConfig::with_audit) or the
//!   `MIRAS_AUDIT=1` environment variable. In audit mode a violation does
//!   *not* panic: it is recorded as a typed [`AuditViolation`], emitted as
//!   an `audit` telemetry event, and left for the caller to collect through
//!   [`Cluster::take_audit_violations`](crate::Cluster::take_audit_violations)
//!   (or the same-named passthroughs on `MicroserviceEnv` and the
//!   `miras-core` adapter) — so fault-injection campaigns produce
//!   diagnosable reports instead of opaque `usize`-underflow panics.
//!
//! Auditing is observation-only: it never touches an RNG and never feeds
//! anything back into the simulation, so results are bit-identical with
//! auditing on or off.

use std::fmt;

use desim::SimTime;
use serde::Serialize;
use telemetry::Telemetry;

use crate::pool::PoolDesync;

/// One detected invariant violation, with everything needed to diagnose it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum AuditViolation {
    /// A consumer pool's population counters broke their algebra
    /// (`busy ≤ active`, `pending_retire ≤ busy`,
    /// `cancel_starting ≤ starting`, no negative populations).
    Pool {
        /// Task-type index of the desynced pool (resolve to a name through
        /// the ensemble's task-type table; the violation itself stays
        /// allocation-free on the event hot path).
        task: usize,
        /// The broken relation plus the full raw counter dump.
        desync: PoolDesync,
    },
    /// Task-request conservation broke for one task type: every released
    /// request must be completed, queued, in service, or in delayed
    /// delivery.
    TaskConservation {
        /// Task-type index.
        task: usize,
        /// Requests released into the delivery system so far (cumulative).
        released: u64,
        /// Requests completed so far (cumulative).
        completed: u64,
        /// Requests currently waiting in the queue.
        queued: usize,
        /// Requests currently being processed (busy consumers).
        in_service: usize,
        /// Requests currently held up by a delivery-delay spike.
        in_delivery: usize,
    },
    /// Workflow-request conservation broke for one workflow type: every
    /// arrived request must be either completed or still in flight.
    WorkflowConservation {
        /// Workflow-type index.
        workflow: usize,
        /// Workflow requests that have arrived so far (cumulative).
        submitted: u64,
        /// Workflow requests completed so far (cumulative).
        completed: u64,
        /// Workflow requests currently in flight.
        in_flight: usize,
    },
    /// The event engine delivered an event with a timestamp earlier than a
    /// previously delivered one.
    TimeRegression {
        /// Timestamp of the out-of-order event.
        event_time: SimTime,
        /// Latest timestamp seen before it.
        previous: SimTime,
    },
    /// Two per-window metric vectors that must describe the same index space
    /// (task types or workflow types) disagree in length.
    MetricShape {
        /// Zero-based decision-window index.
        window_index: usize,
        /// Which vector has the wrong length.
        field: &'static str,
        /// The length the vector must have.
        expected: usize,
        /// The length it actually has.
        actual: usize,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::Pool { task, desync } => {
                write!(f, "pool {task}: {desync}")
            }
            AuditViolation::TaskConservation {
                task,
                released,
                completed,
                queued,
                in_service,
                in_delivery,
            } => write!(
                f,
                "task {task}: released {released} != completed {completed} + queued {queued} \
                 + in-service {in_service} + in-delivery {in_delivery}"
            ),
            AuditViolation::WorkflowConservation {
                workflow,
                submitted,
                completed,
                in_flight,
            } => write!(
                f,
                "workflow {workflow}: submitted {submitted} != completed {completed} \
                 + in-flight {in_flight}"
            ),
            AuditViolation::TimeRegression {
                event_time,
                previous,
            } => write!(
                f,
                "event time went backwards: {event_time:?} after {previous:?}"
            ),
            AuditViolation::MetricShape {
                window_index,
                field,
                expected,
                actual,
            } => write!(
                f,
                "window {window_index}: metric vector `{field}` has length {actual}, \
                 expected {expected}"
            ),
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Collector for invariant violations, threaded through the cluster.
///
/// When disabled (the default in release builds) every check site reduces to
/// one branch. Violations recorded while a telemetry handle is attached are
/// also emitted as structured `audit` events so JSONL streams carry the
/// full diagnosis alongside the run they poisoned.
#[derive(Debug, Default)]
pub struct SimAuditor {
    enabled: bool,
    violations: Vec<AuditViolation>,
    last_event_time: SimTime,
    telemetry: Telemetry,
}

impl SimAuditor {
    /// Creates an auditor; `enabled` turns on runtime (release-mode)
    /// checking.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        SimAuditor {
            enabled,
            violations: Vec::new(),
            last_event_time: SimTime::ZERO,
            telemetry: Telemetry::noop(),
        }
    }

    /// Whether runtime checking is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches a telemetry handle for `audit` events.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Records a violation (and emits it as an `audit` telemetry event).
    pub fn record(&mut self, violation: AuditViolation) {
        self.telemetry.event_struct("audit", &violation);
        self.violations.push(violation);
    }

    /// Checks event-time monotonicity against the last event seen.
    pub fn check_event_time(&mut self, at: SimTime) {
        if at < self.last_event_time {
            let violation = AuditViolation::TimeRegression {
                event_time: at,
                previous: self.last_event_time,
            };
            debug_assert!(false, "audit violation: {violation}");
            self.record(violation);
        } else {
            self.last_event_time = at;
        }
    }

    /// Violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Removes and returns the violations recorded so far.
    pub fn take_violations(&mut self) -> Vec<AuditViolation> {
        std::mem::take(&mut self.violations)
    }
}

/// Whether the `MIRAS_AUDIT` environment variable requests runtime
/// auditing (`1`, `true`, or `on`, case-insensitive).
#[must_use]
pub fn audit_env_enabled() -> bool {
    std::env::var("MIRAS_AUDIT")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "true" || v == "on"
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolCounters;

    fn desync() -> PoolDesync {
        PoolDesync {
            relation: "busy <= active",
            counters: PoolCounters {
                active: 1,
                busy: 2,
                starting: 0,
                cancel_starting: 0,
                pending_retire: 0,
            },
        }
    }

    #[test]
    fn violations_accumulate_and_drain() {
        let mut auditor = SimAuditor::new(true);
        assert!(auditor.is_enabled());
        auditor.record(AuditViolation::Pool {
            task: 0,
            desync: desync(),
        });
        assert_eq!(auditor.violations().len(), 1);
        let taken = auditor.take_violations();
        assert_eq!(taken.len(), 1);
        assert!(auditor.violations().is_empty());
    }

    #[test]
    fn display_names_pool_and_counters() {
        let v = AuditViolation::Pool {
            task: 2,
            desync: desync(),
        };
        let text = v.to_string();
        assert!(text.contains("pool 2"), "{text}");
        assert!(text.contains("busy <= active"), "{text}");
        assert!(text.contains("busy: 2"), "{text}");
    }

    #[test]
    fn monotone_event_times_pass() {
        let mut auditor = SimAuditor::new(true);
        auditor.check_event_time(SimTime::from_secs(1));
        auditor.check_event_time(SimTime::from_secs(1));
        auditor.check_event_time(SimTime::from_secs(2));
        assert!(auditor.violations().is_empty());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn time_regression_is_recorded_in_release_audit_mode() {
        let mut auditor = SimAuditor::new(true);
        auditor.check_event_time(SimTime::from_secs(5));
        auditor.check_event_time(SimTime::from_secs(3));
        assert!(matches!(
            auditor.violations()[0],
            AuditViolation::TimeRegression { .. }
        ));
    }

    #[test]
    fn audit_events_flow_to_telemetry() {
        use telemetry::{JsonlSink, Recorder, Telemetry};
        let sink = JsonlSink::in_memory();
        let mut auditor = SimAuditor::new(true);
        auditor.set_telemetry(Telemetry::new(sink.clone()));
        auditor.record(AuditViolation::MetricShape {
            window_index: 4,
            field: "completions",
            expected: 3,
            actual: 2,
        });
        Recorder::flush(&*sink);
        let text = String::from_utf8(sink.take_output()).unwrap();
        assert!(text.contains("\"name\":\"audit\""), "{text}");
        assert!(text.contains("MetricShape"), "{text}");
    }

    #[test]
    fn env_flag_parsing() {
        // Only exercises the parser logic indirectly: unset variable.
        std::env::remove_var("MIRAS_AUDIT");
        assert!(!audit_env_enabled());
    }
}
