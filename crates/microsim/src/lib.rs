//! Discrete-event emulator of a microservice workflow system.
//!
//! This crate stands in for the MIRAS paper's real testbed (Google Cloud VMs
//! running Kubernetes, RabbitMQ queues, Docker consumers, and a ZooKeeper
//! task-dependency service). It reproduces the behaviours the paper's
//! resource-adaptation problem depends on:
//!
//! * one FIFO **request queue per task type**, drained by a pool of
//!   **consumers** of identical capacity ([`ConsumerPool`]),
//! * a **task-dependency service** that releases successor tasks when their
//!   AND-join predecessors complete ([`Cluster`] + [`workflow::Dag`]),
//! * **container start-up latency**: scaling a pool up takes 5–10 s per
//!   consumer, like the paper's Kubernetes measurements (§VI-A2),
//! * stochastic, log-normally distributed **service times** per task type,
//! * **discrete decision windows** (default 30 s): resource decisions apply
//!   at window boundaries and the state observed is the per-type
//!   work-in-progress `w(k)` ([`MicroserviceEnv`]),
//! * the paper's reward `r(k) = 1 − Σ_j w_j(k)` and the **total-consumer
//!   constraint** `Σ_j m_j ≤ C`.
//!
//! The emulator is deterministic under a fixed seed.
//!
//! # Examples
//!
//! Run the MSD system for three windows under a uniform allocation:
//!
//! ```
//! use microsim::{EnvConfig, MicroserviceEnv};
//! use workflow::Ensemble;
//!
//! let ensemble = Ensemble::msd();
//! let config = EnvConfig::for_ensemble(&ensemble).with_seed(7);
//! let mut env = MicroserviceEnv::new(ensemble, config);
//! let state = env.reset();
//! assert_eq!(state.len(), 4); // one WIP dimension per task type
//! let action = vec![4, 4, 4, 2]; // 14 consumers total
//! for _ in 0..3 {
//!     let step = env.step(&action);
//!     assert!(step.reward <= 1.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod cluster;
mod config;
mod env;
mod metrics;
mod pool;
mod slab;
mod workload;

pub use audit::{audit_env_enabled, AuditViolation, SimAuditor};
pub use cluster::{Cluster, ClusterSnapshot, CompletionRecord};
pub use config::{ConfigError, EnvConfig, SimConfig};
pub use env::{reward_from_total_wip, EnvSnapshot, MicroserviceEnv, StepOutcome};
pub use metrics::{LatencySummary, WindowMetrics};
pub use pool::{ConsumerPool, PoolCounters, PoolDesync};
pub use workload::WorkloadSpec;
