//! The emulated microservice workflow cluster.
//!
//! [`Cluster`] wires together everything the paper's Figure 1 shows: workflow
//! requests arrive, the task-dependency service releases the workflow's entry
//! tasks into their microservices' request queues, consumers drain the queues
//! with stochastic service times, and each task completion releases successor
//! tasks (AND-join) until the workflow's last task finishes.

use std::collections::VecDeque;

use desim::{Engine, QueueKind, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};
use workflow::{Ensemble, TaskTypeId, WorkflowTypeId};

use crate::audit::{audit_env_enabled, AuditViolation, SimAuditor};
use crate::pool::ConsumerPool;
use crate::slab::Slab;
use crate::SimConfig;

/// Identifier of one in-flight workflow instance: its slot in the instance
/// slab. Slots are reused after a workflow completes, so an `InstanceId` is
/// only meaningful while its workflow is in flight — which is the only time
/// the simulator ever references one (every pending event naming an
/// instance keeps it alive through its `remaining_nodes` count).
type InstanceId = u64;

/// One completed workflow request: who it was and how long it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionRecord {
    /// The workflow type of the completed request.
    pub workflow_type: WorkflowTypeId,
    /// When the request arrived.
    pub arrival: SimTime,
    /// When its last task finished.
    pub completion: SimTime,
}

impl CompletionRecord {
    /// The request's end-to-end response time in seconds.
    #[must_use]
    pub fn response_secs(&self) -> f64 {
        (self.completion - self.arrival).as_secs_f64()
    }
}

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Event {
    /// A workflow request of the given type arrives.
    Arrival(WorkflowTypeId),
    /// A consumer of the given task type finished the request it was
    /// processing for workflow `instance`, DAG node `node`.
    TaskComplete {
        task: TaskTypeId,
        instance: InstanceId,
        node: usize,
    },
    /// A consumer of the given task type crashed while processing the
    /// request for workflow `instance`, DAG node `node` (failure injection).
    ConsumerFailed {
        task: TaskTypeId,
        instance: InstanceId,
        node: usize,
    },
    /// A container of the given task type finished starting up.
    ConsumerUp(TaskTypeId),
    /// The physical node with the given index fails, taking down every
    /// consumer it hosts at the same instant (correlated outage injection).
    NodeOutage(usize),
    /// A delayed queue delivery (message-broker latency spike): the task
    /// request materialises in its queue only now.
    Deliver {
        task: TaskTypeId,
        instance: InstanceId,
        node: usize,
    },
}

/// Bookkeeping for one in-flight workflow request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct WorkflowInstance {
    workflow_type: WorkflowTypeId,
    arrival: SimTime,
    /// Per-DAG-node count of predecessors that have not completed yet.
    remaining_preds: Vec<usize>,
    /// Number of DAG nodes that have not completed yet.
    remaining_nodes: usize,
}

/// One task request waiting in a microservice queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PendingTask {
    instance: InstanceId,
    node: usize,
}

/// The emulated microservice workflow system.
///
/// The cluster is the "real environment" of the MIRAS paper: callers submit
/// workflow requests ([`Cluster::submit`]), set per-microservice consumer
/// counts ([`Cluster::set_consumers`]), advance simulated time
/// ([`Cluster::run_until`]), and observe per-microservice work-in-progress
/// ([`Cluster::wip`]) plus completed-workflow response times
/// ([`Cluster::drain_completions`]).
///
/// # Examples
///
/// ```
/// use desim::SimTime;
/// use microsim::{Cluster, SimConfig};
/// use workflow::{Ensemble, WorkflowTypeId};
///
/// let mut cluster = Cluster::new(Ensemble::msd(), SimConfig::new(42));
/// cluster.set_consumers(&[4, 4, 4, 2]);
/// cluster.submit(SimTime::ZERO, WorkflowTypeId::new(0));
/// cluster.run_until(SimTime::from_secs(120));
/// let done = cluster.drain_completions();
/// assert_eq!(done.len(), 1);
/// assert!(done[0].response_secs() > 0.0);
/// ```
#[derive(Debug)]
pub struct Cluster {
    ensemble: Ensemble,
    engine: Engine<Event>,
    queues: Vec<VecDeque<PendingTask>>,
    pools: Vec<ConsumerPool>,
    instances: Slab<WorkflowInstance>,
    /// Recycled `remaining_preds` buffers from completed workflows, so a
    /// steady-state arrival allocates nothing.
    preds_pool: Vec<Vec<usize>>,
    /// Reusable scratch for the `(task, node)` releases of one event.
    scratch_release: Vec<(TaskTypeId, usize)>,
    service_dists: Vec<LogNormal<f64>>,
    rng: SmallRng,
    config: SimConfig,
    completions: Vec<CompletionRecord>,
    tasks_completed: Vec<u64>,
    workflows_submitted: Vec<u64>,
    /// Workflow requests completed so far, per workflow type (cumulative —
    /// unlike `completions`, never drained; the audit layer's conservation
    /// checks depend on it).
    workflows_completed: Vec<u64>,
    /// Task requests released into the delivery system so far, per task
    /// type (cumulative; counts each DAG-node release exactly once —
    /// redeliveries after a consumer crash are not new releases).
    tasks_released: Vec<u64>,
    /// Task requests currently held up by a delivery-delay spike, per task
    /// type (released but neither queued nor in service yet).
    tasks_in_delivery: Vec<usize>,
    consumer_failures: u64,
    /// Absolute time of each node's next correlated outage (empty when the
    /// node fault model is disabled). Dispatch consults this so requests
    /// whose service would outlive the node fail at the outage instant.
    node_next_outage: Vec<SimTime>,
    node_outages: u64,
    auditor: SimAuditor,
}

impl Cluster {
    /// Creates a cluster for `ensemble` with no consumers provisioned.
    ///
    /// # Panics
    ///
    /// Panics if a task type's service-time parameters cannot form a
    /// log-normal distribution (guarded upstream by
    /// [`workflow::TaskTypeDef::new`]).
    #[must_use]
    pub fn new(ensemble: Ensemble, config: SimConfig) -> Self {
        assert!(
            config.node_speed_factors.is_empty()
                || config.node_speed_factors.len() == config.node_count,
            "node_speed_factors must have one entry per node (got {} for {} nodes)",
            config.node_speed_factors.len(),
            config.node_count,
        );
        let j = ensemble.num_task_types();
        let service_dists = ensemble
            .task_types()
            .iter()
            .map(|t| {
                // Log-normal with mean m and coefficient of variation c:
                // sigma^2 = ln(1 + c^2), mu = ln(m) - sigma^2 / 2.
                let c2 = t.service_cv * t.service_cv;
                let sigma2 = (1.0 + c2).ln();
                let mu = t.mean_service_secs.ln() - sigma2 / 2.0;
                LogNormal::new(mu, sigma2.sqrt()).expect("valid service distribution")
            })
            .collect();
        let n = ensemble.num_workflow_types();
        let audit = config.audit || audit_env_enabled();
        let mut cluster = Cluster {
            ensemble,
            engine: Engine::with_queue_kind(config.queue),
            queues: vec![VecDeque::new(); j],
            pools: vec![ConsumerPool::new(); j],
            instances: Slab::new(),
            preds_pool: Vec::new(),
            scratch_release: Vec::new(),
            service_dists,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            completions: Vec::new(),
            tasks_completed: vec![0; j],
            workflows_submitted: vec![0; n],
            workflows_completed: vec![0; n],
            tasks_released: vec![0; j],
            tasks_in_delivery: vec![0; j],
            consumer_failures: 0,
            node_next_outage: Vec::new(),
            node_outages: 0,
            auditor: SimAuditor::new(audit),
        };
        if cluster.config.node_outage_rate_per_hour > 0.0 {
            for node in 0..cluster.config.node_count {
                let at = cluster.sample_outage_gap();
                cluster.node_next_outage.push(at);
                cluster.engine.schedule(at, Event::NodeOutage(node));
            }
        }
        cluster
    }

    /// The workload domain this cluster serves.
    #[must_use]
    pub fn ensemble(&self) -> &Ensemble {
        &self.ensemble
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Schedules a workflow request of type `workflow_type` to arrive at
    /// `at` (clamped to the current time if already past).
    ///
    /// # Panics
    ///
    /// Panics if `workflow_type` is out of range for the ensemble.
    pub fn submit(&mut self, at: SimTime, workflow_type: WorkflowTypeId) {
        assert!(
            workflow_type.index() < self.ensemble.num_workflow_types(),
            "unknown workflow type {workflow_type}"
        );
        self.engine.schedule(at, Event::Arrival(workflow_type));
    }

    /// Retargets every consumer pool; `targets[j]` is the desired number of
    /// consumers for task type `j`. Newly started consumers come up after a
    /// uniformly distributed start-up delay.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of task types.
    pub fn set_consumers(&mut self, targets: &[usize]) {
        assert_eq!(
            targets.len(),
            self.pools.len(),
            "one consumer target per task type"
        );
        for (j, &target) in targets.iter().enumerate() {
            let retarget = self.pools[j].retarget(target);
            for _ in 0..retarget.to_start {
                let delay = self.sample_startup_delay();
                self.engine
                    .schedule_after(delay, Event::ConsumerUp(TaskTypeId::new(j)));
            }
            self.dispatch(TaskTypeId::new(j));
        }
    }

    /// Immediately provisions `targets[j]` *active* consumers per pool,
    /// skipping start-up delays. Used by environment resets, which model the
    /// paper's "provision sufficient consumers" reset outside the measured
    /// timeline.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of task types.
    pub fn force_consumers(&mut self, targets: &[usize]) {
        assert_eq!(targets.len(), self.pools.len());
        for (j, &target) in targets.iter().enumerate() {
            let retarget = self.pools[j].retarget(target);
            for _ in 0..retarget.to_start {
                // Come up "immediately" (next event at the current instant).
                self.engine
                    .schedule_after(SimTime::ZERO, Event::ConsumerUp(TaskTypeId::new(j)));
            }
        }
    }

    /// Advances simulated time to `horizon`, processing all events up to it.
    ///
    /// In debug builds, and in release builds with auditing enabled (see
    /// [`SimConfig::with_audit`]), the audit layer checks event-time
    /// monotonicity plus the pool and task-conservation invariants after
    /// every event.
    pub fn run_until(&mut self, horizon: SimTime) {
        let audit = cfg!(debug_assertions) || self.auditor.is_enabled();
        while let Some((at, event)) = self.engine.pop_until(horizon) {
            if audit {
                self.auditor.check_event_time(at);
            }
            self.handle(event);
            if audit {
                self.audit_event_invariants();
            }
        }
    }

    /// Work-in-progress per microservice: requests waiting in the queue plus
    /// requests being processed (`w_j(k)` in the paper).
    #[must_use]
    pub fn wip(&self) -> Vec<usize> {
        self.queues
            .iter()
            .zip(&self.pools)
            .map(|(q, p)| q.len() + p.busy())
            .collect()
    }

    /// Total work-in-progress across microservices.
    #[must_use]
    pub fn total_wip(&self) -> usize {
        self.wip().iter().sum()
    }

    /// Consumers currently active per microservice.
    #[must_use]
    pub fn active_consumers(&self) -> Vec<usize> {
        self.pools.iter().map(ConsumerPool::active).collect()
    }

    /// The consumer pool of task type `j` (for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn pool(&self, j: TaskTypeId) -> &ConsumerPool {
        &self.pools[j.index()]
    }

    /// Removes and returns the workflow completions recorded since the last
    /// drain, in completion order.
    pub fn drain_completions(&mut self) -> Vec<CompletionRecord> {
        std::mem::take(&mut self.completions)
    }

    /// Appends the completions recorded since the last drain to `into`,
    /// leaving the internal buffer (and its capacity) in place. The
    /// allocation-free sibling of [`Cluster::drain_completions`] for
    /// callers that poll every decision window.
    pub fn drain_completions_into(&mut self, into: &mut Vec<CompletionRecord>) {
        into.append(&mut self.completions);
    }

    /// Attaches a telemetry handle to the underlying event engine and the
    /// audit layer (violations emit structured `audit` events).
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.auditor.set_telemetry(telemetry.clone());
        self.engine.set_telemetry(telemetry);
    }

    /// Publishes event-engine progress (see
    /// [`desim::Engine::telemetry_checkpoint`]).
    pub fn telemetry_checkpoint(&mut self) {
        self.engine.telemetry_checkpoint();
    }

    /// Number of workflow requests submitted so far, per type.
    #[must_use]
    pub fn workflows_submitted(&self) -> &[u64] {
        &self.workflows_submitted
    }

    /// Number of task requests completed so far, per task type.
    #[must_use]
    pub fn tasks_completed(&self) -> &[u64] {
        &self.tasks_completed
    }

    /// Number of workflow requests still in flight.
    #[must_use]
    pub fn workflows_in_flight(&self) -> usize {
        self.instances.len()
    }

    /// Number of events still pending in the engine's queue.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.engine.pending()
    }

    /// Total simulation events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Which event-queue backend the engine runs on (see
    /// [`SimConfig::with_queue_kind`]).
    #[must_use]
    pub fn queue_kind(&self) -> QueueKind {
        self.engine.queue_kind()
    }

    /// Events cascaded from the timing wheel's far-future overflow heap so
    /// far (0 on the heap backend).
    #[must_use]
    pub fn wheel_cascades(&self) -> u64 {
        self.engine.wheel_cascades()
    }

    /// Number of injected consumer failures so far (independent crashes plus
    /// consumers lost to node outages).
    #[must_use]
    pub fn consumer_failures(&self) -> u64 {
        self.consumer_failures
    }

    /// Number of injected correlated node outages so far.
    #[must_use]
    pub fn node_outages(&self) -> u64 {
        self.node_outages
    }

    /// Number of workflow requests completed so far, per type (cumulative;
    /// unaffected by [`Cluster::drain_completions`]).
    #[must_use]
    pub fn workflows_completed(&self) -> &[u64] {
        &self.workflows_completed
    }

    /// Whether runtime (release-mode) invariant auditing is on for this
    /// cluster (via [`SimConfig::with_audit`] or `MIRAS_AUDIT=1`).
    #[must_use]
    pub fn audit_enabled(&self) -> bool {
        self.auditor.is_enabled()
    }

    /// Invariant violations recorded so far (always empty unless runtime
    /// auditing is enabled — debug builds panic at the violation site
    /// instead).
    #[must_use]
    pub fn audit_violations(&self) -> &[AuditViolation] {
        self.auditor.violations()
    }

    /// Removes and returns the invariant violations recorded so far.
    pub fn take_audit_violations(&mut self) -> Vec<AuditViolation> {
        self.auditor.take_violations()
    }

    /// Records a violation: panics in debug builds (the test suite must
    /// stop at the first broken invariant), accumulates the typed report in
    /// runtime-audit mode.
    fn flag(&mut self, violation: AuditViolation) {
        debug_assert!(false, "audit violation: {violation}");
        self.auditor.record(violation);
    }

    /// Per-event invariants: every pool's population algebra plus per-task
    /// request conservation (released = completed + queued + in service +
    /// in delayed delivery). `O(J)` per event with `J` the task-type count.
    fn audit_event_invariants(&mut self) {
        let mut found: Vec<AuditViolation> = Vec::new();
        for (j, pool) in self.pools.iter().enumerate() {
            if let Err(desync) = pool.check_invariants() {
                found.push(AuditViolation::Pool { task: j, desync });
            }
            let balance = self.tasks_completed[j]
                + self.queues[j].len() as u64
                + pool.busy() as u64
                + self.tasks_in_delivery[j] as u64;
            if self.tasks_released[j] != balance {
                found.push(AuditViolation::TaskConservation {
                    task: j,
                    released: self.tasks_released[j],
                    completed: self.tasks_completed[j],
                    queued: self.queues[j].len(),
                    in_service: pool.busy(),
                    in_delivery: self.tasks_in_delivery[j],
                });
            }
        }
        for violation in found {
            self.flag(violation);
        }
    }

    /// Window-boundary audit: the per-event invariants plus per-workflow
    /// request conservation (submitted = completed + in flight), which
    /// needs an `O(instances)` sweep and therefore only runs at decision
    /// boundaries. Called by
    /// [`MicroserviceEnv::step`](crate::MicroserviceEnv::step) after every
    /// window; external harnesses driving a bare cluster can call it at
    /// their own boundaries. A no-op in release builds unless runtime
    /// auditing is enabled.
    pub fn audit_window(&mut self) {
        if !(cfg!(debug_assertions) || self.auditor.is_enabled()) {
            return;
        }
        self.audit_event_invariants();
        let mut in_flight = vec![0usize; self.ensemble.num_workflow_types()];
        for (_, inst) in self.instances.iter() {
            in_flight[inst.workflow_type.index()] += 1;
        }
        let mut found: Vec<AuditViolation> = Vec::new();
        for (i, &submitted) in self.workflows_submitted.iter().enumerate() {
            if submitted != self.workflows_completed[i] + in_flight[i] as u64 {
                found.push(AuditViolation::WorkflowConservation {
                    workflow: i,
                    submitted,
                    completed: self.workflows_completed[i],
                    in_flight: in_flight[i],
                });
            }
        }
        for violation in found {
            self.flag(violation);
        }
    }

    /// Records a metric-shape violation detected by the environment layer
    /// (vector-length disagreement in a [`crate::WindowMetrics`]).
    pub(crate) fn flag_metric_shape(
        &mut self,
        window_index: usize,
        field: &'static str,
        expected: usize,
        actual: usize,
    ) {
        self.flag(AuditViolation::MetricShape {
            window_index,
            field,
            expected,
            actual,
        });
    }

    fn sample_startup_delay(&mut self) -> SimTime {
        let min = self.config.startup_min.as_micros();
        let max = self.config.startup_max.as_micros();
        let micros = if min == max {
            min
        } else {
            self.rng.gen_range(min..=max)
        };
        SimTime::from_micros(micros)
    }

    fn sample_service(&mut self, task: TaskTypeId) -> SimTime {
        let secs = self.service_dists[task.index()].sample(&mut self.rng);
        // Guard against degenerate samples; a request always takes some time.
        SimTime::from_secs_f64(secs.max(1e-3))
    }

    /// Exponential gap until a node's next outage. Clamped to at least one
    /// microsecond so a degenerate draw cannot wedge the event loop at a
    /// single instant.
    fn sample_outage_gap(&mut self) -> SimTime {
        let rate = self.config.node_outage_rate_per_hour;
        debug_assert!(rate > 0.0);
        let hours: f64 = -(1.0 - self.rng.gen::<f64>()).ln() / rate;
        SimTime::from_secs_f64(hours * 3600.0).max(SimTime::from_micros(1))
    }

    /// The physical node hosting consumer pool `j` (round-robin placement).
    fn node_of(&self, j: usize) -> usize {
        j % self.config.node_count
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival(wf) => self.handle_arrival(wf),
            Event::TaskComplete {
                task,
                instance,
                node,
            } => self.handle_task_complete(task, instance, node),
            Event::ConsumerFailed {
                task,
                instance,
                node,
            } => self.handle_consumer_failed(task, instance, node),
            Event::ConsumerUp(task) => {
                if self.pools[task.index()].consumer_up() {
                    self.dispatch(task);
                }
            }
            Event::NodeOutage(node) => self.handle_node_outage(node),
            Event::Deliver {
                task,
                instance,
                node,
            } => {
                let j = task.index();
                // The request leaves the delayed-delivery limbo and becomes
                // visible in its queue. A zero in-delivery count here is a
                // conservation desync (a Deliver event with no matching
                // deferred release).
                if let Some(n) = self.tasks_in_delivery[j].checked_sub(1) {
                    self.tasks_in_delivery[j] = n;
                } else {
                    self.flag(AuditViolation::TaskConservation {
                        task: j,
                        released: self.tasks_released[j],
                        completed: self.tasks_completed[j],
                        queued: self.queues[j].len(),
                        in_service: self.pools[j].busy(),
                        in_delivery: 0,
                    });
                }
                self.queues[j].push_back(PendingTask { instance, node });
                self.dispatch(task);
            }
        }
    }

    fn handle_arrival(&mut self, wf: WorkflowTypeId) {
        self.workflows_submitted[wf.index()] += 1;
        // Recycled buffers: a steady-state arrival allocates nothing.
        let mut remaining_preds = self.preds_pool.pop().unwrap_or_default();
        let mut entries = std::mem::take(&mut self.scratch_release);
        let dag = &self.ensemble.workflow(wf).dag;
        let num_nodes = dag.num_nodes();
        remaining_preds.clear();
        remaining_preds.extend((0..num_nodes).map(|n| dag.fan_in(n)));
        entries.clear();
        entries.extend(dag.entry_nodes().iter().map(|&n| (dag.task_type(n), n)));
        let id = self.instances.insert(WorkflowInstance {
            workflow_type: wf,
            arrival: self.engine.now(),
            remaining_preds,
            remaining_nodes: num_nodes,
        });
        for &(task, node) in &entries {
            self.enqueue_task(task, id, node);
        }
        entries.clear();
        self.scratch_release = entries;
    }

    fn enqueue_task(&mut self, task: TaskTypeId, instance: InstanceId, node: usize) {
        self.tasks_released[task.index()] += 1;
        // Delivery-delay spikes: with configured probability the broker
        // delivers the request only after a uniform delay in (0, max].
        let p = self.config.delivery_delay_prob;
        if p > 0.0 && self.rng.gen_bool(p) {
            let max = self.config.delivery_delay_max.as_micros();
            let delay = SimTime::from_micros(self.rng.gen_range(1..=max));
            self.tasks_in_delivery[task.index()] += 1;
            self.engine.schedule_after(
                delay,
                Event::Deliver {
                    task,
                    instance,
                    node,
                },
            );
            return;
        }
        self.queues[task.index()].push_back(PendingTask { instance, node });
        self.dispatch(task);
    }

    /// Hands queued requests to idle consumers of `task`. With failure
    /// injection enabled, each execution may instead end in a consumer
    /// crash partway through the request's service time — either an
    /// independent crash (exponential time-to-failure) or a correlated
    /// node outage that would land before the service completes.
    fn dispatch(&mut self, task: TaskTypeId) {
        let j = task.index();
        while self.pools[j].idle() > 0 && !self.queues[j].is_empty() {
            let pending = self.queues[j].pop_front().expect("checked non-empty");
            self.pools[j].begin_work();
            let mut service = self.sample_service(task);
            if !self.config.node_speed_factors.is_empty() {
                // Heterogeneous nodes: pool j's host runs `speed` times
                // nominal, so its sampled service time divides by it. The
                // scaling is deterministic (no RNG draw), so a homogeneous
                // config — empty factors — stays bit-identical.
                let speed = self.config.node_speed_factors[self.node_of(j)];
                service = SimTime::from_secs_f64(service.as_secs_f64() / speed);
            }
            if self.config.straggler_prob > 0.0 && self.rng.gen_bool(self.config.straggler_prob) {
                service =
                    SimTime::from_secs_f64(service.as_secs_f64() * self.config.straggler_factor);
            }
            if let Some(cores) = self.config.total_cores {
                // Processor-sharing approximation: with b busy consumers on
                // `cores` CPUs, each runs at cores/b speed (never faster
                // than nominal). Sampled at dispatch time.
                let busy: usize = self.pools.iter().map(ConsumerPool::busy).sum();
                let slowdown = (busy as f64 / cores).max(1.0);
                service = SimTime::from_secs_f64(service.as_secs_f64() * slowdown);
            }
            let completion = self.engine.now() + service;
            let rate = self.config.failure_rate_per_hour;
            // Earliest interrupting instant, if any: an independent crash of
            // this consumer, or its node going down before the service ends.
            let mut interrupt_at: Option<SimTime> = None;
            if rate > 0.0 {
                // Exponential time-to-failure while busy.
                let hours: f64 = -(1.0 - self.rng.gen::<f64>()).ln() / rate;
                let ttf = SimTime::from_secs_f64(hours * 3600.0);
                if ttf < service {
                    interrupt_at = Some(self.engine.now() + ttf);
                }
            }
            if !self.node_next_outage.is_empty() {
                let outage = self.node_next_outage[self.node_of(j)];
                if outage < completion && interrupt_at.is_none_or(|t| outage < t) {
                    interrupt_at = Some(outage);
                }
            }
            match interrupt_at {
                Some(at) => {
                    self.engine.schedule(
                        at,
                        Event::ConsumerFailed {
                            task,
                            instance: pending.instance,
                            node: pending.node,
                        },
                    );
                }
                None => {
                    self.engine.schedule(
                        completion,
                        Event::TaskComplete {
                            task,
                            instance: pending.instance,
                            node: pending.node,
                        },
                    );
                }
            }
        }
    }

    /// A physical node failed: every consumer it hosts dies at this instant.
    /// Busy consumers fail through the [`Event::ConsumerFailed`] events that
    /// dispatch scheduled at the outage time; this handler removes the idle
    /// ones, requests replacement containers, and arms the node's next
    /// outage.
    fn handle_node_outage(&mut self, node: usize) {
        self.node_outages += 1;
        for j in 0..self.pools.len() {
            if self.node_of(j) != node {
                continue;
            }
            let lost = self.pools[j].fail_idle();
            if lost > 0 {
                self.consumer_failures += lost as u64;
                let new_target = self.pools[j].effective_target() + lost;
                let retarget = self.pools[j].retarget(new_target);
                for _ in 0..retarget.to_start {
                    let delay = self.sample_startup_delay();
                    self.engine
                        .schedule_after(delay, Event::ConsumerUp(TaskTypeId::new(j)));
                }
            }
        }
        let gap = self.sample_outage_gap();
        let next = self.engine.now() + gap;
        self.node_next_outage[node] = next;
        self.engine.schedule(next, Event::NodeOutage(node));
    }

    /// A consumer crashed mid-request: redeliver the request to the front
    /// of its queue (at-least-once semantics) and let the orchestrator
    /// start a replacement container.
    fn handle_consumer_failed(&mut self, task: TaskTypeId, instance: InstanceId, node: usize) {
        let j = task.index();
        self.consumer_failures += 1;
        let replace = self.pools[j].fail_busy();
        self.queues[j].push_front(PendingTask { instance, node });
        if replace {
            let new_target = self.pools[j].effective_target() + 1;
            let retarget = self.pools[j].retarget(new_target);
            for _ in 0..retarget.to_start {
                let delay = self.sample_startup_delay();
                self.engine.schedule_after(delay, Event::ConsumerUp(task));
            }
        }
        // Another idle consumer (if any) can pick the request up right away.
        self.dispatch(task);
    }

    fn handle_task_complete(&mut self, task: TaskTypeId, instance: InstanceId, node: usize) {
        let j = task.index();
        self.tasks_completed[j] += 1;
        let stays = self.pools[j].finish_work();

        // Ask the "task-dependency service" for successors and release any
        // whose AND-join is now satisfied.
        let mut finished_workflow = None;
        let mut released = std::mem::take(&mut self.scratch_release);
        released.clear();
        if let Some(inst) = self.instances.get_mut(instance) {
            let dag = &self.ensemble.workflow(inst.workflow_type).dag;
            for &succ in dag.successors(node) {
                inst.remaining_preds[succ] -= 1;
                if inst.remaining_preds[succ] == 0 {
                    released.push((dag.task_type(succ), succ));
                }
            }
            inst.remaining_nodes -= 1;
            if inst.remaining_nodes == 0 {
                finished_workflow = Some((inst.workflow_type, inst.arrival));
            }
        } else {
            debug_assert!(false, "task completion for unknown instance");
        }

        for &(succ_task, succ_node) in &released {
            self.enqueue_task(succ_task, instance, succ_node);
        }
        released.clear();
        self.scratch_release = released;

        if let Some((wf, arrival)) = finished_workflow {
            if let Some(done) = self.instances.remove(instance) {
                let mut preds = done.remaining_preds;
                preds.clear();
                self.preds_pool.push(preds);
            }
            self.workflows_completed[wf.index()] += 1;
            self.completions.push(CompletionRecord {
                workflow_type: wf,
                arrival,
                completion: self.engine.now(),
            });
        }

        if stays {
            self.dispatch(task);
        }
    }

    /// Captures the cluster's complete dynamic state for checkpointing.
    ///
    /// The snapshot embeds the event queue with its exact FIFO tie-break
    /// sequence numbers and the service-time RNG state, so a cluster
    /// restored with [`Cluster::from_snapshot`] replays the very same event
    /// trajectory the original would have. The ensemble itself is *not*
    /// stored — only a structural fingerprint — because the workload
    /// definition is static configuration the caller re-supplies at restore.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        let engine = self.engine.snapshot();
        // Slab iteration is already in slot order (deterministic).
        let instances: Vec<(InstanceId, WorkflowInstance)> = self
            .instances
            .iter()
            .map(|(id, inst)| (id, inst.clone()))
            .collect();
        ClusterSnapshot {
            num_task_types: self.ensemble.num_task_types(),
            num_workflow_types: self.ensemble.num_workflow_types(),
            now: engine.now,
            processed: engine.processed,
            events: engine.events,
            next_seq: engine.next_seq,
            queues: self.queues.clone(),
            pools: self.pools.clone(),
            instances,
            free_instances: self.instances.free_list().to_vec(),
            rng_state: self.rng.state(),
            config: self.config.clone(),
            completions: self.completions.clone(),
            tasks_completed: self.tasks_completed.clone(),
            workflows_submitted: self.workflows_submitted.clone(),
            workflows_completed: self.workflows_completed.clone(),
            tasks_released: self.tasks_released.clone(),
            tasks_in_delivery: self.tasks_in_delivery.clone(),
            consumer_failures: self.consumer_failures,
            node_next_outage: self.node_next_outage.clone(),
            node_outages: self.node_outages,
        }
    }

    /// Rebuilds a cluster from a [`ClusterSnapshot`], continuing
    /// bit-identically with the run that produced it.
    ///
    /// Telemetry is not carried across a restore; reattach with
    /// [`Cluster::set_telemetry`] if needed.
    ///
    /// # Panics
    ///
    /// Panics if `ensemble`'s structure does not match the fingerprint
    /// recorded in the snapshot (wrong workload for this checkpoint).
    #[must_use]
    pub fn from_snapshot(ensemble: Ensemble, snapshot: ClusterSnapshot) -> Self {
        assert_eq!(
            ensemble.num_task_types(),
            snapshot.num_task_types,
            "snapshot was taken for an ensemble with a different task-type count"
        );
        assert_eq!(
            ensemble.num_workflow_types(),
            snapshot.num_workflow_types,
            "snapshot was taken for an ensemble with a different workflow-type count"
        );
        let mut fresh = Cluster::new(ensemble, snapshot.config.clone());
        fresh.engine = Engine::from_snapshot(desim::EngineSnapshot {
            now: snapshot.now,
            processed: snapshot.processed,
            events: snapshot.events,
            next_seq: snapshot.next_seq,
            kind: snapshot.config.queue,
        });
        fresh.queues = snapshot.queues;
        fresh.pools = snapshot.pools;
        fresh.instances = Slab::from_parts(snapshot.instances, snapshot.free_instances);
        fresh.rng = SmallRng::from_state(snapshot.rng_state);
        fresh.config = snapshot.config;
        fresh.completions = snapshot.completions;
        fresh.tasks_completed = snapshot.tasks_completed;
        fresh.workflows_submitted = snapshot.workflows_submitted;
        fresh.workflows_completed = snapshot.workflows_completed;
        fresh.tasks_released = snapshot.tasks_released;
        fresh.tasks_in_delivery = snapshot.tasks_in_delivery;
        fresh.consumer_failures = snapshot.consumer_failures;
        fresh.node_next_outage = snapshot.node_next_outage;
        fresh.node_outages = snapshot.node_outages;
        fresh
    }
}

/// Serializable checkpoint of a [`Cluster`]'s full dynamic state.
///
/// An opaque token: its only contract is that
/// [`Cluster::from_snapshot`] resumes bit-identically. The fields include
/// the event queue (with FIFO tie-break sequence numbers) and the RNG
/// state, so two clusters that share a snapshot replay identical event
/// trajectories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    num_task_types: usize,
    num_workflow_types: usize,
    now: SimTime,
    processed: u64,
    events: Vec<(SimTime, u64, Event)>,
    next_seq: u64,
    queues: Vec<VecDeque<PendingTask>>,
    pools: Vec<ConsumerPool>,
    instances: Vec<(InstanceId, WorkflowInstance)>,
    /// The instance slab's free list (most recently freed last), so a
    /// restored cluster reuses instance slots in the exact same order.
    free_instances: Vec<InstanceId>,
    rng_state: [u64; 4],
    config: SimConfig,
    completions: Vec<CompletionRecord>,
    tasks_completed: Vec<u64>,
    workflows_submitted: Vec<u64>,
    workflows_completed: Vec<u64>,
    tasks_released: Vec<u64>,
    tasks_in_delivery: Vec<usize>,
    consumer_failures: u64,
    node_next_outage: Vec<SimTime>,
    node_outages: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msd_cluster(seed: u64) -> Cluster {
        Cluster::new(Ensemble::msd(), SimConfig::new(seed))
    }

    /// A config with zero start-up delay, for tests that want immediate
    /// capacity.
    fn instant_config(seed: u64) -> SimConfig {
        SimConfig::new(seed).with_startup_delay(SimTime::ZERO, SimTime::ZERO)
    }

    #[test]
    fn single_workflow_completes() {
        let mut c = Cluster::new(Ensemble::msd(), instant_config(1));
        c.set_consumers(&[2, 2, 2, 2]);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        c.run_until(SimTime::from_secs(600));
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].workflow_type, WorkflowTypeId::new(0));
        assert!(done[0].response_secs() > 0.0);
        assert_eq!(c.total_wip(), 0);
        assert_eq!(c.workflows_in_flight(), 0);
    }

    #[test]
    fn no_consumers_means_no_progress() {
        let mut c = msd_cluster(2);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        c.run_until(SimTime::from_secs(300));
        assert!(c.drain_completions().is_empty());
        // Type1 = A → B → C: only A's queue holds work.
        assert_eq!(c.wip(), vec![1, 0, 0, 0]);
    }

    #[test]
    fn response_time_includes_queueing() {
        // One consumer of each type, two identical workflows: the second
        // must wait for the first, so its response time is longer.
        let mut c = Cluster::new(Ensemble::msd(), instant_config(3));
        c.set_consumers(&[1, 1, 1, 1]);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        c.run_until(SimTime::from_secs(600));
        let done = c.drain_completions();
        assert_eq!(done.len(), 2);
        assert!(done[1].response_secs() > done[0].response_secs());
    }

    #[test]
    fn fan_out_join_completes_workflow_once() {
        // MSD Type3 is B → (C ∥ D); the workflow finishes when both branches
        // are done, producing exactly one completion record.
        let mut c = Cluster::new(Ensemble::msd(), instant_config(4));
        c.set_consumers(&[1, 1, 1, 1]);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(2));
        c.run_until(SimTime::from_secs(600));
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].workflow_type, WorkflowTypeId::new(2));
        assert_eq!(c.tasks_completed().iter().sum::<u64>(), 3);
    }

    #[test]
    fn ligo_join_requires_both_branches() {
        // LIGO Full has Sire joining TrigBank and InspiralVeto.
        let ligo = Ensemble::ligo();
        let full = ligo.workflow_by_name("Full").unwrap();
        let mut c = Cluster::new(ligo, instant_config(5));
        c.set_consumers(&[1; 9]);
        c.submit(SimTime::ZERO, full);
        c.run_until(SimTime::from_secs(3600));
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(c.tasks_completed().iter().sum::<u64>(), 8);
        assert_eq!(c.workflows_in_flight(), 0);
    }

    #[test]
    fn startup_delay_defers_processing() {
        let cfg =
            SimConfig::new(6).with_startup_delay(SimTime::from_secs(5), SimTime::from_secs(10));
        let mut c = Cluster::new(Ensemble::msd(), cfg);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        c.set_consumers(&[1, 1, 1, 1]);
        // Before any container can have come up, nothing has been dispatched.
        c.run_until(SimTime::from_secs(4));
        assert_eq!(c.pool(TaskTypeId::new(0)).active(), 0);
        assert_eq!(c.wip()[0], 1);
        // After the maximum start-up delay the consumer is up and working.
        c.run_until(SimTime::from_secs(11));
        assert_eq!(c.pool(TaskTypeId::new(0)).active(), 1);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let run = |seed| {
            let mut c = msd_cluster(seed);
            c.set_consumers(&[4, 4, 4, 2]);
            for s in 0..50 {
                c.submit(
                    SimTime::from_secs(s * 3),
                    WorkflowTypeId::new((s % 3) as usize),
                );
            }
            c.run_until(SimTime::from_secs(1000));
            let responses: Vec<u64> = c
                .drain_completions()
                .iter()
                .map(|r| (r.completion - r.arrival).as_micros())
                .collect();
            (c.wip(), responses, c.tasks_completed().to_vec())
        };
        assert_eq!(run(77), run(77));
        // ...and a different seed gives a different trajectory.
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn wip_counts_queue_plus_busy() {
        let mut c = Cluster::new(Ensemble::msd(), instant_config(8));
        c.set_consumers(&[1, 0, 0, 0]);
        for _ in 0..5 {
            c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        }
        // Advance a hair so arrivals and dispatch happen, but no completion
        // (task A's mean service time is 2 s).
        c.run_until(SimTime::from_millis(1));
        assert_eq!(c.wip()[0], 5); // 4 queued + 1 busy
        assert_eq!(c.pool(TaskTypeId::new(0)).busy(), 1);
    }

    #[test]
    fn scale_down_mid_run_is_graceful() {
        let mut c = Cluster::new(Ensemble::msd(), instant_config(9));
        c.set_consumers(&[3, 3, 3, 3]);
        for _ in 0..30 {
            c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        }
        c.run_until(SimTime::from_secs(5));
        c.set_consumers(&[0, 0, 0, 0]);
        c.run_until(SimTime::from_secs(120));
        // All pools wound down; in-flight work at the instant of scale-down
        // completed, nothing new started.
        for j in 0..4 {
            assert_eq!(c.pool(TaskTypeId::new(j)).active(), 0);
        }
        // The workflow queue still holds the rest of the work.
        assert!(c.total_wip() > 0);
        let snapshot = c.wip();
        c.run_until(SimTime::from_secs(600));
        assert_eq!(c.wip(), snapshot, "no progress with zero consumers");
    }

    #[test]
    fn force_consumers_skips_startup() {
        let mut c = msd_cluster(10); // 5-10 s startup normally
        c.force_consumers(&[2, 2, 2, 2]);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        c.run_until(SimTime::from_millis(1));
        assert_eq!(c.pool(TaskTypeId::new(0)).active(), 2);
        assert_eq!(c.pool(TaskTypeId::new(0)).busy(), 1);
    }

    #[test]
    fn submitted_counters_track_types() {
        let mut c = msd_cluster(11);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(1));
        c.submit(SimTime::ZERO, WorkflowTypeId::new(1));
        c.submit(SimTime::ZERO, WorkflowTypeId::new(2));
        c.run_until(SimTime::from_secs(1));
        assert_eq!(c.workflows_submitted(), &[0, 2, 1]);
    }

    #[test]
    fn node_outage_kills_idle_consumers_and_replaces_them() {
        // One node hosting everything, failing roughly every sim-hour: idle
        // consumers die in the outage and replacements are scheduled.
        let cfg = instant_config(21).with_node_model(1, 1.0);
        let mut c = Cluster::new(Ensemble::msd(), cfg);
        c.set_consumers(&[2, 2, 2, 2]);
        c.run_until(SimTime::from_secs(8 * 3600));
        assert!(c.node_outages() > 0, "an outage should have fired");
        assert!(
            c.consumer_failures() >= c.node_outages(),
            "each outage kills the idle consumers it finds"
        );
        // Replacements keep the pools at their targets.
        for j in 0..4 {
            assert_eq!(c.pool(TaskTypeId::new(j)).effective_target(), 2);
        }
    }

    #[test]
    fn node_outage_interrupts_inflight_work_correlated() {
        // A saturated single-node cluster: requests in flight when the node
        // dies are redelivered, so all submitted workflows still complete.
        let cfg = instant_config(22).with_node_model(1, 6.0);
        let mut c = Cluster::new(Ensemble::msd(), cfg);
        c.set_consumers(&[3, 3, 3, 3]);
        for s in 0..40 {
            c.submit(
                SimTime::from_secs(s * 30),
                WorkflowTypeId::new((s % 3) as usize),
            );
        }
        c.run_until(SimTime::from_secs(4 * 3600));
        assert!(c.node_outages() > 0);
        assert_eq!(c.drain_completions().len(), 40, "redelivery loses no work");
        assert_eq!(c.workflows_in_flight(), 0);
    }

    #[test]
    fn stragglers_inflate_response_times() {
        let run = |cfg: SimConfig| {
            let mut c = Cluster::new(Ensemble::msd(), cfg);
            c.set_consumers(&[1, 1, 1, 1]);
            for s in 0..30 {
                c.submit(SimTime::from_secs(s * 60), WorkflowTypeId::new(0));
            }
            c.run_until(SimTime::from_secs(3600));
            let done = c.drain_completions();
            assert_eq!(done.len(), 30);
            done.iter()
                .map(CompletionRecord::response_secs)
                .sum::<f64>()
        };
        let healthy = run(instant_config(23));
        let straggly = run(instant_config(23).with_stragglers(0.3, 10.0));
        assert!(
            straggly > healthy * 1.5,
            "stragglers must visibly inflate total response time \
             (healthy {healthy:.1}s vs straggly {straggly:.1}s)"
        );
    }

    #[test]
    fn node_speeds_scale_service_deterministically() {
        let run = |cfg: SimConfig| {
            let mut c = Cluster::new(Ensemble::msd(), cfg);
            c.set_consumers(&[1, 1, 1, 1]);
            for s in 0..30 {
                c.submit(SimTime::from_secs(s * 60), WorkflowTypeId::new(0));
            }
            c.run_until(SimTime::from_secs(3600));
            let done = c.drain_completions();
            assert_eq!(done.len(), 30);
            done.iter()
                .map(CompletionRecord::response_secs)
                .sum::<f64>()
        };
        let nominal = run(instant_config(25));
        let fast = run(instant_config(25).with_node_speeds(vec![4.0]));
        let slow = run(instant_config(25).with_node_speeds(vec![0.5]));
        // The speed factor divides each sampled service time after the
        // draw, so the RNG stream is unchanged and — with no queueing at
        // this arrival spacing — total response scales (near) exactly.
        assert!(
            (fast * 4.0 - nominal).abs() / nominal < 1e-3,
            "4x node: {fast:.2}s vs nominal {nominal:.2}s"
        );
        assert!(
            (slow * 0.5 - nominal).abs() / nominal < 1e-3,
            "0.5x node: {slow:.2}s vs nominal {nominal:.2}s"
        );
    }

    #[test]
    #[should_panic(expected = "node_speed_factors must have one entry per node")]
    fn mismatched_node_speed_len_panics() {
        let mut cfg = instant_config(26);
        cfg.node_speed_factors = vec![1.0, 2.0]; // node_count is still 1
        let _ = Cluster::new(Ensemble::msd(), cfg);
    }

    #[test]
    fn delivery_delay_spikes_defer_but_do_not_lose_work() {
        let cfg = instant_config(24).with_delivery_delay_spikes(1.0, SimTime::from_secs(60));
        let mut c = Cluster::new(Ensemble::msd(), cfg);
        c.set_consumers(&[2, 2, 2, 2]);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(0));
        // With every delivery delayed, nothing can be in the queue at t=1ms.
        c.run_until(SimTime::from_millis(1));
        assert_eq!(c.total_wip(), 0, "delivery is still in flight");
        c.run_until(SimTime::from_secs(600));
        assert_eq!(c.drain_completions().len(), 1);
    }

    #[test]
    fn fault_features_off_leave_trajectory_unchanged() {
        // Explicitly-disabled fault features must not perturb the RNG
        // stream: the trajectory matches a default-config run exactly.
        let run = |cfg: SimConfig| {
            let mut c = Cluster::new(Ensemble::msd(), cfg);
            c.set_consumers(&[4, 4, 4, 2]);
            for s in 0..30 {
                c.submit(
                    SimTime::from_secs(s * 3),
                    WorkflowTypeId::new((s % 3) as usize),
                );
            }
            c.run_until(SimTime::from_secs(500));
            let responses: Vec<u64> = c
                .drain_completions()
                .iter()
                .map(|r| (r.completion - r.arrival).as_micros())
                .collect();
            (c.wip(), responses)
        };
        let base = run(SimConfig::new(31));
        let gated = run(SimConfig::new(31)
            .with_stragglers(0.0, 5.0)
            .with_delivery_delay_spikes(0.0, SimTime::ZERO)
            .with_node_model(3, 0.0));
        assert_eq!(base, gated);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let drive = |c: &mut Cluster, from: u64, to: u64| {
            for s in from..to {
                c.submit(
                    SimTime::from_secs(s * 7),
                    WorkflowTypeId::new((s % 3) as usize),
                );
            }
            c.run_until(SimTime::from_secs(to * 7));
        };
        let cfg = SimConfig::new(55)
            .with_failure_rate(20.0)
            .with_node_model(2, 2.0)
            .with_stragglers(0.1, 5.0)
            .with_delivery_delay_spikes(0.2, SimTime::from_secs(3));
        let mut original = Cluster::new(Ensemble::msd(), cfg);
        original.set_consumers(&[3, 3, 3, 3]);
        drive(&mut original, 0, 40);

        // Round-trip the snapshot through JSON, as a checkpoint file would.
        let json = serde_json::to_string(&original.snapshot()).unwrap();
        let snap: ClusterSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = Cluster::from_snapshot(Ensemble::msd(), snap);

        drive(&mut original, 40, 120);
        drive(&mut restored, 40, 120);
        assert_eq!(original.snapshot(), restored.snapshot());
        assert_eq!(original.drain_completions(), restored.drain_completions());
    }

    #[test]
    #[should_panic(expected = "different task-type count")]
    fn snapshot_restore_rejects_wrong_ensemble() {
        let c = Cluster::new(Ensemble::msd(), SimConfig::new(1));
        let snap = c.snapshot();
        let _ = Cluster::from_snapshot(Ensemble::ligo(), snap);
    }

    #[test]
    #[should_panic(expected = "unknown workflow type")]
    fn submit_unknown_type_panics() {
        let mut c = msd_cluster(12);
        c.submit(SimTime::ZERO, WorkflowTypeId::new(9));
    }

    #[test]
    #[should_panic(expected = "one consumer target per task type")]
    fn wrong_target_len_panics() {
        let mut c = msd_cluster(13);
        c.set_consumers(&[1, 2]);
    }
}
