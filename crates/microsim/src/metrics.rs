//! Per-window observations produced by the environment.

use serde::{Deserialize, Serialize};

/// Everything observed during one decision window `(T_k, T_{k+1})`.
///
/// The RL agent only consumes `wip` (the state) and `reward`; the remaining
/// fields feed the paper's evaluation figures (response-time comparisons,
/// constraint-violation counts for the exploration ablation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowMetrics {
    /// Zero-based index `k` of the window since environment construction.
    pub window_index: usize,
    /// Work-in-progress per task type observed at the window's end —
    /// the paper's state `w(k+1)`.
    pub wip: Vec<usize>,
    /// The paper's reward `r = 1 − Σ_j w_j` for this window.
    pub reward: f64,
    /// The consumer allocation actually applied this window (after any
    /// budget clamping).
    pub action_applied: Vec<usize>,
    /// True when the requested action exceeded the consumer budget and had
    /// to be clamped.
    pub constraint_violated: bool,
    /// Workflow requests that arrived during the window, per workflow type.
    pub arrivals: Vec<usize>,
    /// Workflow requests that completed during the window, per workflow type.
    pub completions: Vec<usize>,
    /// Mean end-to-end response time (seconds) of the requests that
    /// completed during the window, per workflow type; `None` when no
    /// request of that type completed.
    pub mean_response_secs: Vec<Option<f64>>,
}

impl WindowMetrics {
    /// Total WIP at the end of the window.
    #[must_use]
    pub fn total_wip(&self) -> usize {
        self.wip.iter().sum()
    }

    /// Mean response time over all workflow types that completed requests in
    /// this window, weighted by completion counts. `None` if nothing
    /// completed.
    ///
    /// `completions` and `mean_response_secs` must have one entry per
    /// workflow type each; a length mismatch would silently drop the excess
    /// types from the weighted mean, so it is rejected in debug builds (and
    /// flagged by the [`crate::SimAuditor`] when auditing is enabled).
    #[must_use]
    pub fn overall_mean_response_secs(&self) -> Option<f64> {
        debug_assert_eq!(
            self.completions.len(),
            self.mean_response_secs.len(),
            "completions and mean_response_secs must cover the same workflow types"
        );
        let mut total = 0.0;
        let mut count = 0usize;
        for (c, r) in self.completions.iter().zip(&self.mean_response_secs) {
            if let Some(r) = r {
                total += r * *c as f64;
                count += c;
            }
        }
        (count > 0).then(|| total / count as f64)
    }
}

/// Response-time distribution summary over a set of completed workflows.
///
/// # Examples
///
/// ```
/// use microsim::LatencySummary;
///
/// let latencies: Vec<f64> = (1..=100).map(f64::from).collect();
/// let s = LatencySummary::from_secs(&latencies).unwrap();
/// assert_eq!(s.count, 100);
/// assert!((s.p50 - 50.0).abs() <= 1.0);
/// assert!((s.p99 - 99.0).abs() <= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of (finite) samples summarised.
    pub count: usize,
    /// Number of non-finite samples (NaN or infinite) dropped from the
    /// input before summarising.
    #[serde(default)]
    pub dropped_non_finite: usize,
    /// Arithmetic mean (seconds).
    pub mean: f64,
    /// Minimum (seconds).
    pub min: f64,
    /// Median (seconds).
    pub p50: f64,
    /// 95th percentile (seconds).
    pub p95: f64,
    /// 99th percentile (seconds).
    pub p99: f64,
    /// Maximum (seconds).
    pub max: f64,
}

impl LatencySummary {
    /// Summarises response times in seconds; `None` when no finite samples
    /// are present.
    ///
    /// Non-finite samples (NaN or infinite) are dropped rather than
    /// panicking; the number dropped is reported in
    /// [`dropped_non_finite`](Self::dropped_non_finite). Percentiles use the
    /// nearest-rank method over `count - 1` intervals, so at tiny sample
    /// counts high percentiles collapse to the maximum (e.g. `p99` of two
    /// samples is the larger one).
    #[must_use]
    pub fn from_secs(latencies: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = latencies
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .collect();
        let dropped_non_finite = latencies.len() - sorted.len();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let nearest = |p: f64| {
            let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
            sorted[rank]
        };
        Some(LatencySummary {
            count: sorted.len(),
            dropped_non_finite,
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: nearest(50.0),
            p95: nearest(95.0),
            p99: nearest(99.0),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Summarises a batch of completion records.
    #[must_use]
    pub fn from_completions(records: &[crate::CompletionRecord]) -> Option<Self> {
        let secs: Vec<f64> = records
            .iter()
            .map(crate::CompletionRecord::response_secs)
            .collect();
        LatencySummary::from_secs(&secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WindowMetrics {
        WindowMetrics {
            window_index: 3,
            wip: vec![2, 0, 5],
            reward: 1.0 - 7.0,
            action_applied: vec![1, 1, 2],
            constraint_violated: false,
            arrivals: vec![1, 0],
            completions: vec![2, 3],
            mean_response_secs: vec![Some(10.0), Some(20.0)],
        }
    }

    #[test]
    fn total_wip_sums() {
        assert_eq!(sample().total_wip(), 7);
    }

    #[test]
    fn overall_mean_weights_by_completions() {
        let m = sample();
        let expected = (10.0 * 2.0 + 20.0 * 3.0) / 5.0;
        assert!((m.overall_mean_response_secs().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn overall_mean_none_when_no_completions() {
        let mut m = sample();
        m.completions = vec![0, 0];
        m.mean_response_secs = vec![None, None];
        assert_eq!(m.overall_mean_response_secs(), None);
    }

    #[test]
    fn latency_summary_percentiles() {
        let lat: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect();
        let s = LatencySummary::from_secs(&lat).unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 0.0);
        assert!((s.p50 - 50.0).abs() < 0.2);
        assert!((s.p95 - 94.9).abs() < 0.2);
        assert!((s.max - 99.9).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_empty_is_none() {
        assert!(LatencySummary::from_secs(&[]).is_none());
    }

    #[test]
    fn latency_summary_single_sample() {
        let s = LatencySummary::from_secs(&[7.0]).unwrap();
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.mean, 7.0);
    }

    /// Regression: a length mismatch between `completions` and
    /// `mean_response_secs` used to be silently truncated by `zip`, dropping
    /// workflow types from the weighted mean.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "same workflow types")]
    fn overall_mean_rejects_mismatched_lengths() {
        let mut m = sample();
        m.mean_response_secs.pop();
        let _ = m.overall_mean_response_secs();
    }

    /// Regression: `from_secs` used to panic (`expect` inside `sort_by`) on
    /// any NaN sample. It now drops non-finite samples and reports the count.
    #[test]
    fn latency_summary_drops_non_finite() {
        let s =
            LatencySummary::from_secs(&[3.0, f64::NAN, 1.0, f64::INFINITY, 2.0, f64::NEG_INFINITY])
                .unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.dropped_non_finite, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn latency_summary_all_non_finite_is_none() {
        assert!(LatencySummary::from_secs(&[f64::NAN, f64::INFINITY]).is_none());
    }

    /// Nearest-rank behaviour at tiny sample counts: with two samples the
    /// only ranks are 0 and 1, so `p99` (rank round(0.99) = 1) is the max
    /// and `p50` (rank round(0.5) = 1) rounds up to the max as well.
    #[test]
    fn latency_summary_percentiles_of_two_samples() {
        let s = LatencySummary::from_secs(&[10.0, 20.0]).unwrap();
        assert_eq!(s.p99, 20.0);
        assert_eq!(s.p95, 20.0);
        assert_eq!(s.p50, 20.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.mean, 15.0);
    }

    #[test]
    fn latency_summary_deserialises_without_dropped_field() {
        let json = r#"{"count":1,"mean":1.0,"min":1.0,"p50":1.0,"p95":1.0,"p99":1.0,"max":1.0}"#;
        let s: LatencySummary = serde_json::from_str(json).unwrap();
        assert_eq!(s.dropped_non_finite, 0);
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: WindowMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
