//! Configuration for the emulated cluster and the RL-facing environment.

use desim::SimTime;
use workflow::Ensemble;

/// Low-level emulator parameters.
///
/// Defaults follow the paper's measurements: Kubernetes takes 5–10 s to
/// start/stop a container (§VI-A2), so scaling a consumer pool up incurs a
/// uniformly distributed start-up delay per consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Minimum container start-up delay.
    pub startup_min: SimTime,
    /// Maximum container start-up delay.
    pub startup_max: SimTime,
    /// Seed for the emulator's service-time and start-up RNG.
    pub seed: u64,
    /// Mean consumer failures per consumer-hour of busy time (0 disables
    /// failure injection). A failing consumer crashes mid-request; the
    /// request is redelivered to the front of its queue (the paper's
    /// RabbitMQ acknowledgement mechanism guarantees at-least-once
    /// processing) and the orchestrator starts a replacement container
    /// (Kubernetes Replication Controller behaviour, §V).
    pub failure_rate_per_hour: f64,
    /// Total CPU cores shared by all consumers, modelling the paper's
    /// 3-node × 1-vCPU testbed where up to 14 containers contend for 3
    /// cores. `None` (default) disables contention: every consumer runs at
    /// full speed. With `Some(cores)`, a task dispatched while `b` consumers
    /// are busy cluster-wide runs at `max(1, b / cores)` times its nominal
    /// service time (processor sharing approximated at dispatch time).
    pub total_cores: Option<f64>,
}

impl SimConfig {
    /// Paper-faithful defaults: start-up delay uniform in [5 s, 10 s].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimConfig {
            startup_min: SimTime::from_secs(5),
            startup_max: SimTime::from_secs(10),
            seed,
            failure_rate_per_hour: 0.0,
            total_cores: None,
        }
    }

    /// Enables CPU-contention modelling with the given cluster-wide core
    /// count (the paper's testbed: 3).
    ///
    /// # Panics
    ///
    /// Panics unless `cores` is positive and finite.
    #[must_use]
    pub fn with_total_cores(mut self, cores: f64) -> Self {
        assert!(
            cores.is_finite() && cores > 0.0,
            "core count must be positive"
        );
        self.total_cores = Some(cores);
        self
    }

    /// Enables consumer-failure injection at the given mean rate
    /// (failures per consumer-hour of busy time).
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or non-finite.
    #[must_use]
    pub fn with_failure_rate(mut self, per_hour: f64) -> Self {
        assert!(
            per_hour.is_finite() && per_hour >= 0.0,
            "failure rate must be non-negative"
        );
        self.failure_rate_per_hour = per_hour;
        self
    }

    /// Overrides the container start-up delay range.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn with_startup_delay(mut self, min: SimTime, max: SimTime) -> Self {
        assert!(min <= max, "startup delay range inverted");
        self.startup_min = min;
        self.startup_max = max;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(0)
    }
}

/// Configuration of the windowed RL environment wrapped around a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvConfig {
    /// Length of one decision window (paper: 30 s).
    pub window: SimTime,
    /// Total-consumer constraint `C` (paper: 14 for MSD, 30 for LIGO).
    pub consumer_budget: usize,
    /// Background Poisson arrival rate (requests/s) per workflow type.
    pub arrival_rates: Vec<f64>,
    /// Emulator parameters.
    pub sim: SimConfig,
    /// When true (default), actions whose consumer total exceeds the budget
    /// are scaled down proportionally instead of rejected; the violation is
    /// recorded in the step's [`WindowMetrics`](crate::WindowMetrics).
    pub clamp_actions: bool,
    /// Capacity multiple used during [`reset`](crate::MicroserviceEnv::reset)
    /// ("provision sufficient consumers of each microservice to reduce WIP
    /// close to 0", §VI-A3).
    pub reset_capacity_factor: usize,
    /// Maximum number of windows a reset may run before giving up.
    pub reset_max_windows: usize,
    /// Reset finishes once total WIP is at or below this threshold.
    pub reset_wip_threshold: usize,
}

impl EnvConfig {
    /// Paper-faithful configuration for `ensemble`: 30 s windows, the
    /// ensemble's default consumer budget and background arrival rates.
    #[must_use]
    pub fn for_ensemble(ensemble: &Ensemble) -> Self {
        EnvConfig {
            window: SimTime::from_secs(30),
            consumer_budget: ensemble.default_consumer_budget(),
            arrival_rates: ensemble.default_arrival_rates().to_vec(),
            sim: SimConfig::default(),
            clamp_actions: true,
            reset_capacity_factor: 5,
            reset_max_windows: 40,
            reset_wip_threshold: 0,
        }
    }

    /// Sets the RNG seed (service times, start-up delays, and arrivals all
    /// derive from it).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Sets the decision-window length (the paper compares 5 s / 15 s / 30 s).
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    #[must_use]
    pub fn with_window(mut self, window: SimTime) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        self.window = window;
        self
    }

    /// Sets the total-consumer constraint `C`.
    #[must_use]
    pub fn with_consumer_budget(mut self, budget: usize) -> Self {
        self.consumer_budget = budget;
        self
    }

    /// Sets the background arrival rates (requests/s per workflow type).
    #[must_use]
    pub fn with_arrival_rates(mut self, rates: Vec<f64>) -> Self {
        self.arrival_rates = rates;
        self
    }

    /// Disables proportional clamping: over-budget actions panic instead.
    /// Used by the exploration ablation to count hard violations.
    #[must_use]
    pub fn with_strict_actions(mut self) -> Self {
        self.clamp_actions = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let msd = Ensemble::msd();
        let c = EnvConfig::for_ensemble(&msd);
        assert_eq!(c.window, SimTime::from_secs(30));
        assert_eq!(c.consumer_budget, 14);
        assert_eq!(c.sim.startup_min, SimTime::from_secs(5));
        assert_eq!(c.sim.startup_max, SimTime::from_secs(10));
    }

    #[test]
    fn builders_apply() {
        let msd = Ensemble::msd();
        let c = EnvConfig::for_ensemble(&msd)
            .with_seed(99)
            .with_window(SimTime::from_secs(5))
            .with_consumer_budget(20);
        assert_eq!(c.sim.seed, 99);
        assert_eq!(c.window, SimTime::from_secs(5));
        assert_eq!(c.consumer_budget, 20);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = EnvConfig::for_ensemble(&Ensemble::msd()).with_window(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "startup delay range inverted")]
    fn inverted_startup_range_panics() {
        let _ = SimConfig::new(0).with_startup_delay(SimTime::from_secs(10), SimTime::from_secs(5));
    }
}
