//! Configuration for the emulated cluster and the RL-facing environment.

use std::fmt;

use desim::{QueueKind, SimTime};
use serde::{Deserialize, Serialize};
use workflow::Ensemble;

use crate::workload::WorkloadSpec;

/// Why a configuration builder rejected a value.
///
/// One typed error across the whole config surface: every validating
/// builder on [`SimConfig`] and [`EnvConfig`] (and `MirasConfig` in
/// `miras-core`, which re-exports this type) has a `try_with_*` form
/// returning `Result<Self, ConfigError>`; the panicking `with_*` forms
/// delegate to it and panic with the error's [`Display`](fmt::Display)
/// rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A [`SimConfig`] field was rejected.
    Sim {
        /// The field that failed validation.
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: &'static str,
    },
    /// An [`EnvConfig`] field was rejected.
    Env {
        /// The field that failed validation.
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: &'static str,
    },
    /// A `MirasConfig` field was rejected.
    Miras {
        /// The field that failed validation.
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (config, field, reason) = match self {
            ConfigError::Sim { field, reason } => ("SimConfig", field, reason),
            ConfigError::Env { field, reason } => ("EnvConfig", field, reason),
            ConfigError::Miras { field, reason } => ("MirasConfig", field, reason),
        };
        write!(f, "invalid {config}.{field}: {reason}")
    }
}

impl std::error::Error for ConfigError {}

/// Low-level emulator parameters.
///
/// Defaults follow the paper's measurements: Kubernetes takes 5–10 s to
/// start/stop a container (§VI-A2), so scaling a consumer pool up incurs a
/// uniformly distributed start-up delay per consumer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Minimum container start-up delay.
    pub startup_min: SimTime,
    /// Maximum container start-up delay.
    pub startup_max: SimTime,
    /// Seed for the emulator's service-time and start-up RNG.
    pub seed: u64,
    /// Mean consumer failures per consumer-hour of busy time (0 disables
    /// failure injection). A failing consumer crashes mid-request; the
    /// request is redelivered to the front of its queue (the paper's
    /// RabbitMQ acknowledgement mechanism guarantees at-least-once
    /// processing) and the orchestrator starts a replacement container
    /// (Kubernetes Replication Controller behaviour, §V).
    pub failure_rate_per_hour: f64,
    /// Total CPU cores shared by all consumers, modelling the paper's
    /// 3-node × 1-vCPU testbed where up to 14 containers contend for 3
    /// cores. `None` (default) disables contention: every consumer runs at
    /// full speed. With `Some(cores)`, a task dispatched while `b` consumers
    /// are busy cluster-wide runs at `max(1, b / cores)` times its nominal
    /// service time (processor sharing approximated at dispatch time).
    pub total_cores: Option<f64>,
    /// Number of physical nodes consumers are spread over (consumer pool
    /// `j` lives on node `j mod node_count`). Only meaningful together with
    /// [`SimConfig::node_outage_rate_per_hour`]; see
    /// [`SimConfig::with_node_model`].
    pub node_count: usize,
    /// Mean correlated node outages per node-hour (0 disables, the
    /// default). When a node fails, *every* consumer hosted on it dies at
    /// the same instant — busy consumers crash mid-request (their requests
    /// are redelivered) and idle consumers are lost; the orchestrator
    /// starts replacements for all of them. This models the correlated
    /// mass failure a single-machine loss causes, which independent
    /// per-consumer crashes cannot.
    pub node_outage_rate_per_hour: f64,
    /// Probability that a dispatched request is a straggler (0 disables,
    /// the default).
    pub straggler_prob: f64,
    /// Service-time multiplier applied to straggler requests (≥ 1).
    pub straggler_factor: f64,
    /// Probability that a task's queue delivery is delayed (0 disables,
    /// the default) — modelling message-broker delivery latency spikes.
    pub delivery_delay_prob: f64,
    /// Maximum delivery delay; delayed deliveries are postponed by a
    /// uniform draw from `(0, delivery_delay_max]`.
    pub delivery_delay_max: SimTime,
    /// Runtime invariant auditing (default off). Debug builds always check
    /// the simulator's invariants via `debug_assert!`; setting this (or
    /// exporting `MIRAS_AUDIT=1`) keeps the checks on in release builds,
    /// where violations surface as typed
    /// [`AuditViolation`](crate::AuditViolation)s and `audit` telemetry
    /// events instead of panics. Auditing is observation-only: results are
    /// bit-identical with it on or off.
    pub audit: bool,
    /// Event-queue backend for the cluster's engine (default: the timing
    /// wheel). Both backends deliver bit-identical event sequences — see
    /// [`QueueKind`] — so this is purely a performance knob; `Heap` remains
    /// available as the differential baseline. Absent in older serialized
    /// configs, which deserialize to the wheel.
    #[serde(default)]
    pub queue: QueueKind,
    /// Per-node service-speed multipliers for a heterogeneous cluster.
    /// Empty (the default, and what older serialized configs deserialize
    /// to) means every node runs at nominal speed — bit-identical to the
    /// homogeneous behaviour. When non-empty the length must equal
    /// [`SimConfig::node_count`] (enforced by
    /// [`SimConfig::with_node_speeds`], which sets both together): a task
    /// dispatched to consumer pool `j` has its sampled service time
    /// divided by `node_speed_factors[j % node_count]`, so a factor of 2
    /// is a node twice as fast as nominal and 0.5 one half as fast.
    #[serde(default)]
    pub node_speed_factors: Vec<f64>,
}

impl SimConfig {
    /// Paper-faithful defaults: start-up delay uniform in [5 s, 10 s].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimConfig {
            startup_min: SimTime::from_secs(5),
            startup_max: SimTime::from_secs(10),
            seed,
            failure_rate_per_hour: 0.0,
            total_cores: None,
            node_count: 1,
            node_outage_rate_per_hour: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            delivery_delay_prob: 0.0,
            delivery_delay_max: SimTime::ZERO,
            audit: false,
            queue: QueueKind::default(),
            node_speed_factors: Vec::new(),
        }
    }

    /// Selects the event-queue backend (timing wheel by default; the binary
    /// heap remains available as the differential baseline). Pop order is
    /// bit-identical either way, so this never changes a trajectory.
    #[must_use]
    pub fn with_queue_kind(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Enables runtime invariant auditing: the checks debug builds run via
    /// `debug_assert!` stay on in release builds, and violations surface as
    /// typed [`AuditViolation`](crate::AuditViolation)s (collected through
    /// [`Cluster::take_audit_violations`](crate::Cluster::take_audit_violations)
    /// and mirrored as `audit` telemetry events) instead of panicking.
    #[must_use]
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Enables CPU-contention modelling with the given cluster-wide core
    /// count (the paper's testbed: 3).
    ///
    /// # Panics
    ///
    /// Panics unless `cores` is positive and finite; see
    /// [`SimConfig::try_with_total_cores`] for the non-panicking form.
    #[must_use]
    pub fn with_total_cores(self, cores: f64) -> Self {
        self.try_with_total_cores(cores)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SimConfig::with_total_cores`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Sim`] unless `cores` is positive and finite.
    pub fn try_with_total_cores(mut self, cores: f64) -> Result<Self, ConfigError> {
        if !(cores.is_finite() && cores > 0.0) {
            return Err(ConfigError::Sim {
                field: "total_cores",
                reason: "core count must be positive",
            });
        }
        self.total_cores = Some(cores);
        Ok(self)
    }

    /// Enables consumer-failure injection at the given mean rate
    /// (failures per consumer-hour of busy time).
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or non-finite; see
    /// [`SimConfig::try_with_failure_rate`] for the non-panicking form.
    #[must_use]
    pub fn with_failure_rate(self, per_hour: f64) -> Self {
        self.try_with_failure_rate(per_hour)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SimConfig::with_failure_rate`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Sim`] if the rate is negative or non-finite.
    pub fn try_with_failure_rate(mut self, per_hour: f64) -> Result<Self, ConfigError> {
        if !(per_hour.is_finite() && per_hour >= 0.0) {
            return Err(ConfigError::Sim {
                field: "failure_rate_per_hour",
                reason: "failure rate must be non-negative",
            });
        }
        self.failure_rate_per_hour = per_hour;
        Ok(self)
    }

    /// Overrides the container start-up delay range.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`; see [`SimConfig::try_with_startup_delay`] for
    /// the non-panicking form.
    #[must_use]
    pub fn with_startup_delay(self, min: SimTime, max: SimTime) -> Self {
        self.try_with_startup_delay(min, max)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SimConfig::with_startup_delay`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Sim`] if `min > max`.
    pub fn try_with_startup_delay(
        mut self,
        min: SimTime,
        max: SimTime,
    ) -> Result<Self, ConfigError> {
        if min > max {
            return Err(ConfigError::Sim {
                field: "startup_min/startup_max",
                reason: "startup delay range inverted",
            });
        }
        self.startup_min = min;
        self.startup_max = max;
        Ok(self)
    }

    /// Enables correlated node outages: consumers are spread round-robin
    /// over `nodes` physical nodes (pool `j` lives on node `j mod nodes`)
    /// and each node fails independently at mean rate `outages_per_hour`
    /// per node-hour. A failing node takes down *all* its consumers at the
    /// same instant; see [`SimConfig::node_outage_rate_per_hour`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the rate is negative or non-finite; see
    /// [`SimConfig::try_with_node_model`] for the non-panicking form.
    #[must_use]
    pub fn with_node_model(self, nodes: usize, outages_per_hour: f64) -> Self {
        self.try_with_node_model(nodes, outages_per_hour)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SimConfig::with_node_model`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Sim`] if `nodes` is zero or the rate is negative or
    /// non-finite.
    pub fn try_with_node_model(
        mut self,
        nodes: usize,
        outages_per_hour: f64,
    ) -> Result<Self, ConfigError> {
        if nodes == 0 {
            return Err(ConfigError::Sim {
                field: "node_count",
                reason: "node count must be positive",
            });
        }
        if !(outages_per_hour.is_finite() && outages_per_hour >= 0.0) {
            return Err(ConfigError::Sim {
                field: "node_outage_rate_per_hour",
                reason: "node outage rate must be non-negative",
            });
        }
        self.node_count = nodes;
        self.node_outage_rate_per_hour = outages_per_hour;
        Ok(self)
    }

    /// Enables straggler injection: each dispatched request independently
    /// becomes a straggler with probability `prob`, running `factor` times
    /// its nominal service time.
    ///
    /// # Panics
    ///
    /// Panics unless `prob` is a probability in `[0, 1]` and `factor` is
    /// finite and at least 1; see [`SimConfig::try_with_stragglers`] for the
    /// non-panicking form.
    #[must_use]
    pub fn with_stragglers(self, prob: f64, factor: f64) -> Self {
        self.try_with_stragglers(prob, factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SimConfig::with_stragglers`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Sim`] unless `prob` is a probability in `[0, 1]` and
    /// `factor` is finite and at least 1.
    pub fn try_with_stragglers(mut self, prob: f64, factor: f64) -> Result<Self, ConfigError> {
        if !(prob.is_finite() && (0.0..=1.0).contains(&prob)) {
            return Err(ConfigError::Sim {
                field: "straggler_prob",
                reason: "straggler probability must be in [0, 1]",
            });
        }
        if !(factor.is_finite() && factor >= 1.0) {
            return Err(ConfigError::Sim {
                field: "straggler_factor",
                reason: "straggler factor must be finite and at least 1",
            });
        }
        self.straggler_prob = prob;
        self.straggler_factor = factor;
        Ok(self)
    }

    /// Enables queue-delivery delay spikes: each task delivery is delayed
    /// with probability `prob` by a uniform draw from `(0, max]`, modelling
    /// message-broker latency spikes.
    ///
    /// # Panics
    ///
    /// Panics unless `prob` is a probability in `[0, 1]`, or if `prob` is
    /// positive while `max` is zero (a delay spike of zero length is a
    /// configuration error, not a feature); see
    /// [`SimConfig::try_with_delivery_delay_spikes`] for the non-panicking
    /// form.
    #[must_use]
    pub fn with_delivery_delay_spikes(self, prob: f64, max: SimTime) -> Self {
        self.try_with_delivery_delay_spikes(prob, max)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SimConfig::with_delivery_delay_spikes`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Sim`] unless `prob` is a probability in `[0, 1]` and
    /// `max` is positive whenever `prob` is.
    pub fn try_with_delivery_delay_spikes(
        mut self,
        prob: f64,
        max: SimTime,
    ) -> Result<Self, ConfigError> {
        if !(prob.is_finite() && (0.0..=1.0).contains(&prob)) {
            return Err(ConfigError::Sim {
                field: "delivery_delay_prob",
                reason: "delivery delay probability must be in [0, 1]",
            });
        }
        if prob != 0.0 && max.is_zero() {
            return Err(ConfigError::Sim {
                field: "delivery_delay_max",
                reason: "delivery delay max must be positive when spikes are enabled",
            });
        }
        self.delivery_delay_prob = prob;
        self.delivery_delay_max = max;
        Ok(self)
    }

    /// Makes the cluster heterogeneous: one service-speed multiplier per
    /// physical node (so this also sets [`SimConfig::node_count`] to
    /// `speeds.len()`). A task dispatched to pool `j` runs at
    /// `1 / speeds[j % node_count]` times its sampled service time. Pass an
    /// empty vector to return to the homogeneous default.
    ///
    /// # Panics
    ///
    /// Panics unless every factor is finite and strictly positive; see
    /// [`SimConfig::try_with_node_speeds`] for the non-panicking form.
    #[must_use]
    pub fn with_node_speeds(self, speeds: Vec<f64>) -> Self {
        self.try_with_node_speeds(speeds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SimConfig::with_node_speeds`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Sim`] unless every factor is finite and strictly
    /// positive.
    pub fn try_with_node_speeds(mut self, speeds: Vec<f64>) -> Result<Self, ConfigError> {
        if !speeds.iter().all(|s| s.is_finite() && *s > 0.0) {
            return Err(ConfigError::Sim {
                field: "node_speed_factors",
                reason: "node speed factors must be finite and strictly positive",
            });
        }
        if !speeds.is_empty() {
            self.node_count = speeds.len();
        }
        self.node_speed_factors = speeds;
        Ok(self)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(0)
    }
}

/// Configuration of the windowed RL environment wrapped around a cluster.
///
/// Constructed with [`EnvConfig::for_ensemble`] and customised through the
/// `with_*` builder methods; fields are crate-private so every knob goes
/// through one audited, validating surface. Read access goes through the
/// same-named getters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Length of one decision window (paper: 30 s).
    pub(crate) window: SimTime,
    /// Total-consumer constraint `C` (paper: 14 for MSD, 30 for LIGO).
    pub(crate) consumer_budget: usize,
    /// Background Poisson arrival rate (requests/s) per workflow type.
    pub(crate) arrival_rates: Vec<f64>,
    /// Emulator parameters.
    pub(crate) sim: SimConfig,
    /// When true (default), actions whose consumer total exceeds the budget
    /// are scaled down proportionally instead of rejected; the violation is
    /// recorded in the step's [`WindowMetrics`](crate::WindowMetrics).
    pub(crate) clamp_actions: bool,
    /// Capacity multiple used during [`reset`](crate::MicroserviceEnv::reset)
    /// ("provision sufficient consumers of each microservice to reduce WIP
    /// close to 0", §VI-A3).
    pub(crate) reset_capacity_factor: usize,
    /// Maximum number of windows a reset may run before giving up.
    pub(crate) reset_max_windows: usize,
    /// Reset finishes once total WIP is at or below this threshold.
    pub(crate) reset_wip_threshold: usize,
    /// How the background arrival rates evolve over the run (the workload
    /// scenario zoo). Defaults to [`WorkloadSpec::Stationary`], which is
    /// bit-identical to the pre-workload arrival stream; configs recorded
    /// before the field existed deserialize to it.
    #[serde(default)]
    pub(crate) workload: WorkloadSpec,
}

impl EnvConfig {
    /// Paper-faithful configuration for `ensemble`: 30 s windows, the
    /// ensemble's default consumer budget and background arrival rates.
    #[must_use]
    pub fn for_ensemble(ensemble: &Ensemble) -> Self {
        EnvConfig {
            window: SimTime::from_secs(30),
            consumer_budget: ensemble.default_consumer_budget(),
            arrival_rates: ensemble.default_arrival_rates().to_vec(),
            sim: SimConfig::default(),
            clamp_actions: true,
            reset_capacity_factor: 5,
            reset_max_windows: 40,
            reset_wip_threshold: 0,
            workload: WorkloadSpec::Stationary,
        }
    }

    /// Sets the RNG seed (service times, start-up delays, and arrivals all
    /// derive from it).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Sets the decision-window length (the paper compares 5 s / 15 s / 30 s).
    ///
    /// # Panics
    ///
    /// Panics if the window is zero; see [`EnvConfig::try_with_window`] for
    /// the non-panicking form.
    #[must_use]
    pub fn with_window(self, window: SimTime) -> Self {
        self.try_with_window(window)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`EnvConfig::with_window`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Env`] if the window is zero.
    pub fn try_with_window(mut self, window: SimTime) -> Result<Self, ConfigError> {
        if window.is_zero() {
            return Err(ConfigError::Env {
                field: "window",
                reason: "window must be positive",
            });
        }
        self.window = window;
        Ok(self)
    }

    /// Sets the total-consumer constraint `C`.
    #[must_use]
    pub fn with_consumer_budget(mut self, budget: usize) -> Self {
        self.consumer_budget = budget;
        self
    }

    /// Sets the background arrival rates (requests/s per workflow type).
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or non-finite — a NaN rate would
    /// silently poison every Poisson arrival draw downstream. See
    /// [`EnvConfig::try_with_arrival_rates`] for the non-panicking form.
    #[must_use]
    pub fn with_arrival_rates(self, rates: Vec<f64>) -> Self {
        self.try_with_arrival_rates(rates)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`EnvConfig::with_arrival_rates`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Env`] if any rate is negative or non-finite.
    pub fn try_with_arrival_rates(mut self, rates: Vec<f64>) -> Result<Self, ConfigError> {
        if !rates.iter().all(|r| r.is_finite() && *r >= 0.0) {
            return Err(ConfigError::Env {
                field: "arrival_rates",
                reason: "arrival rates must be finite and non-negative",
            });
        }
        self.arrival_rates = rates;
        Ok(self)
    }

    /// Replaces the low-level emulator parameters wholesale. Note that
    /// [`EnvConfig::with_seed`] writes into the sim config, so apply it
    /// after this.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets whether over-budget actions are proportionally clamped (default)
    /// or rejected with a panic.
    #[must_use]
    pub fn with_clamp_actions(mut self, clamp: bool) -> Self {
        self.clamp_actions = clamp;
        self
    }

    /// Disables proportional clamping: over-budget actions panic instead.
    /// Used by the exploration ablation to count hard violations.
    #[must_use]
    pub fn with_strict_actions(self) -> Self {
        self.with_clamp_actions(false)
    }

    /// Sets the reset capacity multiple (consumers provisioned during
    /// [`reset`](crate::MicroserviceEnv::reset) are
    /// `consumer_budget * factor` per task type).
    ///
    /// # Panics
    ///
    /// Panics if the factor is zero; see
    /// [`EnvConfig::try_with_reset_capacity_factor`] for the non-panicking
    /// form.
    #[must_use]
    pub fn with_reset_capacity_factor(self, factor: usize) -> Self {
        self.try_with_reset_capacity_factor(factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`EnvConfig::with_reset_capacity_factor`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Env`] if the factor is zero.
    pub fn try_with_reset_capacity_factor(mut self, factor: usize) -> Result<Self, ConfigError> {
        if factor == 0 {
            return Err(ConfigError::Env {
                field: "reset_capacity_factor",
                reason: "reset capacity factor must be positive",
            });
        }
        self.reset_capacity_factor = factor;
        Ok(self)
    }

    /// Sets the maximum number of windows a reset may run before giving up.
    #[must_use]
    pub fn with_reset_max_windows(mut self, windows: usize) -> Self {
        self.reset_max_windows = windows;
        self
    }

    /// Sets the total-WIP threshold at which a reset is considered done.
    #[must_use]
    pub fn with_reset_wip_threshold(mut self, threshold: usize) -> Self {
        self.reset_wip_threshold = threshold;
        self
    }

    /// Selects the workload scenario modulating the background arrival
    /// rates (see [`WorkloadSpec`]).
    ///
    /// # Panics
    ///
    /// Panics if the spec's shape parameters are out of range; see
    /// [`EnvConfig::try_with_workload`] for the non-panicking form.
    #[must_use]
    pub fn with_workload(self, workload: WorkloadSpec) -> Self {
        self.try_with_workload(workload)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`EnvConfig::with_workload`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Env`] if the spec fails [`WorkloadSpec::validate`].
    pub fn try_with_workload(mut self, workload: WorkloadSpec) -> Result<Self, ConfigError> {
        workload.validate()?;
        self.workload = workload;
        Ok(self)
    }

    /// The decision-window length.
    #[must_use]
    pub fn window(&self) -> SimTime {
        self.window
    }

    /// The total-consumer constraint `C`.
    #[must_use]
    pub fn consumer_budget(&self) -> usize {
        self.consumer_budget
    }

    /// Background Poisson arrival rates (requests/s per workflow type).
    #[must_use]
    pub fn arrival_rates(&self) -> &[f64] {
        &self.arrival_rates
    }

    /// The low-level emulator parameters.
    #[must_use]
    pub fn sim(&self) -> &SimConfig {
        &self.sim
    }

    /// Whether over-budget actions are proportionally clamped.
    #[must_use]
    pub fn clamp_actions(&self) -> bool {
        self.clamp_actions
    }

    /// Capacity multiple used during reset.
    #[must_use]
    pub fn reset_capacity_factor(&self) -> usize {
        self.reset_capacity_factor
    }

    /// Maximum number of windows a reset may run.
    #[must_use]
    pub fn reset_max_windows(&self) -> usize {
        self.reset_max_windows
    }

    /// Total-WIP threshold at which a reset finishes.
    #[must_use]
    pub fn reset_wip_threshold(&self) -> usize {
        self.reset_wip_threshold
    }

    /// The workload scenario modulating the background arrival rates.
    #[must_use]
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let msd = Ensemble::msd();
        let c = EnvConfig::for_ensemble(&msd);
        assert_eq!(c.window, SimTime::from_secs(30));
        assert_eq!(c.consumer_budget, 14);
        assert_eq!(c.sim.startup_min, SimTime::from_secs(5));
        assert_eq!(c.sim.startup_max, SimTime::from_secs(10));
    }

    #[test]
    fn builders_apply() {
        let msd = Ensemble::msd();
        let c = EnvConfig::for_ensemble(&msd)
            .with_seed(99)
            .with_window(SimTime::from_secs(5))
            .with_consumer_budget(20);
        assert_eq!(c.sim.seed, 99);
        assert_eq!(c.window, SimTime::from_secs(5));
        assert_eq!(c.consumer_budget, 20);
    }

    #[test]
    fn extended_builders_and_getters_round_trip() {
        let msd = Ensemble::msd();
        let sim = SimConfig::new(7).with_failure_rate(0.5);
        let c = EnvConfig::for_ensemble(&msd)
            .with_sim(sim.clone())
            .with_clamp_actions(false)
            .with_reset_capacity_factor(3)
            .with_reset_max_windows(12)
            .with_reset_wip_threshold(2);
        assert_eq!(c.sim(), &sim);
        assert!(!c.clamp_actions());
        assert_eq!(c.reset_capacity_factor(), 3);
        assert_eq!(c.reset_max_windows(), 12);
        assert_eq!(c.reset_wip_threshold(), 2);
        assert_eq!(c.window(), SimTime::from_secs(30));
        assert_eq!(c.consumer_budget(), 14);
        assert_eq!(c.arrival_rates().len(), 3);
        // with_seed after with_sim overrides the sim seed.
        assert_eq!(c.with_seed(9).sim().seed, 9);
    }

    #[test]
    #[should_panic(expected = "reset capacity factor must be positive")]
    fn zero_reset_capacity_factor_panics() {
        let _ = EnvConfig::for_ensemble(&Ensemble::msd()).with_reset_capacity_factor(0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = EnvConfig::for_ensemble(&Ensemble::msd()).with_window(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "startup delay range inverted")]
    fn inverted_startup_range_panics() {
        let _ = SimConfig::new(0).with_startup_delay(SimTime::from_secs(10), SimTime::from_secs(5));
    }

    #[test]
    fn fault_model_defaults_are_off() {
        let c = SimConfig::new(0);
        assert_eq!(c.node_count, 1);
        assert_eq!(c.node_outage_rate_per_hour, 0.0);
        assert_eq!(c.straggler_prob, 0.0);
        assert_eq!(c.straggler_factor, 1.0);
        assert_eq!(c.delivery_delay_prob, 0.0);
        assert!(c.delivery_delay_max.is_zero());
    }

    #[test]
    fn fault_model_builders_apply() {
        let c = SimConfig::new(0)
            .with_node_model(3, 0.2)
            .with_stragglers(0.05, 8.0)
            .with_delivery_delay_spikes(0.1, SimTime::from_secs(2));
        assert_eq!(c.node_count, 3);
        assert_eq!(c.node_outage_rate_per_hour, 0.2);
        assert_eq!(c.straggler_prob, 0.05);
        assert_eq!(c.straggler_factor, 8.0);
        assert_eq!(c.delivery_delay_prob, 0.1);
        assert_eq!(c.delivery_delay_max, SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "failure rate must be non-negative")]
    fn nan_failure_rate_panics() {
        let _ = SimConfig::new(0).with_failure_rate(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "core count must be positive")]
    fn infinite_core_count_panics() {
        let _ = SimConfig::new(0).with_total_cores(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "node count must be positive")]
    fn zero_node_count_panics() {
        let _ = SimConfig::new(0).with_node_model(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "node outage rate must be non-negative")]
    fn nan_node_outage_rate_panics() {
        let _ = SimConfig::new(0).with_node_model(3, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "straggler probability must be in [0, 1]")]
    fn straggler_prob_above_one_panics() {
        let _ = SimConfig::new(0).with_stragglers(1.5, 4.0);
    }

    #[test]
    #[should_panic(expected = "straggler factor must be finite and at least 1")]
    fn nan_straggler_factor_panics() {
        let _ = SimConfig::new(0).with_stragglers(0.1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "delivery delay probability must be in [0, 1]")]
    fn nan_delivery_delay_prob_panics() {
        let _ = SimConfig::new(0).with_delivery_delay_spikes(f64::NAN, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "delivery delay max must be positive when spikes are enabled")]
    fn zero_delivery_delay_max_panics() {
        let _ = SimConfig::new(0).with_delivery_delay_spikes(0.1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "arrival rates must be finite and non-negative")]
    fn nan_arrival_rate_panics() {
        let _ = EnvConfig::for_ensemble(&Ensemble::msd()).with_arrival_rates(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "arrival rates must be finite and non-negative")]
    fn negative_arrival_rate_panics() {
        let _ = EnvConfig::for_ensemble(&Ensemble::msd()).with_arrival_rates(vec![-0.5]);
    }

    #[test]
    fn try_builders_return_typed_errors() {
        let err = SimConfig::new(0).try_with_total_cores(0.0).err().unwrap();
        assert_eq!(
            err,
            ConfigError::Sim {
                field: "total_cores",
                reason: "core count must be positive",
            }
        );
        assert_eq!(
            err.to_string(),
            "invalid SimConfig.total_cores: core count must be positive"
        );
        let err = EnvConfig::for_ensemble(&Ensemble::msd())
            .try_with_window(SimTime::ZERO)
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ConfigError::Env {
                field: "window",
                ..
            }
        ));
        assert!(err.to_string().contains("window must be positive"));
    }

    #[test]
    fn try_builders_accept_valid_values() {
        let sim = SimConfig::new(0)
            .try_with_total_cores(3.0)
            .and_then(|c| c.try_with_failure_rate(0.5))
            .and_then(|c| c.try_with_startup_delay(SimTime::from_secs(1), SimTime::from_secs(2)))
            .and_then(|c| c.try_with_node_model(3, 0.2))
            .and_then(|c| c.try_with_stragglers(0.05, 8.0))
            .and_then(|c| c.try_with_delivery_delay_spikes(0.1, SimTime::from_secs(2)))
            .unwrap();
        assert_eq!(sim.total_cores, Some(3.0));
        assert_eq!(sim.node_count, 3);
        let env = EnvConfig::for_ensemble(&Ensemble::msd())
            .try_with_window(SimTime::from_secs(5))
            .and_then(|c| c.try_with_arrival_rates(vec![0.1, 0.2]))
            .and_then(|c| c.try_with_reset_capacity_factor(2))
            .unwrap();
        assert_eq!(env.window(), SimTime::from_secs(5));
        assert_eq!(env.arrival_rates(), &[0.1, 0.2]);
    }

    #[test]
    fn node_speeds_set_node_count_and_validate() {
        let c = SimConfig::new(0).with_node_speeds(vec![1.0, 2.0, 0.5]);
        assert_eq!(c.node_count, 3);
        assert_eq!(c.node_speed_factors, vec![1.0, 2.0, 0.5]);
        // Back to homogeneous: node_count is left alone.
        let c = c.with_node_speeds(Vec::new());
        assert_eq!(c.node_count, 3);
        assert!(c.node_speed_factors.is_empty());
        for bad in [
            vec![0.0],
            vec![1.0, -2.0],
            vec![f64::NAN],
            vec![f64::INFINITY],
        ] {
            assert!(matches!(
                SimConfig::new(0).try_with_node_speeds(bad).unwrap_err(),
                ConfigError::Sim {
                    field: "node_speed_factors",
                    ..
                }
            ));
        }
    }

    #[test]
    fn workload_builder_validates_and_defaults_stationary() {
        let msd = Ensemble::msd();
        let c = EnvConfig::for_ensemble(&msd);
        assert_eq!(c.workload(), &WorkloadSpec::Stationary);
        let c = c.with_workload(WorkloadSpec::parse("diurnal").unwrap());
        assert_eq!(c.workload().name(), "diurnal");
        let err = EnvConfig::for_ensemble(&msd)
            .try_with_workload(WorkloadSpec::Diurnal {
                period: SimTime::ZERO,
                amplitude: 0.5,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::Env {
                field: "workload.period",
                ..
            }
        ));
    }

    #[test]
    fn legacy_config_json_deserializes_with_new_defaults() {
        // A config serialized before the workload axis / heterogeneous
        // nodes existed must round-trip to the stationary, homogeneous
        // behaviour.
        use serde::value::{from_value, to_value, Value};
        let env = EnvConfig::for_ensemble(&Ensemble::msd());
        let Ok(Value::Object(mut fields)) = to_value(&env) else {
            panic!("EnvConfig serialises to an object");
        };
        fields.retain(|(k, _)| k != "workload");
        for (k, v) in &mut fields {
            if k == "sim" {
                let Value::Object(sim_fields) = v else {
                    panic!("SimConfig serialises to an object");
                };
                sim_fields.retain(|(k, _)| k != "node_speed_factors");
            }
        }
        let restored: EnvConfig = from_value::<_, serde::Error>(Value::Object(fields)).unwrap();
        assert_eq!(restored, env);
        assert_eq!(restored.workload(), &WorkloadSpec::Stationary);
        assert!(restored.sim().node_speed_factors.is_empty());
    }

    #[test]
    fn configs_serde_round_trip() {
        let sim = SimConfig::new(42)
            .with_failure_rate(0.25)
            .with_total_cores(3.0)
            .with_node_model(3, 0.2)
            .with_stragglers(0.05, 8.0)
            .with_delivery_delay_spikes(0.1, SimTime::from_secs(2))
            .with_node_speeds(vec![1.0, 2.0, 0.5]);
        let json = serde_json::to_string(&sim).unwrap();
        let restored: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, sim);

        let env = EnvConfig::for_ensemble(&Ensemble::msd())
            .with_sim(sim)
            .with_seed(7)
            .with_arrival_rates(vec![0.1, 0.2, 0.3])
            .with_workload(WorkloadSpec::parse("flash-crowd").unwrap());
        let json = serde_json::to_string(&env).unwrap();
        let restored: EnvConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, env);
    }
}
