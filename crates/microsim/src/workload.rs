//! The workload scenario zoo: deterministic, seeded generators for
//! non-stationary background traffic.
//!
//! The MIRAS paper evaluates on stationary Poisson arrivals; the roadmap's
//! north star is a system serving realistic traffic — diurnal cycles,
//! trends, flash crowds, and recorded traces. A [`WorkloadSpec`] describes
//! how the per-type base arrival rates in
//! [`EnvConfig`](crate::EnvConfig) are modulated over a run:
//! the instantaneous rate of workflow type `i` at time `t` is
//! `arrival_rates[i] × factor(t)`.
//!
//! # Determinism contract
//!
//! Every generator is a pure function of the spec (plus, for
//! [`WorkloadSpec::FlashCrowd`], its embedded `spike_seed`): the same spec
//! and the same environment seed produce bit-identical arrival streams.
//! [`WorkloadSpec::Stationary`] has `factor(t) ≡ 1.0` exactly, and the
//! environment multiplies the Poisson window mean by that factor — IEEE 754
//! guarantees `x * 1.0 == x` for finite `x`, so selecting `Stationary`
//! reproduces today's arrival stream bit-for-bit (the golden traces pin
//! this). [`WorkloadSpec::TraceReplay`] suppresses background sampling
//! entirely (factor 0, no RNG draws) and feeds arrivals through
//! [`MicroserviceEnv::inject_trace`](crate::MicroserviceEnv::inject_trace)
//! instead.
//!
//! Rather than thinning per-arrival (as `workflow::modulation` does), the
//! environment integrates the modulation analytically over each decision
//! window: the window's Poisson mean is
//! `rate × window_secs × mean_factor(window_start, window_end)`. This keeps
//! one RNG draw per (type, window) regardless of the modulation — the same
//! draw count as the stationary path — which is what makes the
//! bit-identity guarantee possible.

use desim::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::ConfigError;

/// How background arrival rates evolve over a run.
///
/// Serialized with a `kind` tag; all shapes default sensibly so specs can
/// be written compactly. `Stationary` is the serde default, so configs
/// recorded before the workload axis existed deserialize unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum WorkloadSpec {
    /// Today's behavior: a homogeneous Poisson process at the base rates.
    /// Bit-identical to the pre-workload arrival stream.
    #[default]
    Stationary,
    /// Sinusoidal modulation `1 + amplitude · sin(2πt / period)` — the
    /// classic diurnal curve. `amplitude ∈ [0, 1]` keeps the rate
    /// non-negative.
    Diurnal {
        /// Length of one full cycle.
        period: SimTime,
        /// Relative swing around the base rate (0.8 ⇒ ±80%).
        amplitude: f64,
    },
    /// A ramp from `from_factor` to `to_factor` over `[0, duration]`,
    /// constant at `to_factor` afterwards. Linear by default; with
    /// `exponential` the ramp is geometric (`from · (to/from)^(t/d)`),
    /// which requires both endpoints strictly positive.
    Trending {
        /// Multiplier at time zero.
        from_factor: f64,
        /// Multiplier at and after `duration`.
        to_factor: f64,
        /// How long the ramp lasts.
        duration: SimTime,
        /// Geometric instead of linear interpolation.
        #[serde(default)]
        exponential: bool,
    },
    /// A seeded schedule of load spikes. Spike start times are drawn from
    /// an exponential-gap process seeded by `spike_seed` (independent of
    /// the environment seed, so the same crowd hits every algorithm in a
    /// comparison). Each spike ramps linearly from 0 to `magnitude` over
    /// `rise`, then decays exponentially with time constant `decay`.
    /// Spikes superpose: `factor(t) = 1 + Σ_i spike_i(t)`.
    FlashCrowd {
        /// Seed for the spike schedule (not the arrival RNG).
        spike_seed: u64,
        /// Mean gap between spike starts.
        mean_interval: SimTime,
        /// Peak extra load of one spike, relative to the base rate.
        magnitude: f64,
        /// Linear ramp-up duration of each spike.
        rise: SimTime,
        /// Exponential decay time constant after the peak.
        decay: SimTime,
    },
    /// Replay a recorded JSONL arrival trace instead of sampling
    /// background arrivals. The trace is injected through
    /// [`MicroserviceEnv::inject_trace`](crate::MicroserviceEnv::inject_trace);
    /// background sampling is fully suppressed (factor 0, no RNG draws).
    TraceReplay {
        /// Path to the trace file (`.jsonl` one arrival per line, or the
        /// legacy `.json` array format).
        path: String,
    },
}

/// Horizon (relative to run start) out to which a flash-crowd spike
/// schedule is generated. Runs are window-stepped and far shorter than
/// this in practice; the bound just keeps schedule generation finite.
const FLASH_CROWD_HORIZON_SECS: f64 = 7.0 * 24.0 * 3600.0;

impl WorkloadSpec {
    /// Short stable name for tables, file names, and CLI round-trips.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Stationary => "stationary",
            WorkloadSpec::Diurnal { .. } => "diurnal",
            WorkloadSpec::Trending { .. } => "trending",
            WorkloadSpec::FlashCrowd { .. } => "flash-crowd",
            WorkloadSpec::TraceReplay { .. } => "trace-replay",
        }
    }

    /// Parses a CLI workload argument. Named presets cover the zoo
    /// (`stationary`, `diurnal`, `trending`, `flash-crowd`) and
    /// `trace:<path>` selects trace replay.
    ///
    /// The presets are sized for bench runs of a few dozen 30 s windows:
    /// the diurnal period and ramp duration are 600 s so a 20–25 window
    /// run sees the full shape, not a flat slice of a 24 h curve.
    #[must_use]
    pub fn parse(s: &str) -> Option<WorkloadSpec> {
        if let Some(path) = s.strip_prefix("trace:") {
            if path.is_empty() {
                return None;
            }
            return Some(WorkloadSpec::TraceReplay {
                path: path.to_string(),
            });
        }
        match s {
            "stationary" => Some(WorkloadSpec::Stationary),
            "diurnal" => Some(WorkloadSpec::Diurnal {
                period: SimTime::from_secs(600),
                amplitude: 0.8,
            }),
            "trending" => Some(WorkloadSpec::Trending {
                from_factor: 0.5,
                to_factor: 2.0,
                duration: SimTime::from_secs(600),
                exponential: false,
            }),
            "flash-crowd" | "flash_crowd" | "flashcrowd" => Some(WorkloadSpec::FlashCrowd {
                spike_seed: 7,
                mean_interval: SimTime::from_secs(300),
                magnitude: 4.0,
                rise: SimTime::from_secs(10),
                decay: SimTime::from_secs(60),
            }),
            _ => None,
        }
    }

    /// Validates the spec's parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field when a shape
    /// parameter is out of range (e.g. diurnal amplitude outside `[0, 1]`,
    /// a non-positive period, or an exponential ramp with a zero endpoint).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err =
            |field: &'static str, reason: &'static str| Err(ConfigError::Env { field, reason });
        match self {
            WorkloadSpec::Stationary => Ok(()),
            WorkloadSpec::Diurnal { period, amplitude } => {
                if period.as_micros() == 0 {
                    return err("workload.period", "must be positive");
                }
                if !amplitude.is_finite() || !(0.0..=1.0).contains(amplitude) {
                    return err("workload.amplitude", "must be in [0, 1]");
                }
                Ok(())
            }
            WorkloadSpec::Trending {
                from_factor,
                to_factor,
                duration,
                exponential,
            } => {
                if duration.as_micros() == 0 {
                    return err("workload.duration", "must be positive");
                }
                for (name, &f) in [
                    ("workload.from_factor", from_factor),
                    ("workload.to_factor", to_factor),
                ] {
                    if !f.is_finite() || f < 0.0 {
                        return err(name, "must be finite and non-negative");
                    }
                    if *exponential && f <= 0.0 {
                        return err(name, "must be strictly positive for an exponential ramp");
                    }
                }
                Ok(())
            }
            WorkloadSpec::FlashCrowd {
                mean_interval,
                magnitude,
                rise: _,
                decay,
                spike_seed: _,
            } => {
                if mean_interval.as_micros() == 0 {
                    return err("workload.mean_interval", "must be positive");
                }
                if !magnitude.is_finite() || *magnitude < 0.0 {
                    return err("workload.magnitude", "must be finite and non-negative");
                }
                if decay.as_micros() == 0 {
                    return err("workload.decay", "must be positive");
                }
                Ok(())
            }
            WorkloadSpec::TraceReplay { path } => {
                if path.is_empty() {
                    return err("workload.path", "must be non-empty");
                }
                Ok(())
            }
        }
    }

    /// Whether this spec replays a recorded trace instead of sampling
    /// background arrivals.
    #[must_use]
    pub fn is_trace_replay(&self) -> bool {
        matches!(self, WorkloadSpec::TraceReplay { .. })
    }

    /// The instantaneous rate multiplier at time `t` (time measured from
    /// the start of the run). Mostly useful for tests and plots; the
    /// environment consumes [`mean_factor`](WorkloadSpec::mean_factor).
    #[must_use]
    pub fn factor(&self, t: SimTime) -> f64 {
        let t = t.as_secs_f64();
        match self {
            WorkloadSpec::Stationary => 1.0,
            WorkloadSpec::TraceReplay { .. } => 0.0,
            WorkloadSpec::Diurnal { period, amplitude } => {
                let p = period.as_secs_f64();
                1.0 + amplitude * (std::f64::consts::TAU * t / p).sin()
            }
            WorkloadSpec::Trending {
                from_factor,
                to_factor,
                duration,
                exponential,
            } => {
                let d = duration.as_secs_f64();
                let u = (t / d).min(1.0);
                if *exponential {
                    from_factor * (to_factor / from_factor).powf(u)
                } else {
                    from_factor + (to_factor - from_factor) * u
                }
            }
            WorkloadSpec::FlashCrowd {
                magnitude,
                rise,
                decay,
                ..
            } => {
                let rise_s = rise.as_secs_f64();
                let decay_s = decay.as_secs_f64();
                let mut f = 1.0;
                for spike in self.spike_times() {
                    if t < spike {
                        break;
                    }
                    let dt = t - spike;
                    f += if dt < rise_s {
                        magnitude * dt / rise_s
                    } else {
                        magnitude * (-(dt - rise_s) / decay_s).exp()
                    };
                }
                f
            }
        }
    }

    /// The mean rate multiplier over the window `[start, end]`, i.e.
    /// `∫ factor(t) dt / (end − start)`, computed analytically per shape.
    /// The environment multiplies the window's Poisson mean by this, so
    /// the *expected* injected load matches the spec exactly — there is no
    /// per-window floor or discretization bias.
    ///
    /// `Stationary` returns exactly `1.0` and `TraceReplay` exactly `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` (debug builds).
    #[must_use]
    pub fn mean_factor(&self, start: SimTime, end: SimTime) -> f64 {
        debug_assert!(end > start, "window must have positive length");
        let (s, e) = (start.as_secs_f64(), end.as_secs_f64());
        let len = e - s;
        match self {
            WorkloadSpec::Stationary => 1.0,
            WorkloadSpec::TraceReplay { .. } => 0.0,
            WorkloadSpec::Diurnal { period, amplitude } => {
                // ∫ 1 + A·sin(2πt/P) dt = Δt + A·P/(2π)·(cos(2πs/P) − cos(2πe/P))
                let p = period.as_secs_f64();
                let w = std::f64::consts::TAU / p;
                1.0 + amplitude * ((w * s).cos() - (w * e).cos()) / (w * len)
            }
            WorkloadSpec::Trending {
                from_factor,
                to_factor,
                duration,
                exponential,
            } => {
                let d = duration.as_secs_f64();
                // Split at the ramp end: [s, min(e,d)] is on the ramp,
                // [max(s,d), e] is flat at to_factor.
                let ramp_end = e.min(d);
                let mut integral = if e > d {
                    (e - s.max(d)) * to_factor
                } else {
                    0.0
                };
                if s < d {
                    let (a, b) = (s, ramp_end);
                    integral += if *exponential {
                        let k = (to_factor / from_factor).ln();
                        if k.abs() < 1e-12 {
                            from_factor * (b - a)
                        } else {
                            from_factor * d / k * ((k * b / d).exp() - (k * a / d).exp())
                        }
                    } else {
                        // ∫ from + (to−from)·t/d dt over [a, b]
                        from_factor * (b - a)
                            + (to_factor - from_factor) * (b * b - a * a) / (2.0 * d)
                    };
                }
                integral / len
            }
            WorkloadSpec::FlashCrowd {
                magnitude,
                rise,
                decay,
                ..
            } => {
                let rise_s = rise.as_secs_f64();
                let decay_s = decay.as_secs_f64();
                let mut integral = len; // the baseline 1.0
                for spike in self.spike_times() {
                    if spike >= e {
                        break;
                    }
                    integral += magnitude * spike_integral(spike, rise_s, decay_s, s, e);
                }
                integral / len
            }
        }
    }

    /// The deterministic spike-start schedule of a [`FlashCrowd`] spec
    /// (empty for every other kind), sorted ascending.
    ///
    /// [`FlashCrowd`]: WorkloadSpec::FlashCrowd
    #[must_use]
    pub fn spike_times(&self) -> Vec<f64> {
        let WorkloadSpec::FlashCrowd {
            spike_seed,
            mean_interval,
            ..
        } = self
        else {
            return Vec::new();
        };
        let mean = mean_interval.as_secs_f64();
        let mut rng = SmallRng::seed_from_u64(*spike_seed);
        let mut times = Vec::new();
        let mut t = 0.0;
        loop {
            // Exponential gap via inverse CDF; gen_range is in [0, 1) so
            // 1 − u is in (0, 1] and the log is finite.
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -mean * (1.0 - u).ln();
            if t > FLASH_CROWD_HORIZON_SECS {
                return times;
            }
            times.push(t);
        }
    }
}

/// `∫ g(t) dt` over `[a, b]` for one unit-magnitude spike starting at
/// `spike`: linear 0→1 over `[spike, spike+rise]`, then `exp(−Δ/decay)`.
fn spike_integral(spike: f64, rise: f64, decay: f64, a: f64, b: f64) -> f64 {
    let mut integral = 0.0;
    // Rise segment ∩ [a, b]: g(t) = (t − spike)/rise.
    if rise > 0.0 {
        let lo = a.max(spike);
        let hi = b.min(spike + rise);
        if hi > lo {
            integral += ((hi - spike).powi(2) - (lo - spike).powi(2)) / (2.0 * rise);
        }
    }
    // Decay segment ∩ [a, b]: g(t) = exp(−(t − spike − rise)/decay).
    let peak = spike + rise;
    let lo = a.max(peak);
    if b > lo {
        integral += decay * ((-(lo - peak) / decay).exp() - (-(b - peak) / decay).exp());
    }
    integral
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(a: u64, b: u64) -> (SimTime, SimTime) {
        (SimTime::from_secs(a), SimTime::from_secs(b))
    }

    #[test]
    fn stationary_factor_is_exactly_one() {
        let spec = WorkloadSpec::Stationary;
        let (s, e) = win(0, 30);
        assert_eq!(spec.mean_factor(s, e), 1.0);
        assert_eq!(spec.factor(SimTime::from_secs(17)), 1.0);
        // The bit-identity contract: multiplying by the stationary factor
        // is a no-op at the bit level.
        for x in [0.3 * 30.0, 1e-9, 12345.678] {
            assert_eq!(x * spec.mean_factor(s, e), x);
        }
    }

    #[test]
    fn trace_replay_suppresses_background() {
        let spec = WorkloadSpec::TraceReplay {
            path: "t.jsonl".into(),
        };
        let (s, e) = win(0, 30);
        assert_eq!(spec.mean_factor(s, e), 0.0);
        assert!(spec.is_trace_replay());
    }

    #[test]
    fn diurnal_mean_over_full_period_is_one() {
        let spec = WorkloadSpec::Diurnal {
            period: SimTime::from_secs(600),
            amplitude: 0.8,
        };
        let (s, e) = win(0, 600);
        assert!((spec.mean_factor(s, e) - 1.0).abs() < 1e-12);
        // First half-period is above baseline, second below.
        let (s1, e1) = win(0, 300);
        let (s2, e2) = win(300, 600);
        assert!(spec.mean_factor(s1, e1) > 1.0);
        assert!(spec.mean_factor(s2, e2) < 1.0);
    }

    #[test]
    fn diurnal_mean_matches_numeric_integral() {
        let spec = WorkloadSpec::Diurnal {
            period: SimTime::from_secs(600),
            amplitude: 0.6,
        };
        let (s, e) = win(45, 75);
        let numeric: f64 = (0..30_000)
            .map(|i| spec.factor(SimTime::from_secs_f64(45.0 + (i as f64 + 0.5) * 0.001)))
            .sum::<f64>()
            / 30_000.0;
        assert!((spec.mean_factor(s, e) - numeric).abs() < 1e-6);
    }

    #[test]
    fn trending_linear_endpoints_and_mean() {
        let spec = WorkloadSpec::Trending {
            from_factor: 0.5,
            to_factor: 2.0,
            duration: SimTime::from_secs(600),
            exponential: false,
        };
        assert!((spec.factor(SimTime::from_secs(0)) - 0.5).abs() < 1e-12);
        assert!((spec.factor(SimTime::from_secs(600)) - 2.0).abs() < 1e-12);
        assert!((spec.factor(SimTime::from_secs(900)) - 2.0).abs() < 1e-12);
        // Mean over the whole ramp = midpoint of the endpoints.
        let (s, e) = win(0, 600);
        assert!((spec.mean_factor(s, e) - 1.25).abs() < 1e-12);
        // Past the ramp: constant to_factor.
        let (s, e) = win(600, 700);
        assert!((spec.mean_factor(s, e) - 2.0).abs() < 1e-12);
        // Straddling the ramp end: 570–600 averages ~1.9625, 600–630 is 2.0.
        let (s, e) = win(570, 630);
        let expected = (1.9625 * 30.0 + 2.0 * 30.0) / 60.0;
        assert!((spec.mean_factor(s, e) - expected).abs() < 1e-9);
    }

    #[test]
    fn trending_exponential_matches_numeric_integral() {
        let spec = WorkloadSpec::Trending {
            from_factor: 0.5,
            to_factor: 2.0,
            duration: SimTime::from_secs(600),
            exponential: true,
        };
        let (s, e) = win(100, 130);
        let numeric: f64 = (0..30_000)
            .map(|i| spec.factor(SimTime::from_secs_f64(100.0 + (i as f64 + 0.5) * 0.001)))
            .sum::<f64>()
            / 30_000.0;
        assert!((spec.mean_factor(s, e) - numeric).abs() < 1e-6);
    }

    #[test]
    fn flash_crowd_schedule_is_seed_deterministic() {
        let make = |seed| WorkloadSpec::FlashCrowd {
            spike_seed: seed,
            mean_interval: SimTime::from_secs(300),
            magnitude: 4.0,
            rise: SimTime::from_secs(10),
            decay: SimTime::from_secs(60),
        };
        assert_eq!(make(7).spike_times(), make(7).spike_times());
        assert_ne!(make(7).spike_times(), make(8).spike_times());
        assert!(!make(7).spike_times().is_empty());
        let times = make(7).spike_times();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
    }

    #[test]
    fn flash_crowd_mean_matches_numeric_integral() {
        let spec = WorkloadSpec::FlashCrowd {
            spike_seed: 7,
            mean_interval: SimTime::from_secs(120),
            magnitude: 3.0,
            rise: SimTime::from_secs(10),
            decay: SimTime::from_secs(40),
        };
        // A window that overlaps at least one spike for this seed.
        for (a, b) in [(0u64, 30u64), (60, 90), (120, 150), (300, 330)] {
            let (s, e) = win(a, b);
            let numeric: f64 = (0..30_000)
                .map(|i| spec.factor(SimTime::from_secs_f64(a as f64 + (i as f64 + 0.5) * 0.001)))
                .sum::<f64>()
                / 30_000.0;
            assert!(
                (spec.mean_factor(s, e) - numeric).abs() < 1e-4,
                "window [{a}, {b}]: analytic {} vs numeric {numeric}",
                spec.mean_factor(s, e)
            );
        }
    }

    #[test]
    fn parse_covers_the_zoo() {
        assert_eq!(
            WorkloadSpec::parse("stationary"),
            Some(WorkloadSpec::Stationary)
        );
        assert_eq!(WorkloadSpec::parse("diurnal").unwrap().name(), "diurnal");
        assert_eq!(WorkloadSpec::parse("trending").unwrap().name(), "trending");
        assert_eq!(
            WorkloadSpec::parse("flash-crowd").unwrap().name(),
            "flash-crowd"
        );
        assert_eq!(
            WorkloadSpec::parse("trace:runs/t.jsonl"),
            Some(WorkloadSpec::TraceReplay {
                path: "runs/t.jsonl".into()
            })
        );
        assert_eq!(WorkloadSpec::parse("trace:"), None);
        assert_eq!(WorkloadSpec::parse("bogus"), None);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let bad = [
            WorkloadSpec::Diurnal {
                period: SimTime::ZERO,
                amplitude: 0.5,
            },
            WorkloadSpec::Diurnal {
                period: SimTime::from_secs(600),
                amplitude: 1.5,
            },
            WorkloadSpec::Trending {
                from_factor: -1.0,
                to_factor: 2.0,
                duration: SimTime::from_secs(600),
                exponential: false,
            },
            WorkloadSpec::Trending {
                from_factor: 0.0,
                to_factor: 2.0,
                duration: SimTime::from_secs(600),
                exponential: true,
            },
            WorkloadSpec::FlashCrowd {
                spike_seed: 7,
                mean_interval: SimTime::ZERO,
                magnitude: 4.0,
                rise: SimTime::from_secs(10),
                decay: SimTime::from_secs(60),
            },
            WorkloadSpec::TraceReplay {
                path: String::new(),
            },
        ];
        for spec in bad {
            assert!(spec.validate().is_err(), "should reject {spec:?}");
        }
        for name in ["stationary", "diurnal", "trending", "flash-crowd"] {
            assert!(WorkloadSpec::parse(name).unwrap().validate().is_ok());
        }
    }

    #[test]
    fn serde_round_trip_and_default() {
        let specs = [
            WorkloadSpec::Stationary,
            WorkloadSpec::parse("diurnal").unwrap(),
            WorkloadSpec::parse("trending").unwrap(),
            WorkloadSpec::parse("flash-crowd").unwrap(),
            WorkloadSpec::TraceReplay {
                path: "t.jsonl".into(),
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
        assert_eq!(WorkloadSpec::default(), WorkloadSpec::Stationary);
        let tagged: WorkloadSpec = serde_json::from_str(r#"{"kind":"stationary"}"#).unwrap();
        assert_eq!(tagged, WorkloadSpec::Stationary);
    }
}
