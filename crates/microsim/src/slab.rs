//! A deterministic slab allocator for hot per-instance state.
//!
//! [`Slab`] replaces `HashMap<u64, T>` on the cluster's event hot path:
//! lookups become direct `Vec` indexing, removal pushes the slot onto a
//! LIFO free list for reuse (so memory stays bounded by the *peak*
//! population, not the cumulative one), and iteration runs in slot order —
//! a deterministic order, unlike a hash map's.
//!
//! Key reuse is safe here because the cluster only references an instance
//! while it is in flight: every pending event naming an instance keeps
//! `remaining_nodes` above zero, so a slot cannot be freed while an event
//! still points at it.

/// One slot: occupied by a value, or free (and threaded on the free list
/// by index in [`Slab::free`]).
#[derive(Debug, Clone, PartialEq)]
enum Slot<T> {
    Occupied(T),
    Free,
}

/// A `Vec`-backed map from reusable `u64` keys to values.
///
/// Keys are slot indices: [`Slab::insert`] pops the most recently freed
/// slot (LIFO) or appends a new one. Given the same insert/remove sequence,
/// two slabs assign identical keys — the property the simulator's
/// bit-reproducibility rests on. Checkpoints serialise the captures of
/// [`Slab::iter`] and [`Slab::free_list`] rather than the slab itself.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u64>,
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub(crate) fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Stores `value`, returning its key (a reused slot index if one is
    /// free, else a fresh one).
    pub(crate) fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        if let Some(key) = self.free.pop() {
            self.slots[usize::try_from(key).expect("slab key fits usize")] = Slot::Occupied(value);
            key
        } else {
            self.slots.push(Slot::Occupied(value));
            (self.slots.len() - 1) as u64
        }
    }

    /// Mutable access to the value at `key`, if occupied.
    pub(crate) fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        match self.slots.get_mut(usize::try_from(key).ok()?) {
            Some(Slot::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Removes and returns the value at `key`, freeing the slot for reuse.
    pub(crate) fn remove(&mut self, key: u64) -> Option<T> {
        let idx = usize::try_from(key).ok()?;
        let slot = self.slots.get_mut(idx)?;
        if matches!(slot, Slot::Free) {
            return None;
        }
        let Slot::Occupied(value) = std::mem::replace(slot, Slot::Free) else {
            unreachable!("checked occupied above");
        };
        self.free.push(key);
        self.len -= 1;
        Some(value)
    }

    /// Iterates occupied entries in slot-index order (deterministic).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            if let Slot::Occupied(value) = slot {
                Some((i as u64, value))
            } else {
                None
            }
        })
    }

    /// The free list, most recently freed last. Checkpoints capture it so a
    /// restored slab reuses keys in the exact same order.
    pub(crate) fn free_list(&self) -> &[u64] {
        &self.free
    }

    /// Rebuilds a slab from occupied `(key, value)` pairs and a free list
    /// (the captures of [`Slab::iter`] and [`Slab::free_list`]).
    ///
    /// # Panics
    ///
    /// Panics if the keys are not a partition of `0..(occupied + free)` —
    /// i.e. the two captures do not come from the same slab state.
    pub(crate) fn from_parts(occupied: Vec<(u64, T)>, free: Vec<u64>) -> Self {
        let len = occupied.len();
        let total = len + free.len();
        let mut slots: Vec<Slot<T>> = (0..total).map(|_| Slot::Free).collect();
        for (key, value) in occupied {
            let idx = usize::try_from(key).expect("slab key fits usize");
            assert!(
                matches!(slots.get(idx), Some(Slot::Free)),
                "slab snapshot has out-of-range or duplicate key {key}"
            );
            slots[idx] = Slot::Occupied(value);
        }
        for &key in &free {
            let idx = usize::try_from(key).expect("slab key fits usize");
            assert!(
                idx < total && !matches!(slots[idx], Slot::Occupied(_)),
                "slab snapshot free list clashes with occupied key {key}"
            );
        }
        Slab { slots, free, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reuses_freed_slots_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        assert_eq!((a, b, c), (0, 1, 2));
        slab.remove(a);
        slab.remove(c);
        // LIFO: the last freed slot (c's) is handed out first.
        assert_eq!(slab.insert("d"), c);
        assert_eq!(slab.insert("e"), a);
        assert_eq!(slab.insert("f"), 3);
        assert_eq!(slab.len(), 4);
    }

    #[test]
    fn get_mut_and_remove_respect_occupancy() {
        let mut slab = Slab::new();
        let k = slab.insert(10);
        *slab.get_mut(k).unwrap() += 5;
        assert_eq!(slab.remove(k), Some(15));
        assert_eq!(slab.remove(k), None);
        assert_eq!(slab.get_mut(k), None);
        assert_eq!(slab.get_mut(99), None);
        assert_eq!(slab.len(), 0);
    }

    #[test]
    fn iter_is_in_slot_order() {
        let mut slab = Slab::new();
        for v in 0..5 {
            slab.insert(v);
        }
        slab.remove(1);
        slab.remove(3);
        let seen: Vec<(u64, i32)> = slab.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(seen, vec![(0, 0), (2, 2), (4, 4)]);
    }

    #[test]
    fn snapshot_round_trip_preserves_key_assignment() {
        let mut slab = Slab::new();
        for v in 0..6 {
            slab.insert(v);
        }
        slab.remove(4);
        slab.remove(2);
        let occupied: Vec<(u64, i32)> = slab.iter().map(|(k, &v)| (k, v)).collect();
        let mut restored = Slab::from_parts(occupied, slab.free_list().to_vec());
        assert_eq!(restored, slab);
        // Future inserts land on the same keys in both.
        assert_eq!(slab.insert(7), restored.insert(7));
        assert_eq!(slab.insert(8), restored.insert(8));
        assert_eq!(slab.insert(9), restored.insert(9));
        assert_eq!(slab, restored);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn from_parts_rejects_inconsistent_captures() {
        let _ = Slab::from_parts(vec![(0, 1), (0, 2)], vec![]);
    }
}
