//! Consumer pools: the per-microservice set of identical workers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The consumer pool of one microservice.
///
/// A pool tracks four populations:
///
/// * `active` — consumers that are up and able to process requests,
/// * `busy` — the subset of `active` currently processing a request,
/// * `starting` — containers scheduled to come up (Kubernetes start-up
///   latency), minus any that have been cancelled while still starting,
/// * `pending_retire` — busy consumers that will be torn down as soon as
///   their current request completes (graceful scale-down; the emulator never
///   kills a request mid-flight, matching the paper's acknowledgement
///   mechanism that guarantees requests are not lost).
///
/// The pool itself is pure bookkeeping; the [`Cluster`](crate::Cluster)
/// schedules the actual `ConsumerUp` events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsumerPool {
    active: usize,
    busy: usize,
    starting: usize,
    cancel_starting: usize,
    pending_retire: usize,
}

/// Result of retargeting a pool: how many new containers the cluster must
/// schedule start events for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retarget {
    /// Number of `ConsumerUp` events to schedule.
    pub to_start: usize,
}

/// Raw dump of a pool's five population counters, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PoolCounters {
    /// Consumers up (busy or idle).
    pub active: usize,
    /// Consumers processing a request.
    pub busy: usize,
    /// Containers scheduled to come up (gross, including cancelled).
    pub starting: usize,
    /// Starting containers that have been cancelled.
    pub cancel_starting: usize,
    /// Busy consumers marked to retire on completion.
    pub pending_retire: usize,
}

impl fmt::Display for PoolCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "active: {}, busy: {}, starting: {}, cancel_starting: {}, pending_retire: {}",
            self.active, self.busy, self.starting, self.cancel_starting, self.pending_retire
        )
    }
}

/// A consumer pool's counters broke their population algebra.
///
/// Carries the violated relation plus the full counter dump so a
/// fault-injection run that desyncs a pool produces a diagnosable report
/// (which pool, which relation, all five raw counts) instead of an opaque
/// `usize`-underflow panic deep inside an accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PoolDesync {
    /// The population relation that no longer holds.
    pub relation: &'static str,
    /// The raw counters at the moment of detection.
    pub counters: PoolCounters,
}

impl fmt::Display for PoolDesync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counter desync: `{}` violated ({})",
            self.relation, self.counters
        )
    }
}

impl std::error::Error for PoolDesync {}

impl ConsumerPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        ConsumerPool::default()
    }

    /// Consumers currently up (busy or idle).
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Consumers currently processing a request.
    #[must_use]
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Consumers up and waiting for work.
    ///
    /// # Panics
    ///
    /// Panics with a full counter dump when the counters have desynced
    /// (`busy > active`); see [`ConsumerPool::checked_idle`] for the
    /// non-panicking form.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.checked_idle()
            .unwrap_or_else(|e| panic!("consumer pool {e}"))
    }

    /// Containers still starting (net of cancellations).
    ///
    /// # Panics
    ///
    /// Panics with a full counter dump when the counters have desynced
    /// (`cancel_starting > starting`); see
    /// [`ConsumerPool::checked_starting`] for the non-panicking form.
    #[must_use]
    pub fn starting(&self) -> usize {
        self.checked_starting()
            .unwrap_or_else(|e| panic!("consumer pool {e}"))
    }

    /// The pool size the system is converging to: active consumers not
    /// marked for retirement, plus net starting containers.
    ///
    /// # Panics
    ///
    /// Panics with a full counter dump when the counters have desynced
    /// (`pending_retire > active` or `cancel_starting > starting`); see
    /// [`ConsumerPool::checked_effective_target`] for the non-panicking
    /// form.
    #[must_use]
    pub fn effective_target(&self) -> usize {
        self.checked_effective_target()
            .unwrap_or_else(|e| panic!("consumer pool {e}"))
    }

    /// [`ConsumerPool::idle`] through checked subtraction: a typed
    /// [`PoolDesync`] (naming the violated relation and dumping every
    /// counter) instead of a `usize`-underflow panic when `busy > active`.
    pub fn checked_idle(&self) -> Result<usize, PoolDesync> {
        self.active
            .checked_sub(self.busy)
            .ok_or_else(|| self.desync("busy <= active"))
    }

    /// [`ConsumerPool::starting`] through checked subtraction.
    pub fn checked_starting(&self) -> Result<usize, PoolDesync> {
        self.starting
            .checked_sub(self.cancel_starting)
            .ok_or_else(|| self.desync("cancel_starting <= starting"))
    }

    /// [`ConsumerPool::effective_target`] through checked subtraction.
    pub fn checked_effective_target(&self) -> Result<usize, PoolDesync> {
        let unretired = self
            .active
            .checked_sub(self.pending_retire)
            .ok_or_else(|| self.desync("pending_retire <= active"))?;
        Ok(unretired + self.checked_starting()?)
    }

    /// The raw population counters, for diagnostics and audits.
    #[must_use]
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            active: self.active,
            busy: self.busy,
            starting: self.starting,
            cancel_starting: self.cancel_starting,
            pending_retire: self.pending_retire,
        }
    }

    /// Checks the pool's full population algebra: `busy ≤ active`,
    /// `pending_retire ≤ busy`, and `cancel_starting ≤ starting`. (The
    /// counters are unsigned, so non-negativity is structural; what can
    /// break are the orderings.)
    pub fn check_invariants(&self) -> Result<(), PoolDesync> {
        if self.busy > self.active {
            return Err(self.desync("busy <= active"));
        }
        if self.pending_retire > self.busy {
            return Err(self.desync("pending_retire <= busy"));
        }
        if self.cancel_starting > self.starting {
            return Err(self.desync("cancel_starting <= starting"));
        }
        Ok(())
    }

    fn desync(&self, relation: &'static str) -> PoolDesync {
        PoolDesync {
            relation,
            counters: self.counters(),
        }
    }

    /// Retargets the pool to `target` consumers.
    ///
    /// Scale-up first revives cancelled-but-still-starting containers (free),
    /// then asks the cluster to start `to_start` new ones. Scale-down first
    /// cancels starting containers, then retires idle consumers immediately,
    /// and finally marks busy consumers for retirement on completion.
    #[must_use]
    pub fn retarget(&mut self, target: usize) -> Retarget {
        let current = self.effective_target();
        if target >= current {
            let mut grow = target - current;
            // Un-retire consumers that were waiting to be torn down.
            let unretire = grow.min(self.pending_retire);
            self.pending_retire -= unretire;
            grow -= unretire;
            // Revive cancelled containers that are still starting.
            let revive = grow.min(self.cancel_starting);
            self.cancel_starting -= revive;
            grow -= revive;
            self.starting += grow;
            Retarget { to_start: grow }
        } else {
            let mut shrink = current - target;
            // Cancel containers that have not come up yet.
            let cancel = shrink.min(self.starting());
            self.cancel_starting += cancel;
            shrink -= cancel;
            // Retire idle consumers immediately.
            let retire_idle = shrink.min(self.idle());
            self.active -= retire_idle;
            shrink -= retire_idle;
            // The rest finish their current request first.
            self.pending_retire += shrink;
            debug_assert!(self.pending_retire <= self.busy);
            Retarget { to_start: 0 }
        }
    }

    /// A scheduled container came up. Returns `true` when the consumer
    /// actually joins the pool (i.e. it was not cancelled while starting).
    pub fn consumer_up(&mut self) -> bool {
        debug_assert!(self.starting > 0, "consumer_up without starting");
        self.starting -= 1;
        if self.cancel_starting > 0 {
            self.cancel_starting -= 1;
            false
        } else {
            self.active += 1;
            true
        }
    }

    /// Marks one idle consumer busy.
    ///
    /// # Panics
    ///
    /// Panics (debug) when no consumer is idle.
    pub fn begin_work(&mut self) {
        debug_assert!(self.idle() > 0, "begin_work with no idle consumer");
        self.busy += 1;
    }

    /// A busy consumer finished its request. Returns `true` when the
    /// consumer stays in the pool, `false` when it retires (deferred
    /// scale-down).
    pub fn finish_work(&mut self) -> bool {
        debug_assert!(self.busy > 0, "finish_work with no busy consumer");
        self.busy -= 1;
        if self.pending_retire > 0 {
            self.pending_retire -= 1;
            self.active -= 1;
            false
        } else {
            true
        }
    }

    /// A busy consumer crashed mid-request. It leaves the pool immediately;
    /// returns `true` when the orchestrator should start a replacement
    /// container (i.e. the consumer was not already marked for retirement).
    pub fn fail_busy(&mut self) -> bool {
        debug_assert!(self.busy > 0, "fail_busy with no busy consumer");
        self.busy -= 1;
        self.active -= 1;
        if self.pending_retire > 0 {
            // The crash completed a pending scale-down; no replacement.
            self.pending_retire -= 1;
            false
        } else {
            true
        }
    }

    /// All idle consumers died at once (correlated node outage). Removes
    /// them from the pool and returns how many were lost so the cluster can
    /// start replacements. Busy consumers fail separately through
    /// [`ConsumerPool::fail_busy`] (their in-flight requests must be
    /// redelivered), and starting containers are unaffected — the
    /// orchestrator places them after the outage.
    pub fn fail_idle(&mut self) -> usize {
        let lost = self.idle();
        self.active -= lost;
        lost
    }

    /// Tears the pool down to zero: cancels all starting containers, retires
    /// idle consumers immediately, and marks busy consumers to retire when
    /// their in-flight requests complete (requests are never killed, matching
    /// the paper's at-least-once acknowledgement mechanism).
    pub fn hard_reset(&mut self) {
        self.cancel_starting = self.starting;
        self.active = self.busy;
        self.pending_retire = self.busy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brings `n` consumers fully up.
    fn pool_with_active(n: usize) -> ConsumerPool {
        let mut p = ConsumerPool::new();
        let r = p.retarget(n);
        assert_eq!(r.to_start, n);
        for _ in 0..n {
            assert!(p.consumer_up());
        }
        p
    }

    #[test]
    fn scale_up_from_empty_schedules_starts() {
        let mut p = ConsumerPool::new();
        assert_eq!(p.retarget(3).to_start, 3);
        assert_eq!(p.starting(), 3);
        assert_eq!(p.active(), 0);
        assert!(p.consumer_up());
        assert_eq!(p.active(), 1);
        assert_eq!(p.effective_target(), 3);
    }

    #[test]
    fn scale_down_prefers_cancelling_starting() {
        let mut p = ConsumerPool::new();
        let _ = p.retarget(4);
        assert_eq!(p.retarget(1).to_start, 0);
        // Three of the four starting containers are cancelled.
        assert_eq!(p.starting(), 1);
        assert!(!p.consumer_up()); // cancelled
        assert!(!p.consumer_up()); // cancelled
        assert!(!p.consumer_up()); // cancelled
        assert!(p.consumer_up()); // survives
        assert_eq!(p.active(), 1);
    }

    #[test]
    fn scale_down_retires_idle_immediately() {
        let mut p = pool_with_active(5);
        let _ = p.retarget(2);
        assert_eq!(p.active(), 2);
        assert_eq!(p.idle(), 2);
    }

    #[test]
    fn scale_down_defers_busy_retirement() {
        let mut p = pool_with_active(3);
        p.begin_work();
        p.begin_work();
        p.begin_work();
        let _ = p.retarget(1);
        // No idle consumers: all retirement is deferred.
        assert_eq!(p.active(), 3);
        assert_eq!(p.effective_target(), 1);
        assert!(!p.finish_work()); // retires
        assert!(!p.finish_work()); // retires
        assert!(p.finish_work()); // stays
        assert_eq!(p.active(), 1);
        assert_eq!(p.busy(), 0);
    }

    #[test]
    fn scale_up_revives_pending_retire_first() {
        let mut p = pool_with_active(3);
        p.begin_work();
        p.begin_work();
        p.begin_work();
        let _ = p.retarget(1); // 2 pending retire
        let r = p.retarget(3); // revive them; no new starts
        assert_eq!(r.to_start, 0);
        assert!(p.finish_work());
        assert!(p.finish_work());
        assert!(p.finish_work());
        assert_eq!(p.active(), 3);
    }

    #[test]
    fn scale_up_revives_cancelled_starting() {
        let mut p = ConsumerPool::new();
        let _ = p.retarget(4);
        let _ = p.retarget(0); // cancel all 4
        let r = p.retarget(2); // revive 2, start none
        assert_eq!(r.to_start, 0);
        assert_eq!(p.starting(), 2);
    }

    #[test]
    fn effective_target_tracks_retarget() {
        let mut p = pool_with_active(2);
        p.begin_work();
        for target in [0, 1, 5, 3, 2] {
            let _ = p.retarget(target);
            assert_eq!(p.effective_target(), target, "target {target}");
        }
    }

    #[test]
    fn hard_reset_clears_everything_but_busy() {
        let mut p = pool_with_active(4);
        p.begin_work();
        let _ = p.retarget(6);
        p.hard_reset();
        assert_eq!(p.starting(), 0);
        assert_eq!(p.active(), 1); // the busy one finishes its request
        assert_eq!(p.busy(), 1);
        assert_eq!(p.effective_target(), 0);
        assert!(!p.finish_work()); // then retires
        assert_eq!(p.active(), 0);
    }

    #[test]
    fn fail_busy_requests_replacement() {
        let mut p = pool_with_active(2);
        p.begin_work();
        assert!(p.fail_busy());
        assert_eq!(p.active(), 1);
        assert_eq!(p.busy(), 0);
    }

    #[test]
    fn fail_busy_absorbs_pending_retirement() {
        let mut p = pool_with_active(2);
        p.begin_work();
        p.begin_work();
        let _ = p.retarget(1); // one pending retire
        assert!(!p.fail_busy(), "crash satisfies the scale-down");
        assert_eq!(p.effective_target(), 1);
    }

    #[test]
    fn fail_idle_spares_busy_and_starting() {
        let mut p = pool_with_active(4);
        p.begin_work();
        let _ = p.retarget(6); // 2 starting on top
        assert_eq!(p.fail_idle(), 3);
        assert_eq!(p.active(), 1);
        assert_eq!(p.busy(), 1);
        assert_eq!(p.idle(), 0);
        assert_eq!(p.starting(), 2);
        // A second outage with nothing idle is a no-op.
        assert_eq!(p.fail_idle(), 0);
    }

    #[test]
    fn idle_is_active_minus_busy() {
        let mut p = pool_with_active(3);
        p.begin_work();
        assert_eq!(p.idle(), 2);
        let _ = p.finish_work();
        assert_eq!(p.idle(), 3);
    }

    /// Builds a pool with raw (possibly inconsistent) counters through the
    /// serde surface — the only way to desync one from the outside, which is
    /// exactly what makes it the right tool for testing the desync paths.
    fn raw_pool(
        active: usize,
        busy: usize,
        starting: usize,
        cancel_starting: usize,
        pending_retire: usize,
    ) -> ConsumerPool {
        serde_json::from_str(&format!(
            r#"{{"active":{active},"busy":{busy},"starting":{starting},
                 "cancel_starting":{cancel_starting},"pending_retire":{pending_retire}}}"#
        ))
        .expect("raw pool JSON")
    }

    #[test]
    fn healthy_pool_passes_invariant_check() {
        let mut p = pool_with_active(3);
        p.begin_work();
        let _ = p.retarget(1);
        assert!(p.check_invariants().is_ok());
        assert_eq!(p.checked_idle().unwrap(), p.idle());
        assert_eq!(p.checked_starting().unwrap(), p.starting());
        assert_eq!(p.checked_effective_target().unwrap(), p.effective_target());
    }

    #[test]
    fn desynced_busy_surfaces_typed_error_not_underflow() {
        let p = raw_pool(1, 3, 0, 0, 0);
        let err = p.checked_idle().unwrap_err();
        assert_eq!(err.relation, "busy <= active");
        assert_eq!(err.counters.active, 1);
        assert_eq!(err.counters.busy, 3);
        assert_eq!(p.check_invariants().unwrap_err().relation, "busy <= active");
    }

    #[test]
    fn desynced_cancellations_surface_typed_error() {
        let p = raw_pool(0, 0, 1, 2, 0);
        assert_eq!(
            p.checked_starting().unwrap_err().relation,
            "cancel_starting <= starting"
        );
        assert_eq!(
            p.checked_effective_target().unwrap_err().relation,
            "cancel_starting <= starting"
        );
    }

    #[test]
    fn desynced_retirement_surfaces_typed_error() {
        let p = raw_pool(1, 1, 0, 0, 2);
        assert_eq!(
            p.checked_effective_target().unwrap_err().relation,
            "pending_retire <= active"
        );
        assert_eq!(
            p.check_invariants().unwrap_err().relation,
            "pending_retire <= busy"
        );
    }

    #[test]
    #[should_panic(expected = "busy <= active")]
    fn accessor_panic_names_the_counters() {
        let p = raw_pool(1, 3, 0, 0, 0);
        let _ = p.idle();
    }
}
