//! Property-based tests: conservation and constraint invariants of the
//! emulated cluster, mirroring the paper's acknowledgement guarantee that
//! "task requests (and the workflows they belong to) do not get lost".

use desim::SimTime;
use microsim::{Cluster, EnvConfig, MicroserviceEnv, SimConfig};
use proptest::prelude::*;
use workflow::{BurstSpec, Ensemble, WorkflowTypeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No workflow is ever lost: submitted = completed + in flight, under
    /// arbitrary submission patterns and capacity churn.
    #[test]
    fn workflows_are_conserved(
        seed in 0u64..1000,
        submissions in proptest::collection::vec((0u64..300, 0usize..3), 0..60),
        retargets in proptest::collection::vec(
            (proptest::collection::vec(0usize..5, 4), 0u64..300), 0..10),
    ) {
        let mut c = Cluster::new(Ensemble::msd(), SimConfig::new(seed));
        for &(at, wf) in &submissions {
            c.submit(SimTime::from_secs(at), WorkflowTypeId::new(wf));
        }
        let mut horizon = SimTime::ZERO;
        for (targets, at) in &retargets {
            horizon = horizon.max(SimTime::from_secs(*at));
            c.run_until(SimTime::from_secs(*at));
            c.set_consumers(targets);
        }
        c.run_until(horizon + SimTime::from_secs(400));
        let completed = c.drain_completions().len();
        let submitted: u64 = c.workflows_submitted().iter().sum();
        prop_assert_eq!(submitted as usize, completed + c.workflows_in_flight());
    }

    /// With ample capacity everything eventually completes and WIP returns
    /// to zero.
    #[test]
    fn ample_capacity_drains_everything(
        seed in 0u64..1000,
        counts in proptest::collection::vec(0usize..20, 3),
    ) {
        let mut c = Cluster::new(
            Ensemble::msd(),
            SimConfig::new(seed).with_startup_delay(SimTime::ZERO, SimTime::ZERO),
        );
        c.set_consumers(&[50, 50, 50, 50]);
        let total: usize = counts.iter().sum();
        for (i, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                c.submit(SimTime::ZERO, WorkflowTypeId::new(i));
            }
        }
        c.run_until(SimTime::from_secs(3_000));
        prop_assert_eq!(c.drain_completions().len(), total);
        prop_assert_eq!(c.total_wip(), 0);
        prop_assert_eq!(c.workflows_in_flight(), 0);
    }

    /// The environment never applies an allocation that exceeds the budget,
    /// whatever the requested action.
    #[test]
    fn env_enforces_budget(
        seed in 0u64..1000,
        actions in proptest::collection::vec(
            proptest::collection::vec(0usize..40, 4), 1..6),
    ) {
        let ensemble = Ensemble::msd();
        let budget = ensemble.default_consumer_budget();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        let mut env = MicroserviceEnv::new(ensemble, config);
        for action in &actions {
            let out = env.step(action);
            let applied: usize = out.metrics.action_applied.iter().sum();
            prop_assert!(applied <= budget, "applied {applied} > budget {budget}");
            let requested: usize = action.iter().sum();
            prop_assert_eq!(out.metrics.constraint_violated, requested > budget);
        }
    }

    /// Environment state equals the metrics' WIP, and reward follows the
    /// paper's Eq. (1).
    #[test]
    fn reward_consistent_with_state(
        seed in 0u64..1000,
        burst in proptest::collection::vec(0usize..50, 3),
    ) {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        let mut env = MicroserviceEnv::new(ensemble, config);
        env.inject_burst(&BurstSpec::new(burst));
        for _ in 0..3 {
            let out = env.step(&[4, 4, 4, 2]);
            let wip_from_state: f64 = out.state.iter().sum();
            prop_assert!((out.reward - (1.0 - wip_from_state)).abs() < 1e-9);
            let metric_wip: usize = out.metrics.total_wip();
            prop_assert_eq!(metric_wip as f64, wip_from_state);
        }
    }
}
