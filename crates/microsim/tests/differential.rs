//! Differential validation of the emulator against analytic queueing theory.
//!
//! A single-task workflow under Poisson arrivals with `c` consumers is an
//! M/G/c queue. The emulator's default log-normal service times run at
//! coefficient of variation 1, where the Allen–Cunneen M/G/c correction
//! `(CV_a² + CV_s²) / 2` equals 1 — so plain Erlang-C (M/M/c) steady-state
//! predictions from `baselines::queueing` should match the simulated
//! steady state. The tolerance is 10% on mean response time and mean
//! work-in-progress (covering both the Allen–Cunneen approximation error at
//! c > 1 and sampling noise over the measurement horizon) and 5% on
//! throughput.
//!
//! Any disagreement beyond that flags either a simulator defect (lost or
//! double-counted work, clock errors) or a broken analytic helper — which is
//! exactly what this harness exists to catch.

use desim::SimTime;
use microsim::{EnvConfig, MicroserviceEnv, SimConfig};
use workflow::{Dag, Ensemble, TaskTypeDef, TaskTypeId, WorkflowDef};

/// One workflow type consisting of a single task with mean service time
/// `1/mu` seconds at CV 1, arriving Poisson at `lambda` requests/s.
fn mmc_ensemble(lambda: f64, mu: f64, c: usize) -> Ensemble {
    Ensemble::new(
        "mmc",
        vec![TaskTypeDef::new("S", 1.0 / mu, 1.0)],
        vec![WorkflowDef {
            name: "single".into(),
            dag: Dag::chain(vec![TaskTypeId::new(0)]).unwrap(),
        }],
        c,
        vec![lambda],
    )
}

struct SteadyState {
    mean_response_secs: f64,
    mean_wip: f64,
    throughput_per_sec: f64,
}

/// Runs the emulator to steady state and measures over `measure` windows.
fn simulate(lambda: f64, mu: f64, c: usize, seed: u64) -> SteadyState {
    let window_secs = 30u64;
    let warmup = 20usize;
    let measure = 200usize;
    let ensemble = mmc_ensemble(lambda, mu, c);
    let config = EnvConfig::for_ensemble(&ensemble)
        .with_window(SimTime::from_secs(window_secs))
        .with_sim(SimConfig::new(0).with_startup_delay(SimTime::ZERO, SimTime::ZERO))
        .with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    let action = vec![c];
    for _ in 0..warmup {
        let _ = env.step(&action);
    }
    let mut weighted_response = 0.0;
    let mut completions = 0usize;
    let mut wip_sum = 0usize;
    for _ in 0..measure {
        let m = env.step(&action).metrics;
        if let Some(r) = m.overall_mean_response_secs() {
            let done: usize = m.completions.iter().sum();
            weighted_response += r * done as f64;
            completions += done;
        }
        wip_sum += m.total_wip();
    }
    assert!(
        env.audit_violations().is_empty(),
        "audit violations during differential run: {:?}",
        env.audit_violations()
    );
    let horizon_secs = (measure as u64 * window_secs) as f64;
    SteadyState {
        mean_response_secs: weighted_response / completions as f64,
        mean_wip: wip_sum as f64 / measure as f64,
        throughput_per_sec: completions as f64 / horizon_secs,
    }
}

fn assert_within(observed: f64, predicted: f64, tolerance: f64, what: &str) {
    let rel = (observed - predicted).abs() / predicted;
    assert!(
        rel <= tolerance,
        "{what}: observed {observed:.4} vs predicted {predicted:.4} \
         (relative error {:.1}% > {:.0}% tolerance)",
        rel * 100.0,
        tolerance * 100.0
    );
}

fn check_against_erlang_c(lambda: f64, mu: f64, c: usize, seed: u64) {
    let observed = simulate(lambda, mu, c, seed);
    assert_within(
        observed.mean_response_secs,
        baselines::queueing::mmc_mean_response(lambda, mu, c),
        0.10,
        "mean response time",
    );
    assert_within(
        observed.mean_wip,
        baselines::queueing::mmc_mean_in_system(lambda, mu, c),
        0.10,
        "mean work-in-progress",
    );
    assert_within(observed.throughput_per_sec, lambda, 0.05, "throughput");
}

#[test]
fn steady_state_matches_mm1_at_half_load() {
    // M/M/1 with ρ = 0.5: W = 1/(μ−λ) = 2 s, L = 1.
    check_against_erlang_c(0.5, 1.0, 1, 11);
}

#[test]
fn steady_state_matches_mmc_at_moderate_load() {
    // M/M/3 with λ = 2, μ = 1: ρ = 2/3, W = 13/9 s, L = 26/9.
    check_against_erlang_c(2.0, 1.0, 3, 12);
}

#[test]
fn steady_state_matches_mmc_at_high_load() {
    // M/M/3 with λ = 2.5, μ = 1: ρ = 5/6, W ≈ 2.405 s — queueing-dominated,
    // so any systematic accounting error in the emulator shows up here.
    check_against_erlang_c(2.5, 1.0, 3, 13);
}

/// Golden-trace replay: the MSD ensemble at a pinned seed must reproduce
/// this exact per-window trace. Catches any unintended behaviour change —
/// RNG-stream reordering, dispatch-order changes, accounting drift — that
/// the statistical tests above are too coarse to see. If a PR changes this
/// trace *deliberately*, regenerate the literals and say why in the PR.
#[test]
fn golden_trace_msd_seed_2024() {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(2024);
    let mut env = MicroserviceEnv::new(ensemble, config);
    assert_eq!(env.reset(), vec![0.0; 4]);
    #[allow(clippy::type_complexity)]
    let expected: [(usize, [usize; 4], [usize; 3], [usize; 3], f64); 8] = [
        (0, [5, 1, 5, 1], [11, 10, 8], [6, 7, 5], -11.0),
        (1, [1, 3, 4, 1], [6, 9, 7], [8, 10, 6], -8.0),
        (2, [1, 4, 3, 1], [9, 5, 13], [6, 6, 15], -8.0),
        (3, [1, 0, 3, 3], [9, 8, 6], [13, 6, 6], -6.0),
        (4, [2, 1, 6, 3], [16, 10, 8], [11, 10, 9], -11.0),
        (5, [1, 1, 8, 3], [5, 9, 12], [10, 6, 9], -12.0),
        (6, [0, 2, 6, 6], [8, 9, 8], [6, 13, 8], -13.0),
        (7, [1, 3, 4, 1], [10, 5, 11], [11, 6, 11], -8.0),
    ];
    for (window, wip, arrivals, completions, reward) in expected {
        let o = env.step(&[4, 4, 4, 2]);
        assert_eq!(o.metrics.window_index, window);
        assert_eq!(o.metrics.wip, wip, "window {window}");
        assert_eq!(o.metrics.arrivals, arrivals, "window {window}");
        assert_eq!(o.metrics.completions, completions, "window {window}");
        assert!((o.reward - reward).abs() < 1e-12, "window {window}");
    }
}

/// Auditing must be observation-only: the exact same seed with auditing on
/// and off must produce bit-identical window metrics.
#[test]
fn audit_mode_is_bit_identical() {
    let run = |audit: bool| {
        let ensemble = Ensemble::msd();
        let sim = if audit {
            SimConfig::new(0).with_audit()
        } else {
            SimConfig::new(0)
        };
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_sim(sim)
            .with_seed(77);
        let mut env = MicroserviceEnv::new(ensemble, config);
        let _ = env.reset();
        (0..12)
            .map(|_| env.step(&[4, 4, 4, 2]).metrics)
            .collect::<Vec<_>>()
    };
    let plain = run(false);
    let audited = run(true);
    assert_eq!(plain, audited);
}
