//! Failure-injection tests: consumer crashes must never lose work (the
//! paper's at-least-once acknowledgement guarantee) and the orchestrator
//! must restore capacity (Kubernetes Replication Controller behaviour).

use desim::SimTime;
use microsim::{Cluster, SimConfig};
use proptest::prelude::*;
use workflow::{Ensemble, TaskTypeId, WorkflowTypeId};

fn faulty_cluster(seed: u64, failures_per_hour: f64) -> Cluster {
    let config = SimConfig::new(seed)
        .with_startup_delay(SimTime::from_secs(5), SimTime::from_secs(10))
        .with_failure_rate(failures_per_hour);
    Cluster::new(Ensemble::msd(), config)
}

#[test]
fn zero_rate_means_no_failures() {
    let mut c = faulty_cluster(1, 0.0);
    c.set_consumers(&[4, 4, 4, 2]);
    for i in 0..100 {
        c.submit(SimTime::from_secs(i), WorkflowTypeId::new((i % 3) as usize));
    }
    c.run_until(SimTime::from_secs(2_000));
    assert_eq!(c.consumer_failures(), 0);
}

#[test]
fn failures_occur_at_high_rate() {
    // 60 failures per consumer-hour ≈ one per busy-minute: with multi-second
    // tasks failures are frequent.
    let mut c = faulty_cluster(2, 60.0);
    c.set_consumers(&[4, 4, 4, 2]);
    for i in 0..200 {
        c.submit(
            SimTime::from_secs(i / 2),
            WorkflowTypeId::new((i % 3) as usize),
        );
    }
    c.run_until(SimTime::from_secs(4_000));
    assert!(c.consumer_failures() > 0, "expected injected failures");
}

#[test]
fn no_work_is_lost_under_failures() {
    // Every submitted workflow still completes despite frequent crashes:
    // requests are redelivered and containers replaced.
    let mut c = faulty_cluster(3, 30.0);
    c.set_consumers(&[4, 4, 4, 2]);
    let total = 120;
    for i in 0..total {
        c.submit(SimTime::from_secs(i as u64), WorkflowTypeId::new(i % 3));
    }
    c.run_until(SimTime::from_secs(20_000));
    let done = c.drain_completions().len();
    assert!(
        c.consumer_failures() > 0,
        "test needs failures to be meaningful"
    );
    assert_eq!(done, total, "lost {} workflows", total - done);
    assert_eq!(c.total_wip(), 0);
    assert_eq!(c.workflows_in_flight(), 0);
}

#[test]
fn capacity_is_restored_after_crashes() {
    let mut c = faulty_cluster(4, 60.0);
    c.set_consumers(&[3, 3, 3, 3]);
    for i in 0..150 {
        c.submit(SimTime::from_secs(i), WorkflowTypeId::new((i % 3) as usize));
    }
    c.run_until(SimTime::from_secs(3_000));
    assert!(c.consumer_failures() > 0);
    // Once the dust settles (long after the last crash could have left a
    // replacement pending), every pool is back at its target.
    c.run_until(SimTime::from_secs(3_600));
    for j in 0..4 {
        let pool = c.pool(TaskTypeId::new(j));
        assert_eq!(
            pool.active() + pool.starting(),
            3,
            "pool {j} not restored: {pool:?}"
        );
    }
}

#[test]
fn failures_slow_processing_down() {
    let run = |rate: f64| {
        let mut c = faulty_cluster(5, rate);
        c.set_consumers(&[4, 4, 4, 2]);
        for i in 0..400 {
            c.submit(SimTime::ZERO, WorkflowTypeId::new(i % 3));
        }
        // Horizon short enough that the backlog is still draining: the
        // throughput difference is visible mid-flight.
        c.run_until(SimTime::from_secs(300));
        c.drain_completions().len()
    };
    let healthy = run(0.0);
    let degraded = run(240.0);
    assert!(
        degraded < healthy,
        "failures should cost throughput: {degraded} vs {healthy}"
    );
}

/// Every fault class must leave the simulator's invariants intact: runs
/// with runtime auditing enabled record zero violations under consumer
/// crashes, correlated node outages, stragglers, and delivery-delay spikes
/// (the resilience benchmark's scenario rates). This is the in-tree
/// counterpart of the `sim_audit` binary's scenario sweep.
#[test]
fn fault_scenarios_run_audit_clean() {
    let scenarios: [(&str, SimConfig); 5] = [
        ("healthy", SimConfig::new(9)),
        ("crashes", SimConfig::new(9).with_failure_rate(20.0)),
        ("outages", SimConfig::new(9).with_node_model(3, 2.0)),
        ("stragglers", SimConfig::new(9).with_stragglers(0.05, 10.0)),
        (
            "delays",
            SimConfig::new(9).with_delivery_delay_spikes(0.10, SimTime::from_secs(10)),
        ),
    ];
    for (name, sim) in scenarios {
        let mut c = Cluster::new(Ensemble::msd(), sim.with_audit());
        c.set_consumers(&[4, 4, 4, 2]);
        for i in 0..200 {
            c.submit(
                SimTime::from_secs(i / 2),
                WorkflowTypeId::new((i % 3) as usize),
            );
        }
        c.run_until(SimTime::from_secs(4_000));
        assert!(c.audit_enabled());
        assert_eq!(
            c.audit_violations(),
            &[],
            "scenario `{name}` violated simulator invariants"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Workflow conservation holds for any failure rate: submitted equals
    /// completed plus in-flight.
    #[test]
    fn conservation_under_arbitrary_failure_rates(
        seed in 0u64..500,
        rate in 0.0f64..100.0,
        n in 1usize..60,
    ) {
        let mut c = faulty_cluster(seed, rate);
        c.set_consumers(&[3, 3, 3, 3]);
        for i in 0..n {
            c.submit(SimTime::from_secs(i as u64), WorkflowTypeId::new(i % 3));
        }
        c.run_until(SimTime::from_secs(5_000));
        let done = c.drain_completions().len();
        prop_assert_eq!(n, done + c.workflows_in_flight());
    }
}
