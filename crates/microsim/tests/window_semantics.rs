//! Integration tests for decision-window semantics: window length, reset
//! behaviour, and the interaction between container start-up and windows.

use desim::SimTime;
use microsim::{EnvConfig, MicroserviceEnv};
use workflow::{BurstSpec, Ensemble};

fn env_with_window(window_secs: u64, seed: u64) -> MicroserviceEnv {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble)
        .with_seed(seed)
        .with_window(SimTime::from_secs(window_secs));
    MicroserviceEnv::new(ensemble, config)
}

#[test]
fn window_length_scales_simulated_time() {
    for secs in [5u64, 15, 30] {
        let mut env = env_with_window(secs, 1);
        let before = env.cluster().now();
        for _ in 0..4 {
            let _ = env.step(&[4, 4, 4, 2]);
        }
        assert_eq!(
            (env.cluster().now() - before).as_secs_f64(),
            (4 * secs) as f64
        );
    }
}

#[test]
fn short_windows_feel_container_startup() {
    // With 5 s windows, a consumer ordered now (5–10 s start-up) cannot
    // process anything within the same window.
    let mut env = env_with_window(5, 2);
    env.inject_burst(&BurstSpec::new(vec![20, 0, 0]));
    let out = env.step(&[14, 0, 0, 0]);
    assert_eq!(
        out.metrics.completions.iter().sum::<usize>(),
        0,
        "nothing can finish before any container is up"
    );
    // Within 30 s windows the same order processes plenty.
    let mut env = env_with_window(30, 2);
    env.inject_burst(&BurstSpec::new(vec![20, 0, 0]));
    let out = env.step(&[14, 0, 0, 0]);
    assert!(
        out.metrics.wip[0] < 20,
        "the A queue should have drained some"
    );
}

#[test]
fn arrivals_scale_with_window_length() {
    // Expected arrivals per window are rate × window: 6× more in 30 s
    // windows than in 5 s windows, summed over many windows.
    let count = |secs: u64| -> usize {
        let mut env = env_with_window(secs, 3);
        let steps = (3_000 / secs) as usize; // same total horizon
        let mut total = 0;
        for _ in 0..steps {
            total += env
                .step(&[4, 4, 4, 2])
                .metrics
                .arrivals
                .iter()
                .sum::<usize>();
        }
        total
    };
    let short = count(5);
    let long = count(30);
    let ratio = long as f64 / short as f64;
    assert!(
        (0.85..1.15).contains(&ratio),
        "same horizon, same workload: ratio {ratio}"
    );
}

#[test]
fn reset_is_idempotent() {
    let mut env = env_with_window(30, 4);
    env.inject_burst(&BurstSpec::new(vec![50, 50, 50]));
    let _ = env.step(&[0; 4]);
    let s1 = env.reset();
    let s2 = env.reset();
    assert!(s1.iter().sum::<f64>() <= 1.0);
    assert!(s2.iter().sum::<f64>() <= 1.0);
}

#[test]
fn window_index_counts_only_steps() {
    let mut env = env_with_window(30, 5);
    assert_eq!(env.window_index(), 0);
    let _ = env.step(&[4, 4, 4, 2]);
    let _ = env.reset(); // resets do not advance the decision index
    let _ = env.step(&[4, 4, 4, 2]);
    assert_eq!(env.window_index(), 2);
}

#[test]
fn metrics_window_index_matches_env() {
    let mut env = env_with_window(30, 6);
    for expected in 0..5 {
        let out = env.step(&[4, 4, 4, 2]);
        assert_eq!(out.metrics.window_index, expected);
    }
}
