//! Model-based property test of [`ConsumerPool`]: random operation
//! sequences against a naive per-consumer reference.
//!
//! The production pool keeps five aggregate counters; the reference keeps an
//! explicit list of consumers, each in one state, and derives the counters
//! by counting. Any divergence — in derived counters, in operation return
//! values, or in the population algebra — pinpoints an aggregate-bookkeeping
//! bug (exactly the class of defect that previously surfaced only as a
//! `usize`-underflow panic deep inside an accessor). Runs in release mode
//! too: nothing here depends on `debug_assert!`.

use microsim::{Cluster, ConsumerPool, SimConfig};
use proptest::prelude::*;
use workflow::{Ensemble, WorkflowTypeId};

/// One consumer in the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefConsumer {
    /// Container scheduled to come up; may have been cancelled meanwhile.
    Starting { cancelled: bool },
    /// Up, waiting for work.
    Idle,
    /// Processing a request; may be marked to retire on completion.
    Busy { retiring: bool },
}

/// Naive reference pool: an explicit list of consumers.
#[derive(Debug, Default)]
struct RefPool {
    consumers: Vec<RefConsumer>,
}

impl RefPool {
    fn count(&self, pred: impl Fn(&RefConsumer) -> bool) -> usize {
        self.consumers.iter().filter(|c| pred(c)).count()
    }

    fn active(&self) -> usize {
        self.count(|c| matches!(c, RefConsumer::Idle | RefConsumer::Busy { .. }))
    }

    fn busy(&self) -> usize {
        self.count(|c| matches!(c, RefConsumer::Busy { .. }))
    }

    fn starting_gross(&self) -> usize {
        self.count(|c| matches!(c, RefConsumer::Starting { .. }))
    }

    fn cancelled(&self) -> usize {
        self.count(|c| matches!(c, RefConsumer::Starting { cancelled: true }))
    }

    fn pending_retire(&self) -> usize {
        self.count(|c| matches!(c, RefConsumer::Busy { retiring: true }))
    }

    fn effective_target(&self) -> usize {
        self.count(|c| {
            matches!(
                c,
                RefConsumer::Idle
                    | RefConsumer::Busy { retiring: false }
                    | RefConsumer::Starting { cancelled: false }
            )
        })
    }

    /// Flips the state of the first consumer matching `from` to `to`.
    /// Consumers are interchangeable, so "first" is as good as any.
    fn convert_one(&mut self, from: RefConsumer, to: RefConsumer) {
        let idx = self
            .consumers
            .iter()
            .position(|c| *c == from)
            .expect("reference pool out of the required state");
        self.consumers[idx] = to;
    }

    fn remove_one(&mut self, state: RefConsumer) {
        let idx = self
            .consumers
            .iter()
            .position(|c| *c == state)
            .expect("reference pool out of the required state");
        self.consumers.swap_remove(idx);
    }

    fn retarget(&mut self, target: usize) -> usize {
        let current = self.effective_target();
        if target >= current {
            let mut grow = target - current;
            // Un-retire busy consumers waiting to be torn down.
            let unretire = grow.min(self.pending_retire());
            for _ in 0..unretire {
                self.convert_one(
                    RefConsumer::Busy { retiring: true },
                    RefConsumer::Busy { retiring: false },
                );
            }
            grow -= unretire;
            // Revive cancelled containers that are still starting.
            let revive = grow.min(self.cancelled());
            for _ in 0..revive {
                self.convert_one(
                    RefConsumer::Starting { cancelled: true },
                    RefConsumer::Starting { cancelled: false },
                );
            }
            grow -= revive;
            for _ in 0..grow {
                self.consumers
                    .push(RefConsumer::Starting { cancelled: false });
            }
            grow // to_start
        } else {
            let mut shrink = current - target;
            let cancel = shrink.min(self.starting_gross() - self.cancelled());
            for _ in 0..cancel {
                self.convert_one(
                    RefConsumer::Starting { cancelled: false },
                    RefConsumer::Starting { cancelled: true },
                );
            }
            shrink -= cancel;
            let retire_idle = shrink.min(self.active() - self.busy());
            for _ in 0..retire_idle {
                self.remove_one(RefConsumer::Idle);
            }
            shrink -= retire_idle;
            for _ in 0..shrink {
                self.convert_one(
                    RefConsumer::Busy { retiring: false },
                    RefConsumer::Busy { retiring: true },
                );
            }
            0
        }
    }

    /// One scheduled container comes up. The aggregate pool absorbs a
    /// pending cancellation first regardless of which container physically
    /// arrived (consumers are interchangeable); the reference mirrors that.
    fn consumer_up(&mut self) -> bool {
        if self.cancelled() > 0 {
            self.remove_one(RefConsumer::Starting { cancelled: true });
            false
        } else {
            self.convert_one(
                RefConsumer::Starting { cancelled: false },
                RefConsumer::Idle,
            );
            true
        }
    }

    fn begin_work(&mut self) {
        self.convert_one(RefConsumer::Idle, RefConsumer::Busy { retiring: false });
    }

    /// A busy consumer finishes. A pending retirement is absorbed first —
    /// whichever consumer finished, one marked consumer can retire in its
    /// place, since they are interchangeable.
    fn finish_work(&mut self) -> bool {
        if self.pending_retire() > 0 {
            self.remove_one(RefConsumer::Busy { retiring: true });
            false
        } else {
            self.convert_one(RefConsumer::Busy { retiring: false }, RefConsumer::Idle);
            true
        }
    }

    fn fail_busy(&mut self) -> bool {
        if self.pending_retire() > 0 {
            self.remove_one(RefConsumer::Busy { retiring: true });
            false
        } else {
            self.remove_one(RefConsumer::Busy { retiring: false });
            true
        }
    }

    fn fail_idle(&mut self) -> usize {
        let lost = self.count(|c| matches!(c, RefConsumer::Idle));
        self.consumers.retain(|c| !matches!(c, RefConsumer::Idle));
        lost
    }

    fn hard_reset(&mut self) {
        self.consumers.retain(|c| !matches!(c, RefConsumer::Idle));
        for c in &mut self.consumers {
            *c = match *c {
                RefConsumer::Starting { .. } => RefConsumer::Starting { cancelled: true },
                RefConsumer::Busy { .. } => RefConsumer::Busy { retiring: true },
                RefConsumer::Idle => unreachable!("idle consumers were retained away"),
            };
        }
    }
}

/// One randomly generated pool operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Retarget(usize),
    ConsumerUp,
    BeginWork,
    FinishWork,
    FailBusy,
    FailIdle,
    HardReset,
}

/// Weighted op selection (the vendored proptest has no `prop_oneof`):
/// retargets and the common lifecycle ops dominate, destructive ops are
/// rarer — mirroring how the cluster actually drives a pool.
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..12, 0usize..12).prop_map(|(kind, target)| match kind {
        0..=2 => Op::Retarget(target),
        3 | 4 => Op::ConsumerUp,
        5 | 6 => Op::BeginWork,
        7 | 8 => Op::FinishWork,
        9 => Op::FailBusy,
        10 => Op::FailIdle,
        _ => Op::HardReset,
    })
}

fn assert_pools_agree(pool: &ConsumerPool, reference: &RefPool) {
    let c = pool.counters();
    assert_eq!(c.active, reference.active(), "active");
    assert_eq!(c.busy, reference.busy(), "busy");
    assert_eq!(c.starting, reference.starting_gross(), "starting (gross)");
    assert_eq!(c.cancel_starting, reference.cancelled(), "cancel_starting");
    assert_eq!(
        c.pending_retire,
        reference.pending_retire(),
        "pending_retire"
    );
    assert_eq!(pool.effective_target(), reference.effective_target());
    pool.check_invariants()
        .unwrap_or_else(|e| panic!("invariants broken after agreeing with reference: {e}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The aggregate pool and the per-consumer reference stay in lockstep —
    /// same counters, same return values — over arbitrary operation
    /// sequences, and the population algebra holds after every step.
    #[test]
    fn pool_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut pool = ConsumerPool::new();
        let mut reference = RefPool::default();
        for op in ops {
            // Skip operations whose preconditions don't hold (the cluster
            // never issues them either); the reference decides, and the
            // production pool must agree it was skippable.
            match op {
                Op::Retarget(target) => {
                    let to_start = pool.retarget(target).to_start;
                    prop_assert_eq!(to_start, reference.retarget(target));
                }
                Op::ConsumerUp => {
                    if reference.starting_gross() > 0 {
                        prop_assert_eq!(pool.consumer_up(), reference.consumer_up());
                    }
                }
                Op::BeginWork => {
                    if reference.active() - reference.busy() > 0 {
                        pool.begin_work();
                        reference.begin_work();
                    }
                }
                Op::FinishWork => {
                    if reference.busy() > 0 {
                        prop_assert_eq!(pool.finish_work(), reference.finish_work());
                    }
                }
                Op::FailBusy => {
                    if reference.busy() > 0 {
                        prop_assert_eq!(pool.fail_busy(), reference.fail_busy());
                    }
                }
                Op::FailIdle => {
                    prop_assert_eq!(pool.fail_idle(), reference.fail_idle());
                }
                Op::HardReset => {
                    pool.hard_reset();
                    reference.hard_reset();
                }
            }
            assert_pools_agree(&pool, &reference);
        }
    }

    /// End-to-end audit sweep: a cluster driven by random submissions and
    /// retargets, with runtime auditing enabled, records zero invariant
    /// violations — in release builds too, where `debug_assert!` is compiled
    /// out and only the [`microsim::SimAuditor`] is watching.
    #[test]
    fn random_cluster_runs_are_audit_clean(
        seed in 0u64..1000,
        submissions in proptest::collection::vec((0u64..240, 0usize..3), 0..40),
        retargets in proptest::collection::vec(
            (proptest::collection::vec(0usize..5, 4), 0u64..240), 0..8),
    ) {
        let mut c = Cluster::new(Ensemble::msd(), SimConfig::new(seed).with_audit());
        for &(at, wf) in &submissions {
            c.submit(desim::SimTime::from_secs(at), WorkflowTypeId::new(wf));
        }
        let mut horizon = desim::SimTime::ZERO;
        for (targets, at) in &retargets {
            horizon = horizon.max(desim::SimTime::from_secs(*at));
            c.run_until(desim::SimTime::from_secs(*at));
            c.set_consumers(targets);
        }
        c.run_until(horizon + desim::SimTime::from_secs(500));
        prop_assert!(c.audit_enabled());
        prop_assert_eq!(c.audit_violations(), &[]);
    }
}
