//! CPU-contention tests: with bounded cores, packing more busy consumers
//! slows everyone down — the regime the paper's 3-vCPU testbed ran in.

use desim::SimTime;
use microsim::{Cluster, SimConfig};
use workflow::{Ensemble, WorkflowTypeId};

fn cluster(seed: u64, cores: Option<f64>) -> Cluster {
    let mut config = SimConfig::new(seed).with_startup_delay(SimTime::ZERO, SimTime::ZERO);
    if let Some(c) = cores {
        config = config.with_total_cores(c);
    }
    Cluster::new(Ensemble::msd(), config)
}

/// Throughput over a fixed horizon with a saturating backlog.
fn completions(seed: u64, cores: Option<f64>, consumers: usize) -> usize {
    let mut c = cluster(seed, cores);
    c.set_consumers(&[consumers, consumers, consumers, consumers]);
    for i in 0..600 {
        c.submit(SimTime::ZERO, WorkflowTypeId::new(i % 3));
    }
    c.run_until(SimTime::from_secs(600));
    c.drain_completions().len()
}

#[test]
fn unlimited_cores_match_no_contention() {
    // With more cores than consumers the contention model must be a no-op.
    let free = completions(1, None, 3);
    let many_cores = completions(1, Some(1_000.0), 3);
    assert_eq!(free, many_cores);
}

#[test]
fn scarce_cores_reduce_throughput() {
    let free = completions(2, None, 4);
    let contended = completions(2, Some(3.0), 4); // paper's 3 vCPUs
    assert!(
        contended < free / 2,
        "16 consumers on 3 cores should run far slower: {contended} vs {free}"
    );
}

#[test]
fn adding_consumers_beyond_cores_has_diminishing_returns() {
    // Without contention, doubling consumers roughly doubles throughput on
    // a backlog. With 3 cores it cannot.
    let few = completions(3, Some(3.0), 1); // 4 consumers, ~3 cores: ok
    let many = completions(3, Some(3.0), 4); // 16 consumers, 3 cores
    let few_free = completions(3, None, 1);
    let many_free = completions(3, None, 4);
    let free_speedup = many_free as f64 / few_free as f64;
    let contended_speedup = many as f64 / few as f64;
    assert!(
        contended_speedup < free_speedup,
        "contended speedup {contended_speedup:.2} vs free {free_speedup:.2}"
    );
}

#[test]
fn contention_preserves_work_conservation() {
    let mut c = cluster(4, Some(2.0));
    c.set_consumers(&[3, 3, 3, 3]);
    for i in 0..80 {
        c.submit(SimTime::from_secs(i), WorkflowTypeId::new((i % 3) as usize));
    }
    c.run_until(SimTime::from_secs(30_000));
    assert_eq!(c.drain_completions().len() + c.workflows_in_flight(), 80);
    assert_eq!(c.workflows_in_flight(), 0, "everything drains eventually");
}
