//! Workload-generator correctness: every generator kind survives a
//! record → trace-replay round trip byte-identically, and arbitrary
//! workload specs keep the simulator audit-clean and deterministic.
//!
//! The round trip is the strongest arrival-path check we have: it proves
//! that window-by-window Poisson sampling (generator mode) and pre-queued
//! injected arrivals (trace mode) drive the cluster through the *same*
//! trajectory — same per-window metrics, same audit stream — which pins
//! down the window-boundary attribution semantics fixed in this change.

use desim::SimTime;
use microsim::{EnvConfig, MicroserviceEnv, SimConfig, WorkloadSpec};
use proptest::prelude::*;
use workflow::{BurstSpec, Ensemble};

const WINDOWS: usize = 4;
const ACTION: [usize; 4] = [4, 4, 4, 2]; // MSD budget 14

fn env_with(workload: WorkloadSpec, seed: u64) -> MicroserviceEnv {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble)
        .with_seed(seed)
        .with_sim(SimConfig::new(seed).with_audit())
        .with_workload(workload);
    MicroserviceEnv::new(ensemble, config)
}

/// Runs `WINDOWS` uniform-allocation windows and returns each window's
/// metrics serialised to JSON (a byte-level fingerprint of the trajectory).
fn run_fingerprint(env: &mut MicroserviceEnv) -> Vec<String> {
    (0..WINDOWS)
        .map(|_| {
            let out = env.step(&ACTION);
            serde_json::to_string(&out.metrics).expect("metrics serialise")
        })
        .collect()
}

#[test]
fn every_generator_kind_round_trips_through_trace_replay() {
    let specs = [
        WorkloadSpec::parse("stationary").unwrap(),
        WorkloadSpec::parse("diurnal").unwrap(),
        WorkloadSpec::parse("trending").unwrap(),
        WorkloadSpec::parse("flash-crowd").unwrap(),
    ];
    for spec in specs {
        let name = spec.name();
        let seed = 2024;

        // Record: generator-driven run, with a burst on top so injected
        // arrivals are part of the recorded stream too.
        let mut original = env_with(spec, seed);
        let _ = original.reset();
        original.record_trace();
        original.inject_burst(&BurstSpec::new(vec![5, 2, 0]));
        let original_metrics = run_fingerprint(&mut original);
        let original_audit = original.take_audit_violations();
        assert!(
            original_audit.is_empty(),
            "{name}: generator run has audit violations: {original_audit:?}"
        );
        let trace = original.take_recorded_trace();
        assert!(!trace.is_empty(), "{name}: recorded no arrivals");

        let path = std::env::temp_dir().join(format!(
            "miras_workload_rt_{}_{name}.jsonl",
            std::process::id()
        ));
        trace.save_jsonl(&path).expect("trace saves");

        // Replay: same seed, same actions, but all arrivals come from the
        // trace; the generator contributes nothing (factor 0).
        let replay_spec = WorkloadSpec::TraceReplay {
            path: path.display().to_string(),
        };
        let mut replay = env_with(replay_spec, seed);
        let _ = replay.reset();
        let loaded = replay.load_workload_trace().expect("trace loads");
        assert_eq!(loaded, trace.len(), "{name}: replay loaded a short trace");
        let replay_metrics = run_fingerprint(&mut replay);
        let replay_audit = replay.take_audit_violations();
        assert!(
            replay_audit.is_empty(),
            "{name}: replay run has audit violations: {replay_audit:?}"
        );

        assert_eq!(
            original_metrics, replay_metrics,
            "{name}: replayed trajectory diverges from the recorded one"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn trace_replay_contributes_no_background_of_its_own() {
    // Replaying an *empty* trace with non-zero configured arrival rates
    // must produce zero arrivals: TraceReplay means "the file is the whole
    // workload", not "the file plus the Poisson background".
    let path =
        std::env::temp_dir().join(format!("miras_workload_empty_{}.jsonl", std::process::id()));
    std::fs::write(&path, "").expect("empty trace writes");
    let mut env = env_with(
        WorkloadSpec::TraceReplay {
            path: path.display().to_string(),
        },
        7,
    );
    let _ = env.reset();
    assert_eq!(env.load_workload_trace().expect("loads"), 0);
    for _ in 0..3 {
        let out = env.step(&ACTION);
        assert_eq!(out.metrics.arrivals.iter().sum::<usize>(), 0);
    }
    let _ = std::fs::remove_file(&path);
}

/// A strategy over every generator-backed workload shape, with parameters
/// spanning (and slightly exceeding) the presets' ranges. A kind selector
/// plus a flat parameter tuple, since the vendored proptest has no
/// `prop_oneof!`.
fn arbitrary_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        0usize..4,
        (60u64..1200, 0.0f64..1.0),
        (0.1f64..3.0, 0.1f64..3.0, 0u64..2),
        (0u64..1000, 60u64..900),
        (0.5f64..6.0, 1u64..60, 1u64..120),
    )
        .prop_map(
            |(
                kind,
                (period, amplitude),
                (from_factor, to_factor, expo),
                (spike_seed, mean_interval),
                (magnitude, rise, decay),
            )| match kind {
                0 => WorkloadSpec::Stationary,
                1 => WorkloadSpec::Diurnal {
                    period: SimTime::from_secs(period),
                    amplitude,
                },
                2 => WorkloadSpec::Trending {
                    from_factor,
                    to_factor,
                    duration: SimTime::from_secs(period),
                    exponential: expo == 1,
                },
                _ => WorkloadSpec::FlashCrowd {
                    spike_seed,
                    mean_interval: SimTime::from_secs(mean_interval),
                    magnitude,
                    rise: SimTime::from_secs(rise),
                    decay: SimTime::from_secs(decay),
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid workload spec keeps the audited simulator clean.
    #[test]
    fn random_workloads_are_audit_clean(
        spec in arbitrary_workload(),
        seed in 0u64..1000,
    ) {
        prop_assert!(spec.validate().is_ok());
        let mut env = env_with(spec, seed);
        let _ = env.reset();
        for _ in 0..3 {
            let _ = env.step(&ACTION);
        }
        let violations = env.take_audit_violations();
        prop_assert!(violations.is_empty(), "audit violations: {violations:?}");
    }

    /// Same spec + same seed → byte-identical trajectory.
    #[test]
    fn random_workloads_are_deterministic(
        spec in arbitrary_workload(),
        seed in 0u64..1000,
    ) {
        let mut a = env_with(spec.clone(), seed);
        let _ = a.reset();
        let mut b = env_with(spec, seed);
        let _ = b.reset();
        prop_assert_eq!(run_fingerprint(&mut a), run_fingerprint(&mut b));
    }

    /// Serde round-trips preserve the spec exactly (traces and configs are
    /// stored on disk between record and replay).
    #[test]
    fn workload_specs_serde_round_trip(spec in arbitrary_workload()) {
        let json = serde_json::to_string(&spec).expect("spec serialises");
        let back: WorkloadSpec = serde_json::from_str(&json).expect("spec parses");
        prop_assert_eq!(spec, back);
    }
}
