//! Property-based tests for the RL toolkit's invariants.

use proptest::prelude::*;
use rl::policy::{
    allocation_floor, allocation_largest_remainder, distribution_from_allocation,
    project_to_simplex,
};
use rl::{ReplayBuffer, RunningNorm, StoredTransition};

/// A strategy producing valid probability distributions of length 2–9.
fn distributions() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 2..10).prop_map(|raw| project_to_simplex(&raw))
}

proptest! {
    /// The floor rule never exceeds the budget, for any distribution.
    #[test]
    fn floor_allocation_within_budget(dist in distributions(), budget in 0usize..100) {
        let m = allocation_floor(&dist, budget);
        prop_assert!(m.iter().sum::<usize>() <= budget);
        prop_assert_eq!(m.len(), dist.len());
    }

    /// Largest remainder uses the budget exactly (distributions sum to 1).
    #[test]
    fn largest_remainder_exact(dist in distributions(), budget in 0usize..100) {
        let m = allocation_largest_remainder(&dist, budget);
        prop_assert_eq!(m.iter().sum::<usize>(), budget);
    }

    /// Largest remainder dominates the floor rule element-wise.
    #[test]
    fn largest_remainder_dominates_floor(dist in distributions(), budget in 0usize..100) {
        let f = allocation_floor(&dist, budget);
        let l = allocation_largest_remainder(&dist, budget);
        for (a, b) in f.iter().zip(&l) {
            prop_assert!(b >= a);
            prop_assert!(b - a <= 1, "largest remainder adds at most one");
        }
    }

    /// Simplex projection always yields a valid distribution.
    #[test]
    fn projection_yields_distribution(
        raw in proptest::collection::vec(-100.0f64..100.0, 1..10)
    ) {
        let d = project_to_simplex(&raw);
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&p| p >= 0.0));
    }

    /// Allocation → distribution → allocation round-trips under largest
    /// remainder when the budget matches the original total.
    #[test]
    fn allocation_round_trip(alloc in proptest::collection::vec(0usize..20, 2..8)) {
        let total: usize = alloc.iter().sum();
        prop_assume!(total > 0);
        let dist = distribution_from_allocation(&alloc);
        let back = allocation_largest_remainder(&dist, total);
        prop_assert_eq!(back, alloc);
    }

    /// The replay buffer never exceeds capacity and keeps exactly the most
    /// recent `capacity` items.
    #[test]
    fn replay_keeps_most_recent(
        capacity in 1usize..20,
        n in 0usize..60,
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..n {
            buf.push(StoredTransition {
                state: vec![i as f64],
                action: vec![],
                reward: i as f64,
                next_state: vec![],
            });
        }
        prop_assert_eq!(buf.len(), n.min(capacity));
        let kept: std::collections::HashSet<u64> =
            buf.iter().map(|t| t.reward as u64).collect();
        let expected: std::collections::HashSet<u64> =
            (n.saturating_sub(capacity)..n).map(|i| i as u64).collect();
        prop_assert_eq!(kept, expected);
    }

    /// RunningNorm matches batch statistics for arbitrary data.
    #[test]
    fn running_norm_matches_batch(
        data in proptest::collection::vec(-1e3f64..1e3, 2..200)
    ) {
        let mut norm = RunningNorm::new(1);
        for &v in &data {
            norm.update(&[v]);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-6);
        for &probe in data.iter().take(10) {
            let expected = ((probe - mean) / std).clamp(-5.0, 5.0);
            let got = norm.normalize(&[probe])[0];
            prop_assert!((expected - got).abs() < 1e-6,
                "probe {probe}: {expected} vs {got}");
        }
    }
}
