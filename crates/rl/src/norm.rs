//! Running observation normalisation.

use serde::{Deserialize, Serialize};

/// A running per-dimension observation normaliser (Welford's algorithm).
///
/// DDPG is sensitive to input scale: WIP observations range from 0 to
/// several hundred, and feeding them raw saturates the actor's softmax
/// immediately. OpenAI Baselines' DDPG — the implementation the paper built
/// on — normalises observations by default; this reproduces that behaviour.
/// Outputs are standardised with the running mean/std and clipped to
/// `[-clip, clip]`.
///
/// # Examples
///
/// ```
/// use rl::RunningNorm;
///
/// let mut norm = RunningNorm::new(2);
/// for i in 0..100 {
///     norm.update(&[i as f64, 1000.0 + i as f64]);
/// }
/// let z = norm.normalize(&[50.0, 1050.0]);
/// assert!(z.iter().all(|v| v.abs() < 1.0)); // near the running mean
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningNorm {
    count: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
    clip: f64,
}

impl RunningNorm {
    /// Creates an identity normaliser over `dim` dimensions (clip ±5).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        RunningNorm {
            count: 0,
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
            clip: 5.0,
        }
    }

    /// Number of observations folded in so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Folds one observation into the running statistics.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn update(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.count += 1;
        let n = self.count as f64;
        for (i, &xi) in x.iter().enumerate() {
            let delta = xi - self.mean[i];
            self.mean[i] += delta / n;
            self.m2[i] += delta * (xi - self.mean[i]);
        }
    }

    /// Standardises `x` with the running statistics, clipped to ±clip.
    /// Identity until at least two observations have been folded in.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        if self.count < 2 {
            return x.to_vec();
        }
        let n = self.count as f64;
        x.iter()
            .enumerate()
            .map(|(i, &v)| {
                let var = self.m2[i] / n;
                let std = var.sqrt().max(1e-6);
                ((v - self.mean[i]) / std).clamp(-self.clip, self.clip)
            })
            .collect()
    }

    /// Allocation-free [`RunningNorm::normalize`] into a caller buffer
    /// (cleared and refilled). Bitwise-identical to `normalize`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn normalize_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        out.clear();
        if self.count < 2 {
            out.extend_from_slice(x);
            return;
        }
        let n = self.count as f64;
        out.extend(x.iter().enumerate().map(|(i, &v)| {
            let var = self.m2[i] / n;
            let std = var.sqrt().max(1e-6);
            ((v - self.mean[i]) / std).clamp(-self.clip, self.clip)
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_before_two_updates() {
        let mut n = RunningNorm::new(2);
        assert_eq!(n.normalize(&[3.0, 4.0]), vec![3.0, 4.0]);
        n.update(&[1.0, 1.0]);
        assert_eq!(n.normalize(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn standardises_to_zero_mean_unit_std() {
        let mut n = RunningNorm::new(1);
        let data: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        for &v in &data {
            n.update(&[v]);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let z = n.normalize(&[mean]);
        assert!(z[0].abs() < 1e-9);
        // One std above the mean normalises to ≈ 1.
        let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / data.len() as f64;
        let z1 = n.normalize(&[mean + var.sqrt()]);
        assert!((z1[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clips_outliers() {
        let mut n = RunningNorm::new(1);
        for i in 0..100 {
            n.update(&[i as f64 % 10.0]);
        }
        let z = n.normalize(&[1e9]);
        assert_eq!(z[0], 5.0);
        let z = n.normalize(&[-1e9]);
        assert_eq!(z[0], -5.0);
    }

    #[test]
    fn constant_input_is_safe() {
        let mut n = RunningNorm::new(1);
        for _ in 0..10 {
            n.update(&[7.0]);
        }
        let z = n.normalize(&[7.0]);
        assert!(z[0].abs() < 1e-6);
        assert!(n.normalize(&[8.0])[0].is_finite());
    }

    #[test]
    fn matches_batch_statistics() {
        let mut n = RunningNorm::new(2);
        let rows = [[1.0, -5.0], [2.0, 0.0], [3.0, 5.0], [4.0, 10.0]];
        for r in &rows {
            n.update(r);
        }
        // Batch mean of dim 0 is 2.5.
        let z = n.normalize(&[2.5, 2.5]);
        assert!(z[0].abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let mut n = RunningNorm::new(2);
        n.update(&[1.0, 2.0]);
        n.update(&[3.0, 4.0]);
        let json = serde_json::to_string(&n).unwrap();
        let back: RunningNorm = serde_json::from_str(&json).unwrap();
        assert_eq!(n, back);
    }
}
