//! The environment interface.

/// The result of one environment step: the `(s', r)` pair the agent learns
/// from.
///
/// For the microservice problem both fields have a fixed physical meaning:
/// `next_state` is the per-task-type work-in-progress vector `w(k+1)` at the
/// end of the decision window, and `reward` is `r(k) = 1 − Σ_j w_j(k+1)`.
/// Every environment — the real emulated cluster
/// (`microsim::MicroserviceEnv`, whose `StepOutcome` mirrors this pair) and
/// the learnt synthetic environment — computes the reward through the single
/// audited helper `microsim::reward_from_total_wip`, so the three layers can
/// never drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// The state after applying the action (`w(k+1)` for the microservice
    /// problem).
    pub next_state: Vec<f64>,
    /// The scalar reward observed (`1 − Σ_j w_j(k+1)`).
    pub reward: f64,
}

/// A continuing-task reinforcement-learning environment.
///
/// Both the real emulated microservice cluster and MIRAS's learnt synthetic
/// environment implement this trait, so the same [`Ddpg`](crate::Ddpg)
/// training loop runs against either — exactly the substitution the paper's
/// model-based approach performs.
///
/// Actions are continuous vectors; for the microservice problem they are
/// softmax distributions over task types that the adapter converts to
/// consumer counts (see [`policy`](crate::policy)).
pub trait Environment {
    /// Dimensionality of states.
    fn state_dim(&self) -> usize;

    /// Dimensionality of actions.
    fn action_dim(&self) -> usize;

    /// Resets the environment and returns the initial state.
    fn reset(&mut self) -> Vec<f64>;

    /// Applies `action` and returns the next state and reward.
    fn step(&mut self, action: &[f64]) -> Transition;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic counter environment used to exercise the trait.
    struct Counter {
        value: f64,
    }

    impl Environment for Counter {
        fn state_dim(&self) -> usize {
            1
        }
        fn action_dim(&self) -> usize {
            1
        }
        fn reset(&mut self) -> Vec<f64> {
            self.value = 0.0;
            vec![0.0]
        }
        fn step(&mut self, action: &[f64]) -> Transition {
            self.value += action[0];
            Transition {
                next_state: vec![self.value],
                reward: -self.value.abs(),
            }
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut env: Box<dyn Environment> = Box::new(Counter { value: 3.0 });
        assert_eq!(env.reset(), vec![0.0]);
        let t = env.step(&[2.0]);
        assert_eq!(t.next_state, vec![2.0]);
        assert_eq!(t.reward, -2.0);
    }
}
