//! Bounded experience replay.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One stored `(s, a, r, s')` transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTransition {
    /// State before the action.
    pub state: Vec<f64>,
    /// Action taken (continuous RL action, e.g. a softmax distribution).
    pub action: Vec<f64>,
    /// Reward observed.
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f64>,
}

/// A fixed-capacity ring buffer of transitions with uniform sampling.
///
/// # Examples
///
/// ```
/// use rl::{ReplayBuffer, StoredTransition};
/// use rand::SeedableRng;
///
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(StoredTransition {
///         state: vec![i as f64],
///         action: vec![0.0],
///         reward: 0.0,
///         next_state: vec![i as f64 + 1.0],
///     });
/// }
/// // Capacity 2: the oldest transition was evicted.
/// assert_eq!(buf.len(), 2);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let batch = buf.sample(2, &mut rng);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<StoredTransition>,
    write_cursor: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            items: Vec::new(),
            write_cursor: 0,
        }
    }

    /// Maximum number of stored transitions.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no transitions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds a transition, evicting the oldest when full.
    ///
    /// Transitions containing any non-finite value (NaN or ±∞ in the state,
    /// action, reward or next state) are **rejected** and the buffer is left
    /// unchanged — a single poisoned transition would otherwise surface in
    /// minibatches forever and corrupt every gradient it touches. Returns
    /// whether the transition was stored. Callers that need to count
    /// rejections (e.g. to drive a `replay.rejected_nonfinite` telemetry
    /// counter) branch on the result.
    pub fn push(&mut self, t: StoredTransition) -> bool {
        if !transition_is_finite(&t) {
            return false;
        }
        self.push_unchecked(t);
        true
    }

    /// Adds a transition without the finiteness check of
    /// [`ReplayBuffer::push`].
    ///
    /// This exists for fault-injection tests that deliberately poison the
    /// buffer to exercise the divergence watchdog; production code paths
    /// should always go through `push`.
    pub fn push_unchecked(&mut self, t: StoredTransition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.write_cursor] = t;
        }
        self.write_cursor = (self.write_cursor + 1) % self.capacity;
    }

    /// Samples `n` transitions uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<&StoredTransition> {
        assert!(!self.is_empty(), "cannot sample from an empty buffer");
        (0..n)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }

    /// Iterates over all stored transitions in storage order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredTransition> {
        self.items.iter()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.items.clear();
        self.write_cursor = 0;
    }
}

fn transition_is_finite(t: &StoredTransition) -> bool {
    t.reward.is_finite()
        && t.state.iter().all(|x| x.is_finite())
        && t.action.iter().all(|x| x.is_finite())
        && t.next_state.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn t(v: f64) -> StoredTransition {
        StoredTransition {
            state: vec![v],
            action: vec![v],
            reward: v,
            next_state: vec![v + 1.0],
        }
    }

    #[test]
    fn eviction_is_fifo() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        let rewards: Vec<f64> = buf.iter().map(|x| x.reward).collect();
        // Ring: slots now hold 3, 4, 2.
        assert_eq!(rewards.len(), 3);
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sample_draws_only_stored_items() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..4 {
            buf.push(t(i as f64));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        for item in buf.sample(100, &mut rng) {
            assert!(item.reward >= 0.0 && item.reward < 4.0);
        }
    }

    #[test]
    fn sample_covers_buffer_eventually() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f64));
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let seen: std::collections::HashSet<u64> = buf
            .sample(400, &mut rng)
            .iter()
            .map(|x| x.reward as u64)
            .collect();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn clear_empties() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(t(0.0));
        buf.clear();
        assert!(buf.is_empty());
        buf.push(t(1.0));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn push_rejects_non_finite_values() {
        let mut buf = ReplayBuffer::new(4);
        assert!(buf.push(t(1.0)));
        let mut bad = t(2.0);
        bad.reward = f64::NAN;
        assert!(!buf.push(bad));
        let mut bad = t(3.0);
        bad.state[0] = f64::INFINITY;
        assert!(!buf.push(bad));
        let mut bad = t(4.0);
        bad.action[0] = f64::NEG_INFINITY;
        assert!(!buf.push(bad));
        let mut bad = t(5.0);
        bad.next_state[0] = f64::NAN;
        assert!(!buf.push(bad));
        assert_eq!(buf.len(), 1, "rejected transitions must not be stored");
    }

    #[test]
    fn push_unchecked_bypasses_validation() {
        let mut buf = ReplayBuffer::new(2);
        let mut bad = t(0.0);
        bad.reward = f64::NAN;
        buf.push_unchecked(bad);
        assert_eq!(buf.len(), 1);
        assert!(buf.iter().next().unwrap().reward.is_nan());
    }

    #[test]
    fn serde_round_trip_preserves_ring_state() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        let json = serde_json::to_string(&buf).unwrap();
        let restored: ReplayBuffer = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, buf);
        // The write cursor survives: both evict the same slot next.
        let mut a = buf;
        let mut b = restored;
        a.push(t(9.0));
        b.push(t(9.0));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot sample from an empty buffer")]
    fn sampling_empty_panics() {
        let buf = ReplayBuffer::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = buf.sample(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "replay capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }
}
