//! Reinforcement-learning toolkit for the MIRAS reproduction.
//!
//! Implements the policy-learning half of the paper (§IV-A, §IV-D):
//!
//! * [`Environment`] — the minimal continuing-task RL interface shared by
//!   the real emulated cluster and the learnt synthetic environment,
//! * [`ReplayBuffer`] — a bounded transition store sampled for minibatches,
//! * [`Ddpg`] — deep deterministic policy gradient with an actor whose
//!   softmax output enforces the consumer-budget constraint by construction
//!   and a critic that injects the action at its second hidden layer, as the
//!   paper specifies (§VI-A3),
//! * [`AdaptiveParamNoise`] — parameter-space exploration (Plappert et al.),
//!   the paper's exploration mechanism, plus [`OrnsteinUhlenbeck`]
//!   action-space noise as the ablation baseline,
//! * [`policy`] — the mapping between softmax action distributions and
//!   integer consumer allocations, `m_j = ⌊C · a_j⌋`.
//!
//! # Examples
//!
//! Train DDPG on a toy quadratic environment:
//!
//! ```
//! use rl::{Ddpg, DdpgConfig, Environment};
//!
//! struct Toy { state: Vec<f64> }
//! impl Environment for Toy {
//!     fn state_dim(&self) -> usize { 2 }
//!     fn action_dim(&self) -> usize { 2 }
//!     fn reset(&mut self) -> Vec<f64> { self.state = vec![1.0, 1.0]; self.state.clone() }
//!     fn step(&mut self, action: &[f64]) -> rl::Transition {
//!         // Reward peaks when the action matches [0.5, 0.5].
//!         let r = -action.iter().map(|a| (a - 0.5).powi(2)).sum::<f64>();
//!         rl::Transition { next_state: self.state.clone(), reward: r }
//!     }
//! }
//!
//! let mut env = Toy { state: vec![] };
//! let mut agent = Ddpg::new(2, 2, DdpgConfig::small_test(0));
//! let mut s = env.reset();
//! for _ in 0..64 {
//!     let a = agent.act_exploratory(&s);
//!     let t = env.step(&a);
//!     agent.observe(&s, &a, t.reward, &t.next_state);
//!     s = t.next_state;
//!     agent.train_step();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddpg;
mod env;
mod noise;
mod norm;
pub mod policy;
mod replay;

pub use ddpg::{
    Critic, Ddpg, DdpgConfig, DdpgSnapshot, Exploration, FrozenPolicy, PolicyWeights, TrainError,
    TrainHealth, TrainStats,
};
pub use env::{Environment, Transition};
pub use noise::{AdaptiveParamNoise, OrnsteinUhlenbeck};
pub use norm::RunningNorm;
pub use replay::{ReplayBuffer, StoredTransition};
