//! Mapping between softmax action distributions and consumer allocations.
//!
//! The paper's actor outputs a categorical distribution over the `J` task
//! types; the allocation is `m_j = ⌊C · a_j⌋` (§IV-D), which satisfies
//! `Σ_j m_j ≤ C` by construction.

/// Converts a softmax distribution into integer consumer counts using the
/// paper's floor rule: `m_j = ⌊budget · dist_j⌋`.
///
/// The result always satisfies `Σ m_j ≤ budget`. Up to `J − 1` consumers can
/// be left unassigned by the flooring; see
/// [`allocation_largest_remainder`] for a variant that assigns them.
///
/// # Examples
///
/// ```
/// use rl::policy::allocation_floor;
///
/// let m = allocation_floor(&[0.5, 0.3, 0.2], 10);
/// assert_eq!(m, vec![5, 3, 2]);
/// let m = allocation_floor(&[0.4, 0.35, 0.25], 14);
/// assert_eq!(m.iter().sum::<usize>() <= 14, true);
/// ```
///
/// # Panics
///
/// Panics if `dist` contains negative or non-finite entries.
#[must_use]
pub fn allocation_floor(dist: &[f64], budget: usize) -> Vec<usize> {
    validate_distribution(dist);
    dist.iter()
        .map(|&p| (budget as f64 * p).floor() as usize)
        .collect()
}

/// Converts a distribution into consumer counts with the largest-remainder
/// method: floors first, then hands the consumers lost to flooring to the
/// dimensions with the largest fractional parts, so `Σ m_j` equals
/// `⌊budget · Σ dist_j⌋` exactly (the full budget when `dist` sums to 1).
///
/// # Examples
///
/// ```
/// use rl::policy::allocation_largest_remainder;
///
/// let m = allocation_largest_remainder(&[0.4, 0.35, 0.25], 14);
/// assert_eq!(m.iter().sum::<usize>(), 14);
/// ```
///
/// # Panics
///
/// Panics if `dist` contains negative or non-finite entries.
#[must_use]
pub fn allocation_largest_remainder(dist: &[f64], budget: usize) -> Vec<usize> {
    validate_distribution(dist);
    let exact: Vec<f64> = dist.iter().map(|&p| budget as f64 * p).collect();
    let mut alloc: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let assigned: usize = alloc.iter().sum();
    let total_exact: f64 = exact.iter().sum();
    // Tolerate accumulated float error (e.g. thirds summing to 13.999…).
    let want = (total_exact + 1e-9).floor() as usize;
    let mut leftover = want.saturating_sub(assigned);
    // Rank dimensions by fractional part, descending; ties broken by index
    // for determinism.
    let mut order: Vec<usize> = (0..dist.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).expect("finite").then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        alloc[i] += 1;
        leftover -= 1;
    }
    alloc
}

/// Converts integer consumer counts back into a distribution (uniform when
/// the allocation is all zeros).
///
/// # Examples
///
/// ```
/// use rl::policy::distribution_from_allocation;
///
/// let d = distribution_from_allocation(&[5, 3, 2]);
/// assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!((d[0] - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn distribution_from_allocation(alloc: &[usize]) -> Vec<f64> {
    let total: usize = alloc.iter().sum();
    if total == 0 {
        return vec![1.0 / alloc.len() as f64; alloc.len()];
    }
    alloc.iter().map(|&m| m as f64 / total as f64).collect()
}

/// Normalises an arbitrary non-negative vector into a distribution,
/// falling back to uniform for a zero (or degenerate) vector. Used to
/// re-project noisy actions back onto the simplex.
///
/// # Examples
///
/// ```
/// use rl::policy::project_to_simplex;
///
/// let d = project_to_simplex(&[0.2, -0.1, 0.3]);
/// assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(d.iter().all(|&p| p >= 0.0));
/// ```
#[must_use]
pub fn project_to_simplex(values: &[f64]) -> Vec<f64> {
    let clipped: Vec<f64> = values
        .iter()
        .map(|&v| if v.is_finite() { v.max(0.0) } else { 0.0 })
        .collect();
    let total: f64 = clipped.iter().sum();
    if total <= 0.0 {
        vec![1.0 / values.len() as f64; values.len()]
    } else {
        clipped.into_iter().map(|v| v / total).collect()
    }
}

fn validate_distribution(dist: &[f64]) {
    for &p in dist {
        assert!(p.is_finite() && p >= 0.0, "invalid probability {p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_never_exceeds_budget() {
        for budget in [0usize, 1, 14, 30, 100] {
            let dist = [0.31, 0.29, 0.25, 0.15];
            let m = allocation_floor(&dist, budget);
            assert!(m.iter().sum::<usize>() <= budget);
        }
    }

    #[test]
    fn floor_matches_paper_formula() {
        let m = allocation_floor(&[0.5, 0.25, 0.25], 14);
        assert_eq!(m, vec![7, 3, 3]);
    }

    #[test]
    fn largest_remainder_uses_full_budget() {
        let m = allocation_largest_remainder(&[1.0 / 3.0; 3], 14);
        assert_eq!(m.iter().sum::<usize>(), 14);
        // 14/3 = 4.67 each → 4,4,4 floor; two extra to earliest indices.
        assert_eq!(m, vec![5, 5, 4]);
    }

    #[test]
    fn largest_remainder_prefers_big_fractions() {
        let m = allocation_largest_remainder(&[0.48, 0.42, 0.10], 10);
        // exact: 4.8, 4.2, 1.0 → floors 4, 4, 1 = 9; one extra to index 0.
        assert_eq!(m, vec![5, 4, 1]);
    }

    #[test]
    fn zero_allocation_gives_uniform_distribution() {
        let d = distribution_from_allocation(&[0, 0, 0, 0]);
        assert_eq!(d, vec![0.25; 4]);
    }

    #[test]
    fn simplex_projection_handles_nan_and_negatives() {
        let d = project_to_simplex(&[f64::NAN, -1.0, 2.0]);
        assert_eq!(d, vec![0.0, 0.0, 1.0]);
        let d = project_to_simplex(&[-1.0, -2.0]);
        assert_eq!(d, vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn negative_probability_panics() {
        let _ = allocation_floor(&[-0.1, 1.1], 10);
    }

    #[test]
    fn round_trip_allocation_distribution() {
        let alloc = vec![7usize, 4, 2, 1];
        let dist = distribution_from_allocation(&alloc);
        let back = allocation_largest_remainder(&dist, 14);
        assert_eq!(back, alloc);
    }
}
