//! Exploration noise: adaptive parameter-space noise and OU action noise.

use serde::{Deserialize, Serialize};

/// Adaptive parameter-space noise (Plappert et al., ICLR 2018) — the
/// exploration mechanism MIRAS uses (§IV-D).
///
/// A copy of the actor network is perturbed with Gaussian noise of standard
/// deviation `sigma`. After each perturbation the *induced action-space
/// distance* between the clean and perturbed policies is measured on recent
/// states; `sigma` is scaled up when the distance falls below the target
/// `delta` (noise too timid) and down when it exceeds it (noise too wild).
///
/// # Examples
///
/// ```
/// use rl::AdaptiveParamNoise;
///
/// let mut noise = AdaptiveParamNoise::new(0.1, 0.2, 1.01);
/// noise.adapt(0.05); // observed distance below target: explore harder
/// assert!(noise.sigma() > 0.1);
/// noise.adapt(0.5);  // too wild: back off
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveParamNoise {
    sigma: f64,
    delta: f64,
    alpha: f64,
}

impl AdaptiveParamNoise {
    /// Creates the controller with initial `sigma`, target action-space
    /// distance `delta`, and adaption factor `alpha > 1`.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0`, `delta > 0` and `alpha > 1`.
    #[must_use]
    pub fn new(sigma: f64, delta: f64, alpha: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(delta > 0.0, "delta must be positive");
        assert!(alpha > 1.0, "alpha must exceed 1");
        AdaptiveParamNoise {
            sigma,
            delta,
            alpha,
        }
    }

    /// The current perturbation scale.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The target action-space distance.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Updates `sigma` from the observed action-space `distance` between the
    /// clean and perturbed policies.
    pub fn adapt(&mut self, distance: f64) {
        if distance < self.delta {
            self.sigma *= self.alpha;
        } else {
            self.sigma /= self.alpha;
        }
    }

    /// Scales `sigma` by `factor`, flooring at a tiny positive value so the
    /// controller never reaches an invalid zero scale. Used by the
    /// divergence watchdog, which halves exploration noise after a rollback.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn scale_sigma(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "sigma scale factor must be finite and positive"
        );
        self.sigma = (self.sigma * factor).max(1e-9);
    }
}

/// Ornstein–Uhlenbeck action-space noise — the classical DDPG exploration
/// (Lillicrap et al.) used here as the ablation baseline the paper argues
/// against: added directly to actions it frequently violates the consumer
/// budget (§IV-D).
///
/// # Examples
///
/// ```
/// use rl::OrnsteinUhlenbeck;
/// use rand::SeedableRng;
///
/// let mut noise = OrnsteinUhlenbeck::new(2, 0.15, 0.2);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let n1 = noise.sample(&mut rng);
/// assert_eq!(n1.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrnsteinUhlenbeck {
    theta: f64,
    sigma: f64,
    state: Vec<f64>,
}

impl OrnsteinUhlenbeck {
    /// Creates a zero-mean OU process over `dim` dimensions with mean
    /// reversion `theta` and volatility `sigma` (unit time step).
    ///
    /// # Panics
    ///
    /// Panics unless `dim > 0`, `theta >= 0`, and `sigma >= 0`.
    #[must_use]
    pub fn new(dim: usize, theta: f64, sigma: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            theta >= 0.0 && sigma >= 0.0,
            "parameters must be non-negative"
        );
        OrnsteinUhlenbeck {
            theta,
            sigma,
            state: vec![0.0; dim],
        }
    }

    /// Advances the process one step and returns the new noise vector.
    pub fn sample<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        use rand_distr::{Distribution, StandardNormal};
        for x in &mut self.state {
            let dw: f64 = StandardNormal.sample(rng);
            *x += self.theta * (0.0 - *x) + self.sigma * dw;
        }
        self.state.clone()
    }

    /// Resets the process to zero.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn param_noise_scales_both_ways() {
        let mut n = AdaptiveParamNoise::new(0.1, 0.2, 1.05);
        n.adapt(0.1);
        let grown = n.sigma();
        assert!((grown - 0.105).abs() < 1e-12);
        n.adapt(0.3);
        assert!((n.sigma() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn param_noise_converges_to_target_band() {
        // If the induced distance is proportional to sigma, adaption steers
        // sigma so the distance approaches delta.
        let mut n = AdaptiveParamNoise::new(1.0, 0.2, 1.1);
        for _ in 0..200 {
            let induced = 0.5 * n.sigma(); // pretend linear response
            n.adapt(induced);
        }
        let induced = 0.5 * n.sigma();
        assert!((induced - 0.2).abs() < 0.05, "induced {induced}");
    }

    #[test]
    fn scale_sigma_halves_and_floors() {
        let mut n = AdaptiveParamNoise::new(0.2, 0.1, 1.01);
        n.scale_sigma(0.5);
        assert!((n.sigma() - 0.1).abs() < 1e-12);
        for _ in 0..200 {
            n.scale_sigma(0.5);
        }
        assert!(n.sigma() >= 1e-9, "sigma must stay positive");
    }

    #[test]
    #[should_panic(expected = "sigma scale factor must be finite and positive")]
    fn scale_sigma_rejects_nan() {
        let mut n = AdaptiveParamNoise::new(0.2, 0.1, 1.01);
        n.scale_sigma(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn alpha_one_panics() {
        let _ = AdaptiveParamNoise::new(0.1, 0.1, 1.0);
    }

    #[test]
    fn ou_reverts_toward_mean() {
        let mut n = OrnsteinUhlenbeck::new(1, 0.5, 0.0); // no volatility
        n.state[0] = 4.0;
        let mut rng = SmallRng::seed_from_u64(0);
        let s = n.sample(&mut rng);
        assert!((s[0] - 2.0).abs() < 1e-12); // 4 + 0.5 (0 − 4)
    }

    #[test]
    fn ou_is_temporally_correlated() {
        let mut n = OrnsteinUhlenbeck::new(1, 0.05, 0.1);
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..2000).map(|_| n.sample(&mut rng)[0]).collect();
        // Lag-1 autocorrelation of an OU process with small theta is high.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum();
        let cov: f64 = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        let rho = cov / var;
        assert!(rho > 0.7, "autocorrelation {rho}");
    }

    #[test]
    fn ou_reset_zeroes_state() {
        let mut n = OrnsteinUhlenbeck::new(3, 0.15, 0.2);
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = n.sample(&mut rng);
        n.reset();
        assert_eq!(n.state, vec![0.0; 3]);
    }
}
