//! Deep deterministic policy gradient with parameter-space exploration.

use nn::{Activation, Adam, DenseGrads, Matrix, Mlp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use telemetry::Telemetry;

use crate::policy::project_to_simplex;
use crate::{AdaptiveParamNoise, OrnsteinUhlenbeck, ReplayBuffer, RunningNorm, StoredTransition};

/// Minimum minibatch rows per gradient shard; below this, thread overhead
/// dominates the matrix work.
const MIN_SHARD_ROWS: usize = 16;

/// Splits `rows` minibatch rows into contiguous shards, at most one per
/// configured thread (`NN_NUM_THREADS`). The shard count is a pure function
/// of `rows` and the thread knob, and shards are always reduced in index
/// order, so threaded training is bit-reproducible for a fixed knob; with
/// one shard the computation is identical to the serial path.
fn shard_ranges(rows: usize) -> Vec<(usize, usize)> {
    let shards = nn::threads::effective_threads()
        .min(rows / MIN_SHARD_ROWS)
        .max(1);
    let base = rows / shards;
    let extra = rows % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Runs `work` over each shard range — on this thread if there is only one
/// shard, otherwise one scoped thread per shard (each with nested kernel
/// parallelism disabled) — and returns the results in shard order.
fn run_sharded<T, F>(ranges: &[(usize, usize)], work: F) -> Vec<T>
where
    T: Send,
    F: Fn((usize, usize)) -> T + Sync,
{
    if ranges.len() == 1 {
        return vec![work(ranges[0])];
    }
    let mut out: Vec<Option<T>> = ranges.iter().map(|_| None).collect();
    let work_ref = &work;
    std::thread::scope(|scope| {
        for (slot, &range) in out.iter_mut().zip(ranges) {
            scope.spawn(move || {
                *slot = Some(nn::threads::with_serial(|| work_ref(range)));
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("shard completed"))
        .collect()
}

/// One shard's contribution to a critic update.
struct CriticShard {
    /// Unnormalised sum of squared TD errors over the shard's rows.
    loss_sum: f64,
    trunk_grads: Vec<DenseGrads>,
    head_grads: Vec<DenseGrads>,
}

/// The critic `Q(s, a)` with the paper's architecture: the action is
/// injected at the *second* hidden layer (§VI-A3 — "we insert one of
/// Critic's inputs — action — to the second layer").
///
/// Internally this is a one-layer trunk over the state followed by a head
/// over `[trunk(s) ‖ a]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Critic {
    trunk: Mlp,
    head: Mlp,
    action_dim: usize,
}

impl Critic {
    /// Creates a critic with hidden widths `hidden` (e.g. `[256, 256, 256]`
    /// for the paper's MSD critic).
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty or any dimension is zero.
    #[must_use]
    pub fn new<R: rand::Rng + ?Sized>(
        state_dim: usize,
        action_dim: usize,
        hidden: &[usize],
        rng: &mut R,
    ) -> Self {
        assert!(!hidden.is_empty(), "critic needs at least one hidden layer");
        // Trunk: state → first hidden layer.
        let trunk = Mlp::new(
            &[state_dim, hidden[0]],
            Activation::Relu,
            Activation::Relu,
            rng,
        );
        // Head: [h1 ‖ a] → remaining hidden layers → scalar Q.
        let mut sizes = vec![hidden[0] + action_dim];
        sizes.extend_from_slice(&hidden[1..]);
        sizes.push(1);
        let head = Mlp::new(&sizes, Activation::Relu, Activation::Linear, rng);
        Critic {
            trunk,
            head,
            action_dim,
        }
    }

    /// Q-values for a batch of `(state, action)` pairs, shape `(batch, 1)`.
    #[must_use]
    pub fn q(&self, states: &Matrix, actions: &Matrix) -> Matrix {
        let h = self.trunk.forward(states);
        let z = Matrix::hconcat(&[&h, actions]);
        self.head.forward(&z)
    }

    /// One MSE training step toward `targets`; returns the loss before the
    /// update.
    ///
    /// The minibatch is split into row shards (see [`shard_ranges`]) whose
    /// gradients are computed on scoped threads and reduced in shard order,
    /// then applied once — equivalent to the full-batch update.
    pub fn train(
        &mut self,
        states: &Matrix,
        actions: &Matrix,
        targets: &Matrix,
        trunk_opt: &mut Adam,
        head_opt: &mut Adam,
    ) -> f64 {
        let n = states.rows() as f64;
        let ranges = shard_ranges(states.rows());
        let this: &Critic = self;
        let shards = run_sharded(&ranges, |range| {
            this.grad_shard(states, actions, targets, range, n)
        });

        let mut iter = shards.into_iter();
        let mut acc = iter.next().expect("at least one shard");
        for s in iter {
            acc.loss_sum += s.loss_sum;
            for (a, b) in acc.trunk_grads.iter_mut().zip(&s.trunk_grads) {
                a.accumulate(b);
            }
            for (a, b) in acc.head_grads.iter_mut().zip(&s.head_grads) {
                a.accumulate(b);
            }
        }
        self.head.apply_gradients(&mut acc.head_grads, head_opt);
        self.trunk.apply_gradients(&mut acc.trunk_grads, trunk_opt);
        acc.loss_sum / n
    }

    /// Forward/backward over rows `[r0, r1)` of the minibatch. The TD-error
    /// gradient is scaled by the *full* batch size `n`, so summing shard
    /// gradients reproduces the full-batch gradient exactly.
    fn grad_shard(
        &self,
        states: &Matrix,
        actions: &Matrix,
        targets: &Matrix,
        (r0, r1): (usize, usize),
        n: f64,
    ) -> CriticShard {
        let s = states.rows_range(r0, r1);
        let a = actions.rows_range(r0, r1);
        let t = targets.rows_range(r0, r1);
        let trunk_trace = self.trunk.forward_cached(&s);
        let z = Matrix::hconcat(&[trunk_trace.output(), &a]);
        let head_trace = self.head.forward_cached(&z);
        let mut d_q = head_trace.output() - &t;
        let loss_sum = d_q.as_slice().iter().map(|&v| v * v).sum::<f64>();
        d_q.scale_in_place(2.0 / n);
        let (d_z, head_grads) = self.head.backward(&head_trace, &d_q);
        let d_h = d_z.columns(0, trunk_trace.output().cols());
        let (_, trunk_grads) = self.trunk.backward(&trunk_trace, &d_h);
        CriticShard {
            loss_sum,
            trunk_grads,
            head_grads,
        }
    }

    /// `∂Q/∂a` for each sample — the deterministic-policy-gradient term.
    #[must_use]
    pub fn action_gradient(&self, states: &Matrix, actions: &Matrix) -> Matrix {
        let h = self.trunk.forward(states);
        let z = Matrix::hconcat(&[&h, actions]);
        let ones = Matrix::from_vec(z.rows(), 1, vec![1.0; z.rows()]);
        let d_z = self.head.input_gradient(&z, &ones);
        d_z.columns(h.cols(), self.action_dim)
    }

    /// Polyak update toward `src`.
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn soft_update_from(&mut self, src: &Critic, tau: f64) {
        self.trunk.soft_update_from(&src.trunk, tau);
        self.head.soft_update_from(&src.head, tau);
    }
}

/// The exploration strategy used while collecting experience.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Exploration {
    /// Parameter-space noise (the paper's choice, §IV-D): perturb a copy of
    /// the actor's weights; adapt the scale so the induced action-space
    /// distance tracks `delta`.
    ParamNoise {
        /// Initial perturbation standard deviation.
        initial_sigma: f64,
        /// Target action-space distance.
        delta: f64,
        /// Multiplicative adaption factor (> 1).
        alpha: f64,
        /// Re-perturb (and adapt) every this many exploratory actions.
        resample_every: usize,
    },
    /// Ornstein–Uhlenbeck noise added to the action, then re-projected onto
    /// the probability simplex — the classical DDPG exploration the paper
    /// compares against.
    ActionNoise {
        /// Mean-reversion rate.
        theta: f64,
        /// Volatility.
        sigma: f64,
    },
    /// No exploration: always act greedily.
    Greedy,
}

/// DDPG hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// Hidden-layer widths shared by actor and critic (paper: `[256; 3]` for
    /// MSD, `[512; 3]` for LIGO).
    pub hidden: Vec<usize>,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Polyak target-update coefficient τ.
    pub tau: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Replay-buffer capacity.
    pub buffer_capacity: usize,
    /// Exploration strategy.
    pub exploration: Exploration,
    /// Global gradient-norm clip.
    pub grad_clip: Option<f64>,
    /// Rewards are multiplied by this factor before being stored in the
    /// replay buffer. The paper's reward `1 − Σ w` reaches hundreds in
    /// magnitude under bursts; scaling keeps critic targets well
    /// conditioned without changing the optimal policy.
    pub reward_scale: f64,
    /// Standardise rewards with running statistics at batch-build time
    /// (OpenAI Baselines' `normalize_returns` analogue). The WIP reward
    /// spans two orders of magnitude between steady state and burst
    /// recovery; a fixed scale cannot condition the critic across both.
    pub normalize_rewards: bool,
    /// Train a second, independently initialised critic and use the
    /// minimum of the two target critics when forming TD targets (the
    /// clipped double-Q trick of TD3, Fujimoto et al.). Counters the value
    /// overestimation vanilla DDPG is prone to; off by default to match the
    /// paper's vanilla actor-critic.
    pub twin_critic: bool,
    /// Weight of the entropy bonus added to the actor objective
    /// (maximise `Q + β·H(π(s))`). A softmax actor that saturates to a
    /// one-hot vertex has a vanishing Jacobian — exploration noise can no
    /// longer move it and learning stalls; the entropy term keeps the
    /// policy off the vertices. Set to 0 to disable.
    pub entropy_weight: f64,
    /// RNG seed (weight init, sampling, noise).
    pub seed: u64,
}

impl DdpgConfig {
    /// The paper's configuration scaled to a hidden width (256 for MSD, 512
    /// for LIGO).
    #[must_use]
    pub fn paper(hidden_width: usize, seed: u64) -> Self {
        DdpgConfig {
            hidden: vec![hidden_width; 3],
            actor_lr: 1e-4,
            critic_lr: 1e-3,
            gamma: 0.95,
            tau: 1e-2,
            batch_size: 64,
            buffer_capacity: 100_000,
            exploration: Exploration::ParamNoise {
                initial_sigma: 0.05,
                delta: 0.1,
                alpha: 1.01,
                resample_every: 25,
            },
            grad_clip: Some(10.0),
            reward_scale: 1.0,
            normalize_rewards: true,
            twin_critic: false,
            entropy_weight: 2.0,
            seed,
        }
    }

    /// A tiny configuration for unit tests and doctests.
    #[must_use]
    pub fn small_test(seed: u64) -> Self {
        DdpgConfig {
            hidden: vec![16, 16],
            actor_lr: 1e-3,
            critic_lr: 1e-2,
            gamma: 0.9,
            tau: 0.05,
            batch_size: 8,
            buffer_capacity: 1_000,
            exploration: Exploration::ParamNoise {
                initial_sigma: 0.05,
                delta: 0.1,
                alpha: 1.01,
                resample_every: 10,
            },
            grad_clip: Some(10.0),
            reward_scale: 1.0,
            normalize_rewards: false,
            twin_critic: false,
            entropy_weight: 0.01,
            seed,
        }
    }
}

/// Statistics from one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Critic MSE before the update.
    pub critic_loss: f64,
    /// Mean Q-value of the actor's actions on the minibatch.
    pub mean_q: f64,
}

/// A detected training-health failure, raised by
/// [`Ddpg::try_train_step`] instead of letting a diverged agent keep
/// training (or a hot-path assertion kill the process). The trainer
/// boundary turns these into a rollback to the last good checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The critic loss or mean Q of a step came back NaN or ±∞.
    NonFiniteLoss {
        /// The agent's lifetime train-step count when the failure occurred.
        step: u64,
        /// The offending critic loss.
        critic_loss: f64,
        /// The offending mean Q.
        mean_q: f64,
    },
    /// A network weight became NaN or ±∞ (sampled periodically).
    NonFiniteWeights {
        /// The agent's lifetime train-step count when the failure occurred.
        step: u64,
    },
    /// The critic loss blew past `factor ×` its exponential moving average —
    /// the classic shape of a diverging critic before it reaches NaN.
    CriticBlowup {
        /// The agent's lifetime train-step count when the failure occurred.
        step: u64,
        /// The offending critic loss.
        critic_loss: f64,
        /// The EWMA baseline the loss was compared against.
        ewma: f64,
        /// The trip threshold multiplier.
        factor: f64,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NonFiniteLoss {
                step,
                critic_loss,
                mean_q,
            } => write!(
                f,
                "non-finite training loss at step {step}: critic_loss={critic_loss}, mean_q={mean_q}"
            ),
            TrainError::NonFiniteWeights { step } => {
                write!(f, "non-finite network weights detected at step {step}")
            }
            TrainError::CriticBlowup {
                step,
                critic_loss,
                ewma,
                factor,
            } => write!(
                f,
                "critic loss blow-up at step {step}: {critic_loss} > {factor} x EWMA {ewma}"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

impl TrainError {
    /// A short machine-readable tag (`non_finite_loss`,
    /// `non_finite_weights`, `critic_blowup`) used in telemetry `recovery`
    /// events.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TrainError::NonFiniteLoss { .. } => "non_finite_loss",
            TrainError::NonFiniteWeights { .. } => "non_finite_weights",
            TrainError::CriticBlowup { .. } => "critic_blowup",
        }
    }
}

/// Divergence watchdog over a stream of [`TrainStats`].
///
/// Tracks an exponential moving average of the critic loss and trips when a
/// step's loss is non-finite or exceeds `blowup_factor ×` the EWMA after a
/// warm-up period (early training legitimately spikes while the critic
/// finds its scale). The monitor is pure bookkeeping — it never touches the
/// agent — so checking health cannot perturb training determinism.
///
/// # Examples
///
/// ```
/// use rl::{TrainHealth, TrainStats};
///
/// let mut health = TrainHealth::new(0.99, 1e4, 8);
/// for step in 0..20 {
///     let stats = TrainStats { critic_loss: 1.0, mean_q: 0.0 };
///     health.check(step, &stats).unwrap();
/// }
/// let spike = TrainStats { critic_loss: 1e9, mean_q: 0.0 };
/// assert!(health.check(20, &spike).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainHealth {
    ewma: Option<f64>,
    beta: f64,
    blowup_factor: f64,
    warmup: usize,
    checked: usize,
}

impl TrainHealth {
    /// Creates a watchdog with EWMA smoothing `beta` (0 < beta < 1; higher
    /// is smoother), trip multiplier `blowup_factor` (> 1) and `warmup`
    /// checks during which blow-up detection is suppressed (non-finite
    /// values always trip, even during warm-up).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    #[must_use]
    pub fn new(beta: f64, blowup_factor: f64, warmup: usize) -> Self {
        assert!(
            beta > 0.0 && beta < 1.0,
            "EWMA beta must be strictly inside (0, 1)"
        );
        assert!(
            blowup_factor.is_finite() && blowup_factor > 1.0,
            "blow-up factor must be finite and exceed 1"
        );
        TrainHealth {
            ewma: None,
            beta,
            blowup_factor,
            warmup,
            checked: 0,
        }
    }

    /// The defaults the MIRAS trainer uses: EWMA beta 0.99, trip at 10⁴×
    /// the moving average, 100-step warm-up.
    #[must_use]
    pub fn default_policy() -> Self {
        TrainHealth::new(0.99, 1e4, 100)
    }

    /// The current critic-loss EWMA, if any step has been observed yet.
    #[must_use]
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// Checks one step's statistics, updating the EWMA on success. `step`
    /// is the agent's lifetime train-step index, carried into errors for
    /// diagnostics.
    ///
    /// # Errors
    ///
    /// [`TrainError::NonFiniteLoss`] when the loss or mean Q is NaN/±∞;
    /// [`TrainError::CriticBlowup`] when, past warm-up, the loss exceeds
    /// `blowup_factor ×` the EWMA. On error the EWMA is left at its last
    /// good value (the caller rolls the agent back anyway).
    pub fn check(&mut self, step: u64, stats: &TrainStats) -> Result<(), TrainError> {
        if !stats.critic_loss.is_finite() || !stats.mean_q.is_finite() {
            return Err(TrainError::NonFiniteLoss {
                step,
                critic_loss: stats.critic_loss,
                mean_q: stats.mean_q,
            });
        }
        if self.checked >= self.warmup {
            if let Some(ewma) = self.ewma {
                // The max(EWMA, tiny) floor keeps a near-zero baseline from
                // tripping on any normal-sized loss.
                let baseline = ewma.max(1e-6);
                if stats.critic_loss > self.blowup_factor * baseline {
                    return Err(TrainError::CriticBlowup {
                        step,
                        critic_loss: stats.critic_loss,
                        ewma,
                        factor: self.blowup_factor,
                    });
                }
            }
        }
        self.ewma = Some(match self.ewma {
            Some(e) => self.beta * e + (1.0 - self.beta) * stats.critic_loss,
            None => stats.critic_loss,
        });
        self.checked += 1;
        Ok(())
    }

    /// Forgets all history (used after a rollback, when the restored agent's
    /// loss scale may differ from the diverged run's).
    pub fn reset(&mut self) {
        self.ewma = None;
        self.checked = 0;
    }
}

/// A DDPG agent (Lillicrap et al.) with the paper's constraint-aware actor
/// and parameter-space exploration.
///
/// The actor's output layer is a softmax over action dimensions, so actions
/// are always probability distributions; converting them into consumer
/// counts (`m_j = ⌊C · a_j⌋`, [`crate::policy::allocation_floor`]) can never
/// exceed the consumer budget.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Ddpg {
    actor: Mlp,
    actor_target: Mlp,
    perturbed_actor: Mlp,
    critic: Critic,
    critic_target: Critic,
    critic2: Option<Critic>,
    critic2_target: Option<Critic>,
    actor_opt: Adam,
    critic_trunk_opt: Adam,
    critic_head_opt: Adam,
    critic2_trunk_opt: Adam,
    critic2_head_opt: Adam,
    replay: ReplayBuffer,
    config: DdpgConfig,
    param_noise: Option<AdaptiveParamNoise>,
    action_noise: Option<OrnsteinUhlenbeck>,
    obs_norm: RunningNorm,
    reward_norm: RunningNorm,
    recent_states: Vec<Vec<f64>>,
    steps_since_resample: usize,
    rng: SmallRng,
    telemetry: Telemetry,
    train_steps_done: u64,
    /// Reused buffer for the normalised state in [`Ddpg::act_exploratory`],
    /// so single-lane rollouts stop allocating it every step. Pure scratch:
    /// excluded from snapshots and never read across calls.
    norm_buf: Vec<f64>,
}

/// How often (in train steps) the expensive target-network divergence
/// diagnostic is sampled when telemetry is enabled.
const TARGET_DIVERGENCE_EVERY: u64 = 100;

/// Maximum number of recent states kept for parameter-noise adaption.
const RECENT_STATES_CAP: usize = 128;

/// How often (in train steps) [`Ddpg::try_train_step`] scans network
/// weights for non-finite values. A full scan walks every parameter, so it
/// is sampled rather than run per step; a NaN weight also shows up as a NaN
/// loss on the very next minibatch that touches it.
const WEIGHT_CHECK_EVERY: u64 = 50;

impl Ddpg {
    /// Creates an agent for `state_dim`-dimensional states and
    /// `action_dim`-dimensional (simplex) actions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the config is degenerate.
    #[must_use]
    pub fn new(state_dim: usize, action_dim: usize, config: DdpgConfig) -> Self {
        assert!(
            state_dim > 0 && action_dim > 0,
            "dimensions must be positive"
        );
        assert!(config.batch_size > 0, "batch size must be positive");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut actor_sizes = vec![state_dim];
        actor_sizes.extend_from_slice(&config.hidden);
        actor_sizes.push(action_dim);
        let actor = Mlp::new(
            &actor_sizes,
            Activation::Relu,
            Activation::Softmax,
            &mut rng,
        );
        let critic = Critic::new(state_dim, action_dim, &config.hidden, &mut rng);
        let critic2 = config
            .twin_critic
            .then(|| Critic::new(state_dim, action_dim, &config.hidden, &mut rng));
        let actor_target = actor.clone();
        let critic_target = critic.clone();
        let critic2_target = critic2.clone();
        let perturbed_actor = actor.clone();

        let clip = config.grad_clip;
        let mk = |lr: f64| match clip {
            Some(c) => Adam::new(lr).with_clip_norm(c),
            None => Adam::new(lr),
        };

        let (param_noise, action_noise) = match config.exploration {
            Exploration::ParamNoise {
                initial_sigma,
                delta,
                alpha,
                ..
            } => (
                Some(AdaptiveParamNoise::new(initial_sigma, delta, alpha)),
                None,
            ),
            Exploration::ActionNoise { theta, sigma } => {
                (None, Some(OrnsteinUhlenbeck::new(action_dim, theta, sigma)))
            }
            Exploration::Greedy => (None, None),
        };

        let mut agent = Ddpg {
            actor_opt: mk(config.actor_lr),
            critic_trunk_opt: mk(config.critic_lr),
            critic_head_opt: mk(config.critic_lr),
            critic2_trunk_opt: mk(config.critic_lr),
            critic2_head_opt: mk(config.critic_lr),
            replay: ReplayBuffer::new(config.buffer_capacity),
            actor,
            actor_target,
            perturbed_actor,
            critic,
            critic_target,
            critic2,
            critic2_target,
            param_noise,
            action_noise,
            obs_norm: RunningNorm::new(state_dim),
            reward_norm: RunningNorm::new(1),
            recent_states: Vec::new(),
            steps_since_resample: 0,
            config,
            rng,
            telemetry: Telemetry::noop(),
            train_steps_done: 0,
            norm_buf: Vec::new(),
        };
        agent.resample_perturbation();
        agent
    }

    /// The greedy (deterministic) policy: a probability distribution over
    /// action dimensions. States pass through the running observation
    /// normaliser (as in OpenAI Baselines' DDPG, which the paper used).
    #[must_use]
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        self.actor.forward_one(&self.obs_norm.normalize(state))
    }

    /// An exploratory action according to the configured strategy. The
    /// result is always a valid distribution (action noise is projected back
    /// onto the simplex).
    pub fn act_exploratory(&mut self, state: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.act_exploratory_into(state, &mut out);
        out
    }

    /// [`Ddpg::act_exploratory`] writing into a caller-owned buffer
    /// (cleared and refilled), so tight rollout loops reuse one action
    /// allocation. Bitwise-identical results and RNG consumption.
    pub fn act_exploratory_into(&mut self, state: &[f64], out: &mut Vec<f64>) {
        self.remember_state(state);
        let mut z = std::mem::take(&mut self.norm_buf);
        self.obs_norm.normalize_into(state, &mut z);
        match &self.config.exploration {
            Exploration::ParamNoise { resample_every, .. } => {
                let resample_every = *resample_every;
                self.steps_since_resample += 1;
                if self.steps_since_resample >= resample_every {
                    self.adapt_and_resample();
                }
                self.perturbed_actor.forward_one_into(&z, out);
            }
            Exploration::ActionNoise { .. } => {
                self.actor.forward_one_into(&z, out);
                let noise = self
                    .action_noise
                    .as_mut()
                    .expect("action noise configured")
                    .sample(&mut self.rng);
                for (ai, ni) in out.iter_mut().zip(&noise) {
                    *ai += ni;
                }
                let projected = project_to_simplex(out);
                out.clear();
                out.extend_from_slice(&projected);
            }
            Exploration::Greedy => self.actor.forward_one_into(state, out),
        }
        self.norm_buf = z;
    }

    /// Exploratory actions for a whole batch of lockstep rollout lanes: row
    /// `i` of `states` is lane `i`'s state, row `i` of the result its action.
    ///
    /// The batch is processed with **one** actor forward instead of
    /// `states.rows()` separate GEMV calls — the point of lockstep rollouts.
    /// At batch size 1 this consumes RNG and mutates internal state exactly
    /// like one [`Ddpg::act_exploratory`] call, so `Lockstep(1)` training is
    /// bit-identical to sequential training. For larger batches the
    /// parameter-noise resample clock ticks once per *batched* step (all
    /// lanes share the same perturbation, resampled on the shared schedule)
    /// and, under action noise, OU draws are consumed in lane order —
    /// deterministic, but a different stream interleaving than B separate
    /// sequential rollouts would produce.
    ///
    /// # Panics
    ///
    /// Panics if `states` has no rows or a column count other than the
    /// agent's state dimension.
    pub fn act_exploratory_batch(&mut self, states: &Matrix) -> Matrix {
        assert!(states.rows() > 0, "need at least one lane");
        assert_eq!(
            states.cols(),
            self.obs_norm.dim(),
            "state dimension mismatch"
        );
        for r in 0..states.rows() {
            self.remember_state(states.row(r));
        }
        let mut z = Matrix::zeros(states.rows(), states.cols());
        let mut buf = std::mem::take(&mut self.norm_buf);
        for r in 0..states.rows() {
            self.obs_norm.normalize_into(states.row(r), &mut buf);
            z.row_mut(r).copy_from_slice(&buf);
        }
        self.norm_buf = buf;
        match &self.config.exploration {
            Exploration::ParamNoise { resample_every, .. } => {
                let resample_every = *resample_every;
                self.steps_since_resample += 1;
                if self.steps_since_resample >= resample_every {
                    self.adapt_and_resample();
                }
                self.perturbed_actor.forward(&z)
            }
            Exploration::ActionNoise { .. } => {
                let mut a = self.actor.forward(&z);
                for r in 0..a.rows() {
                    let noise = self
                        .action_noise
                        .as_mut()
                        .expect("action noise configured")
                        .sample(&mut self.rng);
                    let row = a.row_mut(r);
                    for (ai, ni) in row.iter_mut().zip(&noise) {
                        *ai += ni;
                    }
                    let projected = project_to_simplex(row);
                    row.copy_from_slice(&projected);
                }
                a
            }
            Exploration::Greedy => self.actor.forward(states),
        }
    }

    /// The raw (pre-projection) noisy action for the exploration ablation:
    /// with action noise this may leave the simplex — i.e. violate the
    /// consumer budget. Returns the greedy action for other strategies.
    pub fn act_exploratory_unprojected(&mut self, state: &[f64]) -> Vec<f64> {
        match &self.config.exploration {
            Exploration::ActionNoise { .. } => {
                let mut a = self.actor.forward_one(&self.obs_norm.normalize(state));
                let noise = self
                    .action_noise
                    .as_mut()
                    .expect("action noise configured")
                    .sample(&mut self.rng);
                for (ai, ni) in a.iter_mut().zip(&noise) {
                    *ai += ni;
                }
                a
            }
            _ => self.act_exploratory(state),
        }
    }

    /// Records a transition in the replay buffer. The reward is scaled by
    /// the configured `reward_scale` before storage.
    ///
    /// Transitions containing non-finite values are rejected by the buffer
    /// (see [`ReplayBuffer::push`]); each rejection increments the
    /// `replay.rejected_nonfinite` telemetry counter so poisoned inputs are
    /// visible instead of silently corrupting later minibatches.
    pub fn observe(&mut self, state: &[f64], action: &[f64], reward: f64, next_state: &[f64]) {
        let scaled = reward * self.config.reward_scale;
        let stored = self.replay.push(StoredTransition {
            state: state.to_vec(),
            action: action.to_vec(),
            reward: scaled,
            next_state: next_state.to_vec(),
        });
        if stored {
            // Running statistics are only fed accepted data, so a poisoned
            // observation cannot corrupt the normalisers either.
            self.obs_norm.update(state);
            self.reward_norm.update(&[scaled]);
        } else {
            self.telemetry.counter("replay.rejected_nonfinite", 1);
        }
    }

    /// Records one transition per lockstep lane, in lane order: row `i` of
    /// each matrix and `rewards[i]` form lane `i`'s transition. Equivalent
    /// to `rows` sequential [`Ddpg::observe`] calls.
    ///
    /// # Panics
    ///
    /// Panics if the row or reward counts disagree.
    pub fn observe_batch(
        &mut self,
        states: &Matrix,
        actions: &Matrix,
        rewards: &[f64],
        next_states: &Matrix,
    ) {
        let b = states.rows();
        assert_eq!(actions.rows(), b, "action row count mismatch");
        assert_eq!(next_states.rows(), b, "next-state row count mismatch");
        assert_eq!(rewards.len(), b, "reward count mismatch");
        for (r, &reward) in rewards.iter().enumerate() {
            self.observe(states.row(r), actions.row(r), reward, next_states.row(r));
        }
    }

    /// Runs one minibatch update (critic, actor, target networks). Returns
    /// `None` while the replay buffer holds fewer than `batch_size`
    /// transitions.
    pub fn train_step(&mut self) -> Option<TrainStats> {
        let b = self.config.batch_size;
        if self.replay.len() < b {
            return None;
        }
        let batch = self.replay.sample(b, &mut self.rng);
        // Replay stores raw states; normalise with the *current* running
        // statistics at batch-build time.
        let state_rows: Vec<Vec<f64>> = batch
            .iter()
            .map(|t| self.obs_norm.normalize(&t.state))
            .collect();
        let next_rows: Vec<Vec<f64>> = batch
            .iter()
            .map(|t| self.obs_norm.normalize(&t.next_state))
            .collect();
        let states = Matrix::from_rows(&state_rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let actions = Matrix::from_rows(
            &batch
                .iter()
                .map(|t| t.action.as_slice())
                .collect::<Vec<_>>(),
        );
        let rewards: Vec<f64> = if self.config.normalize_rewards {
            batch
                .iter()
                .map(|t| self.reward_norm.normalize(&[t.reward])[0])
                .collect()
        } else {
            batch.iter().map(|t| t.reward).collect()
        };
        let next_states =
            Matrix::from_rows(&next_rows.iter().map(Vec::as_slice).collect::<Vec<_>>());

        // Critic target: y = r + γ · Q'(s', μ'(s')); with a twin critic the
        // clipped double-Q minimum of both target critics is used (TD3).
        let next_actions = self.actor_target.forward(&next_states);
        let next_q = self.critic_target.q(&next_states, &next_actions);
        let next_q2 = self
            .critic2_target
            .as_ref()
            .map(|c| c.q(&next_states, &next_actions));
        let mut targets = Matrix::zeros(b, 1);
        for (i, &r) in rewards.iter().enumerate() {
            let mut q = next_q.get(i, 0);
            if let Some(q2) = &next_q2 {
                q = q.min(q2.get(i, 0));
            }
            targets.set(i, 0, r + self.config.gamma * q);
        }
        let critic_loss = self.critic.train(
            &states,
            &actions,
            &targets,
            &mut self.critic_trunk_opt,
            &mut self.critic_head_opt,
        );
        if let Some(c2) = &mut self.critic2 {
            let _ = c2.train(
                &states,
                &actions,
                &targets,
                &mut self.critic2_trunk_opt,
                &mut self.critic2_head_opt,
            );
        }

        // Actor: ascend ∂Q/∂a through the deterministic policy gradient,
        // plus an entropy bonus that prevents softmax-vertex collapse.
        // Loss = −Q − β·H(a); with H = −Σ a ln a the output gradient is
        // −∂Q/∂a + β (ln a + 1), averaged over the batch. Sharded like the
        // critic update: per-shard gradients scale by the full batch size,
        // so their ordered sum is the full-batch gradient.
        let beta = self.config.entropy_weight;
        let inv_b = 1.0 / b as f64;
        let ranges = shard_ranges(b);
        let (actor, critic) = (&self.actor, &self.critic);
        let shards = run_sharded(&ranges, |(r0, r1)| {
            let s = states.rows_range(r0, r1);
            let trace = actor.forward_cached(&s);
            let policy_actions = trace.output();
            let q_sum: f64 = critic.q(&s, policy_actions).as_slice().iter().sum();
            let mut d_out = critic.action_gradient(&s, policy_actions);
            d_out.scale_in_place(-inv_b);
            if beta > 0.0 {
                for r in 0..d_out.rows() {
                    for c in 0..d_out.cols() {
                        let a = policy_actions.get(r, c).max(1e-8);
                        let g = d_out.get(r, c) + beta * (a.ln() + 1.0) * inv_b;
                        d_out.set(r, c, g);
                    }
                }
            }
            let (_, grads) = actor.backward(&trace, &d_out);
            (q_sum, grads)
        });
        let mut iter = shards.into_iter();
        let (mut q_sum, mut grads) = iter.next().expect("at least one shard");
        for (q_part, g_part) in iter {
            q_sum += q_part;
            for (a, g) in grads.iter_mut().zip(&g_part) {
                a.accumulate(g);
            }
        }
        let mean_q = q_sum * inv_b;
        self.actor.apply_gradients(&mut grads, &mut self.actor_opt);

        // Polyak updates.
        self.actor_target
            .soft_update_from(&self.actor, self.config.tau);
        self.critic_target
            .soft_update_from(&self.critic, self.config.tau);
        if let (Some(t), Some(c)) = (&mut self.critic2_target, &self.critic2) {
            t.soft_update_from(c, self.config.tau);
        }

        self.train_steps_done += 1;
        if self.telemetry.is_enabled() {
            self.telemetry.counter("ddpg.train_steps", 1);
            self.telemetry.gauge("ddpg.critic_loss", critic_loss);
            self.telemetry.gauge("ddpg.mean_q", mean_q);
            self.telemetry.observe("ddpg.critic_loss", critic_loss);
            if self
                .train_steps_done
                .is_multiple_of(TARGET_DIVERGENCE_EVERY)
            {
                self.telemetry
                    .gauge("ddpg.target_divergence", self.target_divergence());
            }
        }

        Some(TrainStats {
            critic_loss,
            mean_q,
        })
    }

    /// Runs one minibatch update under the divergence watchdog.
    ///
    /// Semantically [`Ddpg::train_step`] followed by `health.check` — plus a
    /// periodic (every [`WEIGHT_CHECK_EVERY`] steps) scan of all network
    /// weights for non-finite values. Returns `Ok(None)` while the replay
    /// buffer is still filling.
    ///
    /// # Errors
    ///
    /// Propagates the watchdog's [`TrainError`]s; additionally raises
    /// [`TrainError::NonFiniteWeights`] when the weight scan finds NaN/±∞.
    /// On error the agent's weights are in an unknown (possibly poisoned)
    /// state — the caller is expected to roll back to a checkpoint.
    pub fn try_train_step(
        &mut self,
        health: &mut TrainHealth,
    ) -> Result<Option<TrainStats>, TrainError> {
        let Some(stats) = self.train_step() else {
            return Ok(None);
        };
        let step = self.train_steps_done;
        health.check(step, &stats)?;
        if step.is_multiple_of(WEIGHT_CHECK_EVERY) && !self.weights_are_finite() {
            return Err(TrainError::NonFiniteWeights { step });
        }
        Ok(Some(stats))
    }

    /// Whether every weight of every network (actor, critics, targets) is
    /// finite. A full parameter walk — prefer the sampled check inside
    /// [`Ddpg::try_train_step`] on hot paths.
    #[must_use]
    pub fn weights_are_finite(&self) -> bool {
        let mlp_ok = |m: &Mlp| m.flat_params().iter().all(|w| w.is_finite());
        let critic_ok = |c: &Critic| mlp_ok(&c.trunk) && mlp_ok(&c.head);
        mlp_ok(&self.actor)
            && mlp_ok(&self.actor_target)
            && critic_ok(&self.critic)
            && critic_ok(&self.critic_target)
            && self.critic2.as_ref().is_none_or(critic_ok)
            && self.critic2_target.as_ref().is_none_or(critic_ok)
    }

    /// Halves the parameter-noise scale (no-op under other exploration
    /// strategies). The watchdog calls this after a rollback: divergence
    /// under parameter noise usually means exploration kicked the policy
    /// somewhere the critic cannot follow, so the retry explores more
    /// gently.
    pub fn halve_param_noise(&mut self) {
        if let Some(noise) = &mut self.param_noise {
            noise.scale_sigma(0.5);
        }
    }

    /// Replaces the agent's RNG stream with one seeded from `seed` and
    /// draws a fresh perturbation from it. Used after a rollback so the
    /// retry does not replay the exact random choices that led to the
    /// failure.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
        self.resample_perturbation();
    }

    /// Captures the agent's complete state — networks, target networks,
    /// optimiser moments, replay buffer, exploration state, normalisers and
    /// the RNG stream — as a serialisable snapshot. Restoring with
    /// [`Ddpg::from_snapshot`] resumes training bit-identically.
    #[must_use]
    pub fn snapshot(&self) -> DdpgSnapshot {
        DdpgSnapshot {
            actor: self.actor.clone(),
            actor_target: self.actor_target.clone(),
            perturbed_actor: self.perturbed_actor.clone(),
            critic: self.critic.clone(),
            critic_target: self.critic_target.clone(),
            critic2: self.critic2.clone(),
            critic2_target: self.critic2_target.clone(),
            actor_opt: self.actor_opt.clone(),
            critic_trunk_opt: self.critic_trunk_opt.clone(),
            critic_head_opt: self.critic_head_opt.clone(),
            critic2_trunk_opt: self.critic2_trunk_opt.clone(),
            critic2_head_opt: self.critic2_head_opt.clone(),
            replay: self.replay.clone(),
            config: self.config.clone(),
            param_noise: self.param_noise.clone(),
            action_noise: self.action_noise.clone(),
            obs_norm: self.obs_norm.clone(),
            reward_norm: self.reward_norm.clone(),
            recent_states: self.recent_states.clone(),
            steps_since_resample: self.steps_since_resample,
            rng_state: self.rng.state(),
            train_steps_done: self.train_steps_done,
        }
    }

    /// Rebuilds an agent from a [`Ddpg::snapshot`] capture. Telemetry is
    /// detached (re-attach with [`Ddpg::set_telemetry`]).
    #[must_use]
    pub fn from_snapshot(s: DdpgSnapshot) -> Self {
        Ddpg {
            actor: s.actor,
            actor_target: s.actor_target,
            perturbed_actor: s.perturbed_actor,
            critic: s.critic,
            critic_target: s.critic_target,
            critic2: s.critic2,
            critic2_target: s.critic2_target,
            actor_opt: s.actor_opt,
            critic_trunk_opt: s.critic_trunk_opt,
            critic_head_opt: s.critic_head_opt,
            critic2_trunk_opt: s.critic2_trunk_opt,
            critic2_head_opt: s.critic2_head_opt,
            replay: s.replay,
            config: s.config,
            param_noise: s.param_noise,
            action_noise: s.action_noise,
            obs_norm: s.obs_norm,
            reward_norm: s.reward_norm,
            recent_states: s.recent_states,
            steps_since_resample: s.steps_since_resample,
            rng: SmallRng::from_state(s.rng_state),
            telemetry: Telemetry::noop(),
            train_steps_done: s.train_steps_done,
            norm_buf: Vec::new(),
        }
    }

    /// Mean absolute parameter gap between the actor and its Polyak target —
    /// a read-only diagnostic of how far the target network lags.
    #[must_use]
    pub fn target_divergence(&self) -> f64 {
        let a = self.actor.flat_params();
        let t = self.actor_target.flat_params();
        if a.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = a.len() as f64;
        a.iter().zip(&t).map(|(x, y)| (x - y).abs()).sum::<f64>() / n
    }

    /// Attaches a telemetry handle: each train step records its critic loss
    /// and mean Q, sigma adaptions emit `ddpg.sigma_adapt` events, and the
    /// target-network divergence is sampled periodically. Recording is
    /// observability-only — training results stay bit-identical.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of transitions currently stored.
    #[must_use]
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// The current parameter-noise scale, when parameter noise is active.
    #[must_use]
    pub fn param_noise_sigma(&self) -> Option<f64> {
        self.param_noise.as_ref().map(AdaptiveParamNoise::sigma)
    }

    /// Read access to the greedy actor network.
    #[must_use]
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// Read access to the critic.
    #[must_use]
    pub fn critic(&self) -> &Critic {
        &self.critic
    }

    /// The running observation normaliser (fed by [`Ddpg::observe`]).
    #[must_use]
    pub fn obs_normalizer(&self) -> &RunningNorm {
        &self.obs_norm
    }

    /// Folds a state into the observation normaliser without storing a
    /// transition — used when collecting environment-model data that never
    /// enters the replay buffer (MIRAS's collection phase).
    pub fn observe_state(&mut self, state: &[f64]) {
        self.obs_norm.update(state);
    }

    /// Mutable access to the replay buffer. This is a fault-injection /
    /// testing hook (e.g. poisoning a batch via
    /// [`ReplayBuffer::push_unchecked`] to exercise the divergence
    /// watchdog); normal experience flows through [`Ddpg::observe`].
    pub fn replay_mut(&mut self) -> &mut ReplayBuffer {
        &mut self.replay
    }

    /// Forces a fresh perturbation of the exploration actor (e.g. at episode
    /// boundaries).
    pub fn resample_perturbation(&mut self) {
        if let Some(noise) = &self.param_noise {
            let sigma = noise.sigma();
            self.perturbed_actor.copy_params_from(&self.actor);
            self.perturbed_actor
                .add_parameter_noise(sigma, &mut self.rng);
        }
        if let Some(ou) = &mut self.action_noise {
            ou.reset();
        }
        self.steps_since_resample = 0;
    }

    fn remember_state(&mut self, state: &[f64]) {
        if self.recent_states.len() >= RECENT_STATES_CAP {
            self.recent_states.remove(0);
        }
        self.recent_states.push(state.to_vec());
    }

    /// Measures the action-space distance the current perturbation induces
    /// on recent states, adapts sigma, and re-perturbs.
    fn adapt_and_resample(&mut self) {
        if let Some(noise) = &mut self.param_noise {
            if !self.recent_states.is_empty() {
                let normed: Vec<Vec<f64>> = self
                    .recent_states
                    .iter()
                    .map(|s| self.obs_norm.normalize(s))
                    .collect();
                let rows: Vec<&[f64]> = normed.iter().map(Vec::as_slice).collect();
                let states = Matrix::from_rows(&rows);
                let clean = self.actor.forward(&states);
                let noisy = self.perturbed_actor.forward(&states);
                let diff = &clean - &noisy;
                let mse = diff.as_slice().iter().map(|&v| v * v).sum::<f64>()
                    / diff.as_slice().len() as f64;
                let distance = mse.sqrt();
                noise.adapt(distance);
                if self.telemetry.is_enabled() {
                    let sigma = noise.sigma();
                    self.telemetry.gauge("ddpg.sigma", sigma);
                    self.telemetry.event(
                        "ddpg.sigma_adapt",
                        &[
                            ("sigma", telemetry::Value::Float(sigma)),
                            ("action_distance", telemetry::Value::Float(distance)),
                        ],
                    );
                }
            }
        }
        self.resample_perturbation();
    }

    /// A frozen, self-contained copy of the *acting-side* weights: the
    /// deterministic actor, the observation normaliser it acts through, and
    /// (under parameter-space exploration) the current noise scale σ.
    ///
    /// This is the unit of the distributed trainer's versioned weight
    /// broadcast: the learner snapshots it after each ordered merge, stamps
    /// a version number on it, and rollout workers act on the copy without
    /// ever touching the live agent.
    #[must_use]
    pub fn policy_weights(&self) -> PolicyWeights {
        PolicyWeights {
            actor: self.actor.clone(),
            obs_norm: self.obs_norm.clone(),
            sigma: self.param_noise.as_ref().map(AdaptiveParamNoise::sigma),
        }
    }
}

/// The complete serialisable state of a [`Ddpg`] agent, produced by
/// [`Ddpg::snapshot`] and consumed by [`Ddpg::from_snapshot`].
///
/// Fields are intentionally private: the snapshot is an opaque token whose
/// only contract is bit-identical resume. It exists as a separate type
/// (rather than serde on `Ddpg` itself) because the RNG stream and the
/// telemetry handle need explicit translation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdpgSnapshot {
    actor: Mlp,
    actor_target: Mlp,
    perturbed_actor: Mlp,
    critic: Critic,
    critic_target: Critic,
    critic2: Option<Critic>,
    critic2_target: Option<Critic>,
    actor_opt: Adam,
    critic_trunk_opt: Adam,
    critic_head_opt: Adam,
    critic2_trunk_opt: Adam,
    critic2_head_opt: Adam,
    replay: ReplayBuffer,
    config: DdpgConfig,
    param_noise: Option<AdaptiveParamNoise>,
    action_noise: Option<OrnsteinUhlenbeck>,
    obs_norm: RunningNorm,
    reward_norm: RunningNorm,
    recent_states: Vec<Vec<f64>>,
    steps_since_resample: usize,
    rng_state: [u64; 4],
    train_steps_done: u64,
}

/// The acting-side weights of a [`Ddpg`] agent, frozen at a point in time
/// (see [`Ddpg::policy_weights`]).
///
/// A `PolicyWeights` value is immutable and self-contained — it carries the
/// actor network, the running observation normaliser, and the
/// parameter-noise scale σ (when parameter-space exploration is configured).
/// Turn it into an executable policy with [`PolicyWeights::perturbed`]
/// (exploration: one fresh weight-space perturbation, as the lockstep loop
/// draws at each wave boundary) or [`PolicyWeights::greedy`] (no noise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyWeights {
    actor: Mlp,
    obs_norm: RunningNorm,
    sigma: Option<f64>,
}

impl PolicyWeights {
    /// The parameter-noise scale σ carried by this snapshot, if the agent
    /// explores in parameter space.
    #[must_use]
    pub fn sigma(&self) -> Option<f64> {
        self.sigma
    }

    /// The frozen actor network.
    #[must_use]
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// An executable exploratory policy: a copy of the actor with one
    /// weight-space perturbation of scale σ drawn from `rng` (the same
    /// Gaussian perturbation [`Ddpg::resample_perturbation`] applies at a
    /// rollout boundary, drawn with the ziggurat sampler — this is the hot
    /// path of distributed rollout workers, which re-perturb at every wave).
    /// With no σ — greedy exploration — the actor is used as-is and `rng`
    /// is not consumed.
    #[must_use]
    pub fn perturbed<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> FrozenPolicy {
        let mut actor = self.actor.clone();
        if let Some(sigma) = self.sigma {
            actor.add_parameter_noise_fast(sigma, rng);
        }
        FrozenPolicy {
            actor,
            obs_norm: self.obs_norm.clone(),
            norm_buf: Vec::new(),
        }
    }

    /// The greedy (noise-free) executable policy for these weights.
    #[must_use]
    pub fn greedy(&self) -> FrozenPolicy {
        FrozenPolicy {
            actor: self.actor.clone(),
            obs_norm: self.obs_norm.clone(),
            norm_buf: Vec::new(),
        }
    }
}

/// An immutable executable policy derived from a [`PolicyWeights`]
/// snapshot: states pass through the frozen observation normaliser and one
/// (possibly noise-perturbed) actor forward. Unlike
/// [`Ddpg::act_exploratory_batch`] it keeps **no** clocks, recent-state
/// window, or RNG — acting on a `FrozenPolicy` is a pure function of the
/// snapshot, which is what makes distributed rollout waves replayable.
#[derive(Debug, Clone)]
pub struct FrozenPolicy {
    actor: Mlp,
    obs_norm: RunningNorm,
    /// Scratch for per-row normalisation; never read across calls.
    norm_buf: Vec<f64>,
}

impl FrozenPolicy {
    /// Actions for a batch of lane states (row `i` of `states` is lane
    /// `i`'s state, row `i` of the result its action distribution), through
    /// one batched actor forward.
    ///
    /// # Panics
    ///
    /// Panics if `states` has no rows or a column count other than the
    /// normaliser's dimension.
    #[must_use]
    pub fn act_batch(&mut self, states: &Matrix) -> Matrix {
        assert!(states.rows() > 0, "need at least one lane");
        assert_eq!(
            states.cols(),
            self.obs_norm.dim(),
            "state dimension mismatch"
        );
        let mut z = Matrix::zeros(states.rows(), states.cols());
        for r in 0..states.rows() {
            self.obs_norm
                .normalize_into(states.row(r), &mut self.norm_buf);
            z.row_mut(r).copy_from_slice(&self.norm_buf);
        }
        self.actor.forward(&z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> DdpgConfig {
        DdpgConfig::small_test(seed)
    }

    #[test]
    fn actions_are_distributions() {
        let agent = Ddpg::new(3, 4, config(0));
        let a = agent.act(&[1.0, 2.0, 3.0]);
        assert_eq!(a.len(), 4);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(a.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn exploratory_actions_stay_on_simplex() {
        let mut cfg = config(1);
        cfg.exploration = Exploration::ActionNoise {
            theta: 0.15,
            sigma: 0.4,
        };
        let mut agent = Ddpg::new(2, 3, cfg);
        for i in 0..50 {
            let a = agent.act_exploratory(&[i as f64, 0.0]);
            assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(a.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn unprojected_action_noise_leaves_simplex() {
        let mut cfg = config(2);
        cfg.exploration = Exploration::ActionNoise {
            theta: 0.15,
            sigma: 0.5,
        };
        let mut agent = Ddpg::new(2, 3, cfg);
        let mut violated = false;
        for i in 0..100 {
            let a = agent.act_exploratory_unprojected(&[i as f64, 1.0]);
            let sum: f64 = a.iter().sum();
            if (sum - 1.0).abs() > 1e-6 || a.iter().any(|&p| p < 0.0) {
                violated = true;
            }
        }
        assert!(violated, "raw action noise should violate the simplex");
    }

    #[test]
    fn param_noise_perturbs_policy() {
        let mut agent = Ddpg::new(2, 3, config(3));
        let s = [0.5, -0.5];
        let clean = agent.act(&s);
        let noisy = agent.act_exploratory(&s);
        let dist: f64 = clean.iter().zip(&noisy).map(|(a, b)| (a - b).abs()).sum();
        assert!(dist > 0.0, "perturbed actor should differ");
    }

    #[test]
    fn train_step_needs_enough_data() {
        let mut agent = Ddpg::new(2, 2, config(4));
        assert!(agent.train_step().is_none());
        for i in 0..8 {
            agent.observe(&[i as f64, 0.0], &[0.5, 0.5], 0.0, &[i as f64 + 1.0, 0.0]);
        }
        assert!(agent.train_step().is_some());
    }

    #[test]
    fn learns_reward_maximising_action_on_bandit() {
        // A stateless bandit: reward = a[0] (first dimension as large as
        // possible). DDPG should push the policy toward (1, 0).
        let mut cfg = config(5);
        cfg.actor_lr = 1e-2;
        cfg.critic_lr = 1e-2;
        let mut agent = Ddpg::new(1, 2, cfg);
        let s = [1.0];
        for _ in 0..1200 {
            let a = agent.act_exploratory(&s);
            let reward = a[0];
            agent.observe(&s, &a, reward, &s);
            agent.train_step();
        }
        let a = agent.act(&s);
        assert!(a[0] > 0.7, "policy did not concentrate: {a:?}");
    }

    #[test]
    fn critic_converges_on_fixed_targets() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut critic = Critic::new(2, 2, &[16, 16], &mut rng);
        let mut t_opt = Adam::new(1e-2);
        let mut h_opt = Adam::new(1e-2);
        let s = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let a = Matrix::from_rows(&[&[0.3, 0.7], &[0.9, 0.1]]);
        let y = Matrix::from_rows(&[&[2.0], &[-1.0]]);
        let mut loss = f64::INFINITY;
        for _ in 0..500 {
            loss = critic.train(&s, &a, &y, &mut t_opt, &mut h_opt);
        }
        assert!(loss < 1e-2, "loss {loss}");
    }

    #[test]
    fn critic_action_gradient_matches_finite_diff() {
        let mut rng = SmallRng::seed_from_u64(7);
        let critic = Critic::new(2, 3, &[8, 8], &mut rng);
        let s = Matrix::from_rows(&[&[0.4, -0.2]]);
        let a = Matrix::from_rows(&[&[0.2, 0.5, 0.3]]);
        let grad = critic.action_gradient(&s, &a);
        let eps = 1e-6;
        for c in 0..3 {
            let mut ap = a.clone();
            let mut am = a.clone();
            ap.set(0, c, a.get(0, c) + eps);
            am.set(0, c, a.get(0, c) - eps);
            let numeric = (critic.q(&s, &ap).get(0, 0) - critic.q(&s, &am).get(0, 0)) / (2.0 * eps);
            assert!((numeric - grad.get(0, c)).abs() < 1e-5, "dim {c}");
        }
    }

    #[test]
    fn target_networks_track_online_networks() {
        let mut agent = Ddpg::new(2, 2, config(8));
        for i in 0..16 {
            agent.observe(&[i as f64, 0.0], &[0.5, 0.5], 1.0, &[i as f64, 1.0]);
        }
        let before = agent.actor_target.flat_params();
        for _ in 0..20 {
            agent.train_step();
        }
        let after = agent.actor_target.flat_params();
        assert_ne!(before, after, "target should move");
    }

    #[test]
    fn sigma_adapts_over_time() {
        let mut agent = Ddpg::new(2, 2, config(9));
        let initial = agent.param_noise_sigma().unwrap();
        for i in 0..100 {
            let _ = agent.act_exploratory(&[i as f64 * 0.01, 0.0]);
        }
        let later = agent.param_noise_sigma().unwrap();
        assert_ne!(initial, later, "sigma should adapt");
    }

    #[test]
    fn entropy_bonus_resists_vertex_collapse() {
        // An adversarial critic signal that always favours dimension 0 drives
        // an unregularised softmax actor to the one-hot vertex; with the
        // entropy bonus it stays strictly inside the simplex.
        let train = |beta: f64| {
            let mut cfg = config(11);
            cfg.entropy_weight = beta;
            cfg.actor_lr = 1e-2;
            cfg.critic_lr = 1e-2;
            let mut agent = Ddpg::new(1, 3, cfg);
            let s = [1.0];
            for _ in 0..800 {
                let a = agent.act_exploratory(&s);
                // Reward grows with a[0] without bound preference elsewhere.
                agent.observe(&s, &a, 5.0 * a[0], &s);
                agent.train_step();
            }
            agent.act(&s)
        };
        let collapsed = train(0.0);
        let regularised = train(1.0);
        let min_collapsed = collapsed.iter().cloned().fold(f64::INFINITY, f64::min);
        let min_regularised = regularised.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            min_regularised > min_collapsed,
            "entropy should keep mass on all dimensions: {collapsed:?} vs {regularised:?}"
        );
        assert!(min_regularised > 1e-3, "{regularised:?}");
    }

    #[test]
    fn observation_normalizer_feeds_from_observe() {
        let mut agent = Ddpg::new(2, 2, config(12));
        assert_eq!(agent.obs_normalizer().count(), 0);
        agent.observe(&[1.0, 2.0], &[0.5, 0.5], 0.0, &[1.0, 2.0]);
        agent.observe_state(&[3.0, 4.0]);
        assert_eq!(agent.obs_normalizer().count(), 2);
    }

    #[test]
    fn twin_critic_trains_and_converges_toward_true_value() {
        // Constant reward 1 with γ = 0.9: the true Q is 10 everywhere.
        // Both variants must converge near it; the twin (clipped double-Q)
        // estimate must not exceed the single-critic estimate at the same
        // training step count.
        let run = |twin: bool| {
            let mut cfg = config(13);
            cfg.twin_critic = twin;
            let mut agent = Ddpg::new(2, 2, cfg);
            // A 32-state ring with constant reward: every next state is
            // itself an observed state, so the observation normaliser covers
            // the whole bootstrap domain.
            for i in 0..32u32 {
                let s = [f64::from(i), f64::from(i % 4)];
                let next = [f64::from((i + 1) % 32), f64::from((i + 1) % 4)];
                agent.observe(&s, &[0.5, 0.5], 1.0, &next);
            }
            let mut last = None;
            for _ in 0..400 {
                last = agent.train_step();
            }
            last.unwrap().mean_q
        };
        let q_single = run(false);
        let q_twin = run(true);
        assert!((q_single - 10.0).abs() < 3.0, "single Q {q_single}");
        assert!((q_twin - 10.0).abs() < 3.0, "twin Q {q_twin}");
        assert!(
            q_twin <= q_single + 0.5,
            "twin Q {q_twin} vs single Q {q_single}"
        );
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let drive = |agent: &mut Ddpg, start: usize, steps: usize| {
            let mut outs = Vec::new();
            for i in start..start + steps {
                let s = [i as f64 * 0.1, 1.0];
                let a = agent.act_exploratory(&s);
                agent.observe(&s, &a, a[0], &s);
                let stats = agent.train_step();
                outs.push((a, stats));
            }
            outs
        };
        let mut uninterrupted = Ddpg::new(2, 2, config(21));
        let mut resumed = Ddpg::new(2, 2, config(21));
        drive(&mut uninterrupted, 0, 25);
        drive(&mut resumed, 0, 25);
        // Round-trip through JSON mid-run.
        let json = serde_json::to_string(&resumed.snapshot()).unwrap();
        let mut resumed = Ddpg::from_snapshot(serde_json::from_str(&json).unwrap());
        let a = drive(&mut uninterrupted, 25, 25);
        let b = drive(&mut resumed, 25, 25);
        assert_eq!(a, b);
        assert_eq!(uninterrupted.snapshot(), resumed.snapshot());
    }

    #[test]
    fn health_trips_on_non_finite_loss() {
        let mut health = TrainHealth::new(0.99, 1e4, 0);
        let bad = TrainStats {
            critic_loss: f64::NAN,
            mean_q: 0.0,
        };
        match health.check(7, &bad) {
            Err(TrainError::NonFiniteLoss { step: 7, .. }) => {}
            other => panic!("expected NonFiniteLoss, got {other:?}"),
        }
    }

    #[test]
    fn health_trips_on_blowup_after_warmup_only() {
        let mut health = TrainHealth::new(0.99, 100.0, 5);
        let normal = TrainStats {
            critic_loss: 1.0,
            mean_q: 0.0,
        };
        let spike = TrainStats {
            critic_loss: 1e6,
            mean_q: 0.0,
        };
        // During warm-up even a huge finite spike passes.
        health.check(0, &normal).unwrap();
        health.check(1, &spike).unwrap();
        health.reset();
        for i in 0..5 {
            health.check(i, &normal).unwrap();
        }
        match health.check(5, &spike) {
            Err(TrainError::CriticBlowup { .. }) => {}
            other => panic!("expected CriticBlowup, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_replay_trips_watchdog_via_try_train_step() {
        let mut agent = Ddpg::new(2, 2, config(22));
        for i in 0..8 {
            let s = [i as f64, 0.0];
            agent.observe(&s, &[0.5, 0.5], 0.0, &s);
        }
        // Inject a NaN batch the validated path would have rejected.
        for _ in 0..8 {
            agent.replay_mut().push_unchecked(StoredTransition {
                state: vec![0.0, 0.0],
                action: vec![0.5, 0.5],
                reward: f64::NAN,
                next_state: vec![0.0, 0.0],
            });
        }
        let mut health = TrainHealth::new(0.99, 1e4, 0);
        let mut tripped = false;
        for _ in 0..50 {
            if agent.try_train_step(&mut health).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "NaN batch must trip the watchdog");
    }

    #[test]
    fn recovery_helpers_halve_sigma_and_reseed() {
        let mut agent = Ddpg::new(2, 2, config(23));
        let sigma = agent.param_noise_sigma().unwrap();
        agent.halve_param_noise();
        assert!((agent.param_noise_sigma().unwrap() - sigma / 2.0).abs() < 1e-15);
        // Reseeding with the same seed gives identical subsequent streams.
        let mut twin = agent.clone();
        agent.reseed(99);
        twin.reseed(99);
        let s = [0.3, 0.7];
        assert_eq!(agent.act_exploratory(&s), twin.act_exploratory(&s));
    }

    #[test]
    fn observe_rejects_non_finite_and_counts() {
        use telemetry::{JsonlSink, Recorder, Telemetry};
        let sink = JsonlSink::in_memory();
        let mut agent = Ddpg::new(2, 2, config(24));
        agent.set_telemetry(Telemetry::new(sink.clone()));
        agent.observe(&[0.0, 0.0], &[0.5, 0.5], f64::NAN, &[1.0, 1.0]);
        assert_eq!(agent.replay_len(), 0);
        assert_eq!(agent.obs_normalizer().count(), 0);
        agent.observe(&[0.0, 0.0], &[0.5, 0.5], 1.0, &[1.0, 1.0]);
        assert_eq!(agent.replay_len(), 1);
        Recorder::flush(&*sink);
        let text = String::from_utf8(sink.take_output()).unwrap();
        assert!(text.contains("replay.rejected_nonfinite"));
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let run = |seed| {
            let mut agent = Ddpg::new(2, 2, config(seed));
            let mut outs = Vec::new();
            for i in 0..30 {
                let s = [i as f64 * 0.1, 1.0];
                let a = agent.act_exploratory(&s);
                agent.observe(&s, &a, a[0], &s);
                agent.train_step();
                outs.push(a);
            }
            outs
        };
        assert_eq!(run(42), run(42));
    }

    /// The greedy frozen policy reproduces [`Ddpg::act`] bit for bit, row
    /// by row — it is the same normaliser and actor, just detached.
    #[test]
    fn frozen_greedy_policy_matches_act() {
        let mut agent = Ddpg::new(2, 3, config(50));
        for i in 0..20 {
            let s = [i as f64 * 0.3, 1.0];
            let a = agent.act_exploratory(&s);
            agent.observe(&s, &a, a[0], &s);
        }
        let mut frozen = agent.policy_weights().greedy();
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 0.5]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let batch = frozen.act_batch(&Matrix::from_rows(&refs));
        for (i, s) in rows.iter().enumerate() {
            let expected = agent.act(s);
            assert_eq!(expected.as_slice(), batch.row(i), "row {i}");
        }
    }

    /// Perturbing frozen weights is a pure function of the RNG state: two
    /// perturbations from identically seeded streams act identically, a
    /// different stream acts differently.
    #[test]
    fn frozen_perturbation_is_deterministic_in_the_rng() {
        let agent = Ddpg::new(2, 3, config(51));
        let weights = agent.policy_weights();
        assert!(weights.sigma().is_some());
        let s = Matrix::from_rows(&[&[0.4, 0.6], &[5.0, 1.0]]);
        let mut a = weights
            .perturbed(&mut SmallRng::seed_from_u64(9))
            .act_batch(&s);
        let b = weights
            .perturbed(&mut SmallRng::seed_from_u64(9))
            .act_batch(&s);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = weights
            .perturbed(&mut SmallRng::seed_from_u64(10))
            .act_batch(&s);
        assert_ne!(a.as_slice(), c.as_slice());
        // The perturbation never leaks back into the snapshot.
        a = weights.greedy().act_batch(&s);
        let d = agent.policy_weights().greedy().act_batch(&s);
        assert_eq!(a.as_slice(), d.as_slice());
    }
}
