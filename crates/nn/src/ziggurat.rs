//! Ziggurat sampler for the standard normal distribution.
//!
//! [`standard_normal`] draws N(0, 1) variates with the Marsaglia–Tsang
//! ziggurat method (128 layers): the common path (~98.5% of draws) costs
//! one 64-bit RNG word, one table lookup, one multiply, and one compare —
//! no `ln`/`sqrt`/`sin_cos` — which is roughly 5× cheaper per variate than
//! the Box–Muller transform on scalar hardware. The rare rejection paths
//! (wedge and tail) fall back to exact transcendental evaluation, so the
//! sampled distribution is exact, not approximate.
//!
//! The draw pattern (how many RNG words each variate consumes) is
//! deterministic for a given RNG stream, which keeps replay and
//! checkpoint-resume of code built on this sampler bit-reproducible.

use std::sync::OnceLock;

use rand::Rng;

/// Number of ziggurat layers (rectangles).
const LAYERS: usize = 128;

/// Right edge of the base strip: `x₁` in Marsaglia–Tsang (2000) for 128
/// layers.
const R: f64 = 3.442_619_855_899;

/// Common area of every layer (and of the base strip + tail).
const V: f64 = 9.912_563_035_262_17e-3;

/// `2⁻⁵³`: maps the top 53 bits of a `u64` onto `[0, 1)`.
const SCALE: f64 = 1.0 / (1u64 << 53) as f64;

struct Tables {
    /// Layer right edges, descending: `x[1] = R`, `x[128] = 0`. `x[0]` is
    /// the *virtual* width `V / f(R)` of the base strip so the common-path
    /// test below covers the tail layer with the same arithmetic.
    x: [f64; LAYERS + 1],
    /// `f(x[i]) = exp(-x[i]²/2)` for the wedge rejection test.
    f: [f64; LAYERS + 1],
    /// `x[i+1] / x[i]`: a uniform in `[0, 1)` below this lands in the
    /// rectangular core of layer `i` and is accepted immediately.
    ratio: [f64; LAYERS],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; LAYERS + 1];
        x[0] = V / pdf(R);
        x[1] = R;
        for i in 2..LAYERS {
            // Each layer has area V: V = x[i-1] · (f(x[i]) − f(x[i-1])).
            x[i] = (-2.0 * (V / x[i - 1] + pdf(x[i - 1])).ln()).sqrt();
        }
        x[LAYERS] = 0.0;
        let mut f = [0.0; LAYERS + 1];
        for i in 0..=LAYERS {
            f[i] = pdf(x[i]);
        }
        let mut ratio = [0.0; LAYERS];
        for i in 0..LAYERS {
            ratio[i] = x[i + 1] / x[i];
        }
        Tables { x, f, ratio }
    })
}

/// Draws one exact N(0, 1) variate.
pub fn standard_normal<Rg: Rng + ?Sized>(rng: &mut Rg) -> f64 {
    let t = tables();
    loop {
        let bits = rng.next_u64();
        // Bits 0–6 pick the layer, bit 7 the sign, bits 11–63 the offset
        // within the layer — disjoint fields of a single RNG word.
        let i = (bits & 0x7F) as usize;
        let sign = if bits & 0x80 == 0 { 1.0 } else { -1.0 };
        let u = (bits >> 11) as f64 * SCALE;
        if u < t.ratio[i] {
            return sign * u * t.x[i];
        }
        if i == 0 {
            // Tail (|z| > R): Marsaglia's exact exponential-rejection step.
            loop {
                let u1 = ((rng.next_u64() >> 11) as f64 * SCALE).max(f64::MIN_POSITIVE);
                let u2 = ((rng.next_u64() >> 11) as f64 * SCALE).max(f64::MIN_POSITIVE);
                let xt = -u1.ln() / R;
                let yt = -u2.ln();
                if yt + yt >= xt * xt {
                    return sign * (R + xt);
                }
            }
        }
        // Wedge between the rectangular core and the density curve.
        let x = u * t.x[i];
        let w = ((rng.next_u64() >> 11) as f64 * SCALE).max(f64::MIN_POSITIVE);
        if t.f[i] + w * (t.f[i + 1] - t.f[i]) < (-0.5 * x * x).exp() {
            return sign * x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tables_are_monotone_and_consistent() {
        let t = tables();
        assert!((t.x[1] - R).abs() < 1e-12);
        assert_eq!(t.x[LAYERS], 0.0);
        for i in 1..LAYERS {
            assert!(t.x[i] > t.x[i + 1], "x must descend at layer {i}");
            assert!(t.ratio[i] < 1.0);
        }
        // The canonical (R, V) pair closes the recurrence at the published
        // last edge, x₁₂₇ ≈ 0.2723.
        assert!(
            (t.x[LAYERS - 1] - 0.2723).abs() < 1e-3,
            "x[127] = {}",
            t.x[LAYERS - 1]
        );
        assert!((t.f[LAYERS] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moments_and_tails_match_the_standard_normal() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 400_000usize;
        let (mut sum, mut sq) = (0.0, 0.0);
        let (mut beyond1, mut beyond2, mut beyond3) = (0usize, 0usize, 0usize);
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sq += z * z;
            if z.abs() > 1.0 {
                beyond1 += 1;
            }
            if z.abs() > 2.0 {
                beyond2 += 1;
            }
            if z.abs() > 3.0 {
                beyond3 += 1;
            }
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        // Two-sided tail masses: 0.3173, 0.0455, 0.0027.
        let frac = |c: usize| c as f64 / n as f64;
        assert!(
            (frac(beyond1) - 0.3173).abs() < 0.01,
            "P(|z|>1) {}",
            frac(beyond1)
        );
        assert!(
            (frac(beyond2) - 0.0455).abs() < 0.005,
            "P(|z|>2) {}",
            frac(beyond2)
        );
        assert!(
            (frac(beyond3) - 0.0027).abs() < 0.002,
            "P(|z|>3) {}",
            frac(beyond3)
        );
    }

    #[test]
    fn stream_is_deterministic_for_a_seed() {
        let draw = || {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..64)
                .map(|_| standard_normal(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
