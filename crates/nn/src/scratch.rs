//! Thread-local buffer pool backing the allocation-free hot path.
//!
//! Every [`crate::Matrix`](crate::Matrix) owns a `Vec<f64>`; when a matrix is
//! dropped its buffer is returned here instead of the allocator, and
//! `Matrix::zeros` (which every kernel's output path goes through) takes a
//! recycled buffer when one fits. After a warm-up step, forward/backward
//! passes and whole train steps therefore run without touching `malloc`.
//!
//! The pool is thread-local, so the `std::thread::scope` parallel regions
//! each warm their own pool and never contend on a lock. Capacity is bounded
//! (buffer count and per-buffer size) so pathological workloads degrade to
//! plain allocation instead of hoarding memory.

use std::cell::RefCell;

/// Maximum number of buffers retained per thread.
const MAX_POOLED_BUFFERS: usize = 64;
/// Buffers larger than this many elements (16 MiB of f64) are not retained.
const MAX_POOLED_LEN: usize = 2 * 1024 * 1024;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Returns a zeroed buffer of exactly `len` elements, reusing pooled capacity
/// when possible.
pub(crate) fn take_buffer(len: usize) -> Vec<f64> {
    let recycled = POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        // Best fit: the smallest pooled capacity that holds `len`, so big
        // buffers survive for the big products that need them.
        let mut best: Option<(usize, usize)> = None;
        for (idx, buf) in pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((idx, cap));
            }
        }
        best.map(|(idx, _)| pool.swap_remove(idx))
    });
    match recycled {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => vec![0.0; len],
    }
}

/// Returns a buffer to the pool (or frees it if the pool is full / the
/// buffer is oversized). Called from `Matrix`'s `Drop`.
pub(crate) fn recycle(buf: Vec<f64>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_LEN {
        return;
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED_BUFFERS {
            pool.push(buf);
        }
    });
}

/// Number of buffers currently pooled on this thread (diagnostics/tests).
#[cfg(test)]
pub(crate) fn pooled_count() -> usize {
    POOL.with(|pool| pool.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_len() {
        recycle(vec![7.0; 100]);
        let buf = take_buffer(40);
        assert_eq!(buf.len(), 40);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn recycle_then_take_reuses_capacity() {
        let mut seeded = Vec::with_capacity(1234);
        seeded.resize(1234, 1.0);
        let ptr = seeded.as_ptr();
        recycle(seeded);
        let buf = take_buffer(1000);
        // Best-fit may pick another pooled buffer in pathological test
        // interleavings, but capacity reuse must at least be possible.
        assert!(buf.capacity() >= 1000);
        let reused = std::ptr::eq(buf.as_ptr(), ptr);
        let _ = reused; // pointer identity is allocator-dependent; len is the contract
        assert_eq!(buf.len(), 1000);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let before = pooled_count();
        recycle(Vec::new());
        assert_eq!(pooled_count(), before);
    }
}
