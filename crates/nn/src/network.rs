//! Multi-layer perceptrons.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::{Activation, Dense, DenseGrads, Matrix, Optimizer};

/// A multi-layer perceptron: a stack of [`Dense`] layers.
///
/// All hidden layers share one activation; the output layer has its own
/// (the paper's models use ReLU hidden layers with linear outputs for the
/// environment model and critic, and a softmax output for the actor).
///
/// # Examples
///
/// ```
/// use nn::{Activation, Matrix, Mlp};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let net = Mlp::new(&[4, 20, 20, 4], Activation::Relu, Activation::Linear, &mut rng);
/// assert_eq!(net.input_dim(), 4);
/// assert_eq!(net.output_dim(), 4);
/// let y = net.forward(&Matrix::zeros(2, 4));
/// assert_eq!((y.rows(), y.cols()), (2, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Per-layer values recorded by [`Mlp::forward_cached`] for the backward
/// pass: `values[0]` is the input batch and `values[i + 1]` is layer `i`'s
/// output.
///
/// Each layer's input/output pair is stored exactly once (a layer's output
/// *is* the next layer's input), replacing the per-layer cache that used to
/// clone both sides of every boundary.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    values: Vec<Matrix>,
}

impl ForwardTrace {
    /// The network output (last recorded value).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (never produced by `forward_cached`).
    #[must_use]
    pub fn output(&self) -> &Matrix {
        self.values.last().expect("non-empty trace")
    }

    /// Layer `i`'s forward input.
    #[must_use]
    pub fn layer_input(&self, i: usize) -> &Matrix {
        &self.values[i]
    }

    /// Layer `i`'s forward output.
    #[must_use]
    pub fn layer_output(&self, i: usize) -> &Matrix {
        &self.values[i + 1]
    }

    /// Number of layers traced.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.values.len() - 1
    }
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `&[4, 20, 20, 4]` for
    /// two 20-neuron hidden layers between a 4-dim input and 4-dim output.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let last = sizes.len() - 2;
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i == last { output } else { hidden };
                Dense::new(w[0], w[1], act, rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Builds an MLP from explicit layers (used by composite architectures
    /// such as the paper's critic, which injects the action at a middle
    /// layer).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive widths do not match.
    #[must_use]
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].fan_out(),
                pair[1].fan_in(),
                "consecutive layer widths must match"
            );
        }
        Mlp { layers }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output dimensionality.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].fan_out()
    }

    /// The stacked layers.
    #[must_use]
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Inference forward pass. Ping-pongs between two pooled buffers, so it
    /// performs no steady-state allocation beyond the returned matrix.
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// Batched inference: one forward pass over a row-batch, one output row
    /// per input row.
    ///
    /// This is the batched unification of [`Mlp::forward_one`]: because
    /// every GEMM path accumulates each output element in ascending-k order
    /// from `0.0`, row `i` of the result is bitwise-equal to
    /// `forward_one(row_i)` regardless of the batch size or kernel dispatch.
    #[must_use]
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        self.forward(x)
    }

    /// Inference forward pass into `out`, reusing its buffer. Intermediate
    /// activations ping-pong between pooled buffers, so a steady-state call
    /// performs no allocation at all.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        let (last, init) = self.layers.split_last().expect("at least one layer");
        if init.is_empty() {
            last.infer_into(x, out);
            return;
        }
        let (first, mids) = init.split_first().expect("non-empty");
        let mut cur = first.infer(x);
        let mut next = Matrix::zeros(0, 0);
        for layer in mids {
            layer.infer_into(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        last.infer_into(&cur, out);
    }

    /// Forward pass for a single sample given as a slice.
    #[must_use]
    pub fn forward_one(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.forward_one_into(x, &mut out);
        out
    }

    /// Forward pass for a single sample, writing the output into `out`
    /// (cleared and refilled). Routes through pooled matrix buffers, so a
    /// steady-state call with a pre-sized `out` performs no allocation.
    pub fn forward_one_into(&self, x: &[f64], out: &mut Vec<f64>) {
        let row = Matrix::row_vector(x);
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(&row, &mut y);
        out.clear();
        out.extend_from_slice(y.row(0));
    }

    /// Forward pass that records the per-layer value chain for
    /// [`Mlp::backward`].
    #[must_use]
    pub fn forward_cached(&self, x: &Matrix) -> ForwardTrace {
        let mut values = Vec::with_capacity(self.layers.len() + 1);
        values.push(x.clone());
        for layer in &self.layers {
            let out = layer.infer(values.last().expect("non-empty"));
            values.push(out);
        }
        ForwardTrace { values }
    }

    /// Backward pass: given the trace from [`Mlp::forward_cached`] and the
    /// loss gradient at the output, returns the gradient at the input and
    /// the per-layer parameter gradients (in layer order).
    ///
    /// # Panics
    ///
    /// Panics if the trace does not match the number of layers.
    #[must_use]
    pub fn backward(&self, trace: &ForwardTrace, d_out: &Matrix) -> (Matrix, Vec<DenseGrads>) {
        assert_eq!(
            trace.num_layers(),
            self.layers.len(),
            "trace length mismatch"
        );
        let mut grads: Vec<Option<DenseGrads>> = (0..self.layers.len()).map(|_| None).collect();
        let mut d = d_out.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (d_in, g) = layer.backward(trace.layer_input(i), trace.layer_output(i), &d);
            grads[i] = Some(g);
            d = d_in;
        }
        (d, grads.into_iter().map(|g| g.expect("filled")).collect())
    }

    /// Gradient of `Σ d_out ⊙ f(x)` with respect to the input `x` —
    /// used by DDPG to compute `∂Q/∂a` through the critic.
    #[must_use]
    pub fn input_gradient(&self, x: &Matrix, d_out: &Matrix) -> Matrix {
        let trace = self.forward_cached(x);
        let (d_in, _) = self.backward(&trace, d_out);
        d_in
    }

    /// Applies parameter gradients with the optimizer, honouring its global
    /// gradient-norm clip if configured. The gradients are scaled in place
    /// when clipping engages (they are consumed by this call).
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the number of layers.
    pub fn apply_gradients<O: Optimizer>(&mut self, grads: &mut [DenseGrads], opt: &mut O) {
        assert_eq!(grads.len(), self.layers.len(), "gradient count mismatch");
        if let Some(clip) = opt.clip_norm() {
            let norm_sq: f64 = grads
                .iter()
                .map(|g| {
                    g.d_weights.as_slice().iter().map(|&v| v * v).sum::<f64>()
                        + g.d_bias.iter().map(|&v| v * v).sum::<f64>()
                })
                .sum();
            let norm = norm_sq.sqrt();
            if norm > clip {
                let scale = clip / norm;
                for g in grads.iter_mut() {
                    g.scale_in_place(scale);
                }
            }
        }
        for (i, (layer, g)) in self.layers.iter_mut().zip(grads.iter()).enumerate() {
            let [w, b] = layer.params_mut();
            opt.update(2 * i, w, g.d_weights.as_slice());
            opt.update(2 * i + 1, b, &g.d_bias);
        }
    }

    /// One step of mean-squared-error training on a batch; returns the MSE
    /// before the update.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` row counts differ or `y.cols()` differs from
    /// the output dimension.
    pub fn train_mse<O: Optimizer>(&mut self, x: &Matrix, y: &Matrix, opt: &mut O) -> f64 {
        assert_eq!(x.rows(), y.rows(), "sample count mismatch");
        assert_eq!(y.cols(), self.output_dim(), "target width mismatch");
        let timer = crate::telemetry::enabled().then(std::time::Instant::now);
        let trace = self.forward_cached(x);
        let mut d_out = trace.output() - y;
        let n = (x.rows() * y.cols()) as f64;
        let loss = d_out.as_slice().iter().map(|&v| v * v).sum::<f64>() / n;
        // d(MSE)/d(pred) = 2 (pred − y) / n
        d_out.scale_in_place(2.0 / n);
        let (_, mut grads) = self.backward(&trace, &d_out);
        self.apply_gradients(&mut grads, opt);
        if let Some(start) = timer {
            let elapsed = start.elapsed().as_secs_f64();
            crate::telemetry::with(|t| {
                t.counter("nn.train_batches", 1);
                t.observe("nn.train_batch_secs", elapsed);
                t.gauge("nn.last_batch_mse", loss);
            });
        }
        loss
    }

    /// Mean-squared error of predictions on a batch (no update).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent (see [`Mlp::train_mse`]).
    #[must_use]
    pub fn mse(&self, x: &Matrix, y: &Matrix) -> f64 {
        assert_eq!(x.rows(), y.rows(), "sample count mismatch");
        let pred = self.forward(x);
        let diff = &pred - y;
        diff.as_slice().iter().map(|&v| v * v).sum::<f64>() / (x.rows() * y.cols()) as f64
    }

    /// Adds i.i.d. Gaussian noise with standard deviation `sigma` to every
    /// parameter — the perturbation primitive behind parameter-space
    /// exploration (Plappert et al., used by the paper in §IV-D).
    pub fn add_parameter_noise<R: Rng + ?Sized>(&mut self, sigma: f64, rng: &mut R) {
        if sigma <= 0.0 {
            return;
        }
        let normal = Normal::new(0.0, sigma).expect("valid sigma");
        for layer in &mut self.layers {
            for buf in layer.params_mut() {
                for p in buf.iter_mut() {
                    *p += normal.sample(rng);
                }
            }
        }
    }

    /// Like [`Mlp::add_parameter_noise`], but draws the Gaussian variates
    /// with the [ziggurat sampler](crate::ziggurat::standard_normal) — one
    /// RNG word, one table lookup, and one compare per variate on the
    /// common path instead of Box–Muller's `ln`/`sqrt`/`cos`, about 5×
    /// cheaper per parameter on scalar hardware. The hot path of the
    /// distributed rollout workers, which re-perturb a frozen policy at
    /// every wave boundary.
    ///
    /// The variate *stream* differs from [`Mlp::add_parameter_noise`] for
    /// the same RNG state — that one is pinned by checkpoint-resume
    /// compatibility (resumed runs must replay the exact historical draw
    /// pattern), which is why this is a separate entry point rather than a
    /// drop-in replacement.
    pub fn add_parameter_noise_fast<R: Rng + ?Sized>(&mut self, sigma: f64, rng: &mut R) {
        if sigma <= 0.0 {
            return;
        }
        for layer in &mut self.layers {
            for buf in layer.params_mut() {
                for p in buf.iter_mut() {
                    *p += sigma * crate::ziggurat::standard_normal(rng);
                }
            }
        }
    }

    /// Polyak soft update: `θ ← τ·θ_src + (1 − τ)·θ` (DDPG target networks).
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn soft_update_from(&mut self, src: &Mlp, tau: f64) {
        assert_eq!(self.layers.len(), src.layers.len(), "architecture mismatch");
        for (dst, s) in self.layers.iter_mut().zip(&src.layers) {
            let src_params = s.params();
            for (dbuf, sbuf) in dst.params_mut().into_iter().zip(src_params) {
                assert_eq!(dbuf.len(), sbuf.len(), "architecture mismatch");
                for (d, &v) in dbuf.iter_mut().zip(sbuf) {
                    *d = tau * v + (1.0 - tau) * *d;
                }
            }
        }
    }

    /// Copies all parameters from `src` (τ = 1 soft update).
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn copy_params_from(&mut self, src: &Mlp) {
        self.soft_update_from(src, 1.0);
    }

    /// Flattens all parameters into one vector (diagnostics and distance
    /// computations).
    #[must_use]
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            for buf in layer.params() {
                out.extend_from_slice(buf);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn learns_linear_function() {
        let mut net = Mlp::new(
            &[2, 16, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(0),
        );
        let mut opt = crate::Adam::new(5e-3);
        let mut r = rng(1);
        for _ in 0..800 {
            let rows: Vec<Vec<f64>> = (0..16)
                .map(|_| vec![r.gen_range(-1.0..1.0), r.gen_range(-1.0..1.0)])
                .collect();
            let x = Matrix::from_rows(&rows.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
            let y_rows: Vec<Vec<f64>> =
                rows.iter().map(|v| vec![3.0 * v[0] - 2.0 * v[1]]).collect();
            let y = Matrix::from_rows(&y_rows.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
            net.train_mse(&x, &y, &mut opt);
        }
        let test = Matrix::from_rows(&[&[0.5, -0.5]]);
        let pred = net.forward(&test).get(0, 0);
        assert!((pred - 2.5).abs() < 0.2, "pred = {pred}");
    }

    #[test]
    fn forward_cached_matches_forward() {
        let net = Mlp::new(
            &[3, 8, 8, 2],
            Activation::Relu,
            Activation::Linear,
            &mut rng(20),
        );
        let x = Matrix::from_rows(&[&[0.3, -0.7, 0.1], &[1.0, 2.0, -0.5]]);
        let trace = net.forward_cached(&x);
        assert_eq!(trace.num_layers(), 3);
        assert_eq!(trace.layer_input(0), &x);
        assert_eq!(trace.output(), &net.forward(&x));
        // Consecutive trace entries share storage of the chain:
        // layer i's output is layer i+1's input.
        for i in 0..trace.num_layers() - 1 {
            assert_eq!(trace.layer_output(i), trace.layer_input(i + 1));
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_diff() {
        let net = Mlp::new(
            &[3, 8, 2],
            Activation::Tanh,
            Activation::Linear,
            &mut rng(2),
        );
        let x = Matrix::from_rows(&[&[0.3, -0.7, 0.1]]);
        let d_out = Matrix::from_rows(&[&[1.0, -0.5]]);
        let analytic = net.input_gradient(&x, &d_out);
        let eps = 1e-6;
        for c in 0..3 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            xm.set(0, c, x.get(0, c) - eps);
            let f = |m: &Matrix| -> f64 {
                net.forward(m)
                    .row(0)
                    .iter()
                    .zip(d_out.row(0))
                    .map(|(&a, &b)| a * b)
                    .sum()
            };
            let numeric = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((numeric - analytic.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn soft_update_converges_to_source() {
        let mut a = Mlp::new(
            &[2, 4, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(3),
        );
        let b = Mlp::new(
            &[2, 4, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(4),
        );
        for _ in 0..200 {
            a.soft_update_from(&b, 0.1);
        }
        let diff: f64 = a
            .flat_params()
            .iter()
            .zip(b.flat_params())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-6);
    }

    #[test]
    fn copy_params_is_exact() {
        let mut a = Mlp::new(
            &[2, 4, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(5),
        );
        let b = Mlp::new(
            &[2, 4, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(6),
        );
        a.copy_params_from(&b);
        assert_eq!(a.flat_params(), b.flat_params());
    }

    #[test]
    fn parameter_noise_perturbs_all_layers() {
        let clean = Mlp::new(
            &[2, 4, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(7),
        );
        let mut noisy = clean.clone();
        noisy.add_parameter_noise(0.1, &mut rng(8));
        let changed = clean
            .flat_params()
            .iter()
            .zip(noisy.flat_params())
            .filter(|(a, b)| (*a - *b).abs() > 1e-12)
            .count();
        assert_eq!(changed, clean.num_params());
    }

    #[test]
    fn zero_sigma_noise_is_identity() {
        let clean = Mlp::new(
            &[2, 4, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(9),
        );
        let mut noisy = clean.clone();
        noisy.add_parameter_noise(0.0, &mut rng(10));
        assert_eq!(clean.flat_params(), noisy.flat_params());
    }

    #[test]
    fn gradient_clipping_bounds_update() {
        let mut net = Mlp::new(
            &[1, 1],
            Activation::Linear,
            Activation::Linear,
            &mut rng(11),
        );
        let before = net.flat_params();
        let mut opt = crate::Sgd::new(1.0).with_clip_norm(1e-3);
        // Enormous targets produce enormous gradients; the clip bounds them.
        let x = Matrix::row_vector(&[1.0]);
        let y = Matrix::row_vector(&[1e9]);
        let _ = net.train_mse(&x, &y, &mut opt);
        let after = net.flat_params();
        let step: f64 = before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(step <= 1.1e-3, "step = {step}");
    }

    #[test]
    fn mse_decreases_during_training() {
        let mut net = Mlp::new(
            &[1, 8, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(12),
        );
        let x = Matrix::from_rows(&[&[-1.0], &[0.0], &[1.0], &[2.0]]);
        let y = Matrix::from_rows(&[&[-2.0], &[0.0], &[2.0], &[4.0]]);
        let mut opt = crate::Adam::new(1e-2);
        let before = net.mse(&x, &y);
        for _ in 0..300 {
            net.train_mse(&x, &y, &mut opt);
        }
        let after = net.mse(&x, &y);
        assert!(after < before * 0.1, "before {before}, after {after}");
    }

    #[test]
    fn from_layers_validates_widths() {
        let l1 = Dense::new(2, 4, Activation::Relu, &mut rng(13));
        let l2 = Dense::new(4, 1, Activation::Linear, &mut rng(14));
        let net = Mlp::from_layers(vec![l1, l2]);
        assert_eq!(net.input_dim(), 2);
        assert_eq!(net.output_dim(), 1);
    }

    #[test]
    #[should_panic(expected = "consecutive layer widths must match")]
    fn from_layers_rejects_mismatch() {
        let l1 = Dense::new(2, 4, Activation::Relu, &mut rng(15));
        let l2 = Dense::new(3, 1, Activation::Linear, &mut rng(16));
        let _ = Mlp::from_layers(vec![l1, l2]);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let net = Mlp::new(
            &[3, 10, 2],
            Activation::Relu,
            Activation::Linear,
            &mut rng(17),
        );
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3]]);
        // serde_json float parsing may differ in the last ulp.
        for (a, b) in net
            .forward(&x)
            .as_slice()
            .iter()
            .zip(back.forward(&x).as_slice())
        {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
