//! Crate-global telemetry hook for the compute kernels.
//!
//! The network types (`Mlp`, `Dense`) derive `PartialEq`/`Serialize` and are
//! snapshotted wholesale by checkpointing code, so they cannot carry a
//! recorder handle themselves. Instead the crate keeps one process-global
//! [`Telemetry`] slot; binaries that want kernel-level observability install
//! a handle with [`set_global`] and the hot paths check a single relaxed
//! atomic before doing any recording work.
//!
//! Everything recorded here (GEMM call counts and timings, batch-training
//! timings) is observability-only: the kernels never read telemetry state to
//! make decisions, so results are bit-identical with or without a recorder.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

use telemetry::Telemetry;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SLOT: RwLock<Option<Telemetry>> = RwLock::new(None);

/// Installs `telemetry` as the crate-global recorder handle. Passing a
/// disabled handle (or calling [`clear_global`]) turns kernel recording off.
pub fn set_global(telemetry: Telemetry) {
    let enabled = telemetry.is_enabled();
    if let Ok(mut slot) = SLOT.write() {
        *slot = enabled.then_some(telemetry);
    }
    ENABLED.store(enabled, Ordering::Release);
}

/// Removes any installed global handle.
pub fn clear_global() {
    set_global(Telemetry::noop());
}

/// Runs `f` with the installed handle, if any. One relaxed atomic load on
/// the disabled path.
#[inline]
pub(crate) fn with<F: FnOnce(&Telemetry)>(f: F) {
    if ENABLED.load(Ordering::Relaxed) {
        if let Ok(slot) = SLOT.read() {
            if let Some(t) = slot.as_ref() {
                f(t);
            }
        }
    }
}

/// Whether a global handle is installed (for guarding expensive payloads).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
