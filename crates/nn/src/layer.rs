//! Fully connected layers.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::{Activation, Matrix};

/// A fully connected layer: `y = act(x · Wᵀ + b)`.
///
/// `W` has shape `(fan_out, fan_in)`; inputs are row-major batches of shape
/// `(batch, fan_in)`.
///
/// Weights are initialised with He/Xavier-style scaling chosen by the
/// activation (He for ReLU, Xavier otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
}

/// Forward-pass values cached for the backward pass.
#[derive(Debug, Clone)]
pub struct DenseCache {
    input: Matrix,
    output: Matrix,
}

/// Gradients of a layer's parameters.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// Gradient of the loss with respect to the weight matrix.
    pub d_weights: Matrix,
    /// Gradient of the loss with respect to the bias.
    pub d_bias: Vec<f64>,
}

impl Dense {
    /// Creates a layer with `fan_in` inputs and `fan_out` outputs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(fan_in > 0 && fan_out > 0, "layer dimensions must be positive");
        let std = match activation {
            // He initialisation suits ReLU; Xavier everything else.
            Activation::Relu => (2.0 / fan_in as f64).sqrt(),
            _ => (1.0 / fan_in as f64).sqrt(),
        };
        let normal = Normal::new(0.0, std).expect("valid std");
        let data: Vec<f64> = (0..fan_in * fan_out).map(|_| normal.sample(rng)).collect();
        Dense {
            weights: Matrix::from_vec(fan_out, fan_in, data),
            bias: vec![0.0; fan_out],
            activation,
        }
    }

    /// Input width.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    #[must_use]
    pub fn fan_out(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.weights.as_slice().len() + self.bias.len()
    }

    /// Forward pass over a batch, returning the output and the cache needed
    /// by [`Dense::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.fan_in()`.
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> (Matrix, DenseCache) {
        assert_eq!(x.cols(), self.fan_in(), "input width mismatch");
        let z = x.matmul_transpose(&self.weights).add_row_broadcast(&self.bias);
        let y = self.activation.forward(&z);
        let cache = DenseCache {
            input: x.clone(),
            output: y.clone(),
        };
        (y, cache)
    }

    /// Forward pass without caching (inference).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.fan_in()`.
    #[must_use]
    pub fn infer(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.fan_in(), "input width mismatch");
        let z = x.matmul_transpose(&self.weights).add_row_broadcast(&self.bias);
        self.activation.forward(&z)
    }

    /// Backward pass: given the cache and `d_out = ∂L/∂y`, returns
    /// `(∂L/∂x, parameter gradients)`.
    #[must_use]
    pub fn backward(&self, cache: &DenseCache, d_out: &Matrix) -> (Matrix, DenseGrads) {
        let d_z = self.activation.backward(&cache.output, d_out);
        // z = x · Wᵀ + b  ⇒  dW = d_zᵀ · x, db = column sums, dx = d_z · W.
        let d_weights = d_z.transpose_matmul(&cache.input);
        let d_bias = d_z.column_sums();
        let d_input = d_z.matmul(&self.weights);
        (
            d_input,
            DenseGrads { d_weights, d_bias },
        )
    }

    /// Immutable views of the parameter buffers: `[weights, bias]`.
    #[must_use]
    pub fn params(&self) -> [&[f64]; 2] {
        [self.weights.as_slice(), &self.bias]
    }

    /// Mutable views of the parameter buffers: `[weights, bias]`.
    pub fn params_mut(&mut self) -> [&mut [f64]; 2] {
        [self.weights.as_mut_slice(), &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shapes() {
        let layer = Dense::new(3, 5, Activation::Relu, &mut rng());
        let x = Matrix::zeros(4, 3);
        let (y, _) = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 5));
    }

    #[test]
    fn infer_matches_forward() {
        let layer = Dense::new(3, 2, Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[&[0.1, -0.4, 0.7]]);
        let (y, _) = layer.forward(&x);
        assert_eq!(layer.infer(&x), y);
    }

    /// Finite-difference check of every gradient a Dense layer produces.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[-0.1, 0.9, 0.2]]);
        let d_out = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]]);

        let (_, cache) = layer.forward(&x);
        let (d_input, grads) = layer.backward(&cache, &d_out);

        let loss = |l: &Dense, x: &Matrix| -> f64 {
            let y = l.infer(x);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(&a, &b)| a * b)
                .sum()
        };
        let eps = 1e-6;

        // Weight gradients.
        for i in 0..layer.weights.as_slice().len() {
            let orig = layer.weights.as_slice()[i];
            layer.weights.as_mut_slice()[i] = orig + eps;
            let lp = loss(&layer, &x);
            layer.weights.as_mut_slice()[i] = orig - eps;
            let lm = loss(&layer, &x);
            layer.weights.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.d_weights.as_slice()[i];
            assert!((numeric - analytic).abs() < 1e-5, "dW[{i}]");
        }

        // Bias gradients.
        for i in 0..layer.bias.len() {
            let orig = layer.bias[i];
            layer.bias[i] = orig + eps;
            let lp = loss(&layer, &x);
            layer.bias[i] = orig - eps;
            let lm = loss(&layer, &x);
            layer.bias[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grads.d_bias[i]).abs() < 1e-5, "db[{i}]");
        }

        // Input gradients.
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                xm.set(r, c, x.get(r, c) - eps);
                let numeric = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
                assert!((numeric - d_input.get(r, c)).abs() < 1e-5, "dx[{r},{c}]");
            }
        }
    }

    #[test]
    fn he_init_scales_with_fan_in() {
        let wide = Dense::new(1000, 10, Activation::Relu, &mut rng());
        let narrow = Dense::new(10, 10, Activation::Relu, &mut rng());
        let wide_norm = wide.weights.frobenius_norm() / (wide.weights.as_slice().len() as f64).sqrt();
        let narrow_norm =
            narrow.weights.frobenius_norm() / (narrow.weights.as_slice().len() as f64).sqrt();
        assert!(wide_norm < narrow_norm);
    }

    #[test]
    fn params_expose_all_buffers() {
        let layer = Dense::new(4, 3, Activation::Linear, &mut rng());
        let [w, b] = layer.params();
        assert_eq!(w.len(), 12);
        assert_eq!(b.len(), 3);
        assert_eq!(layer.num_params(), 15);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let layer = Dense::new(3, 2, Activation::Linear, &mut rng());
        let _ = layer.infer(&Matrix::zeros(1, 4));
    }
}
