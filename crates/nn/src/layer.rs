//! Fully connected layers.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::{Activation, Matrix};

/// A fully connected layer: `y = act(x · Wᵀ + b)`.
///
/// `W` has shape `(fan_out, fan_in)`; inputs are row-major batches of shape
/// `(batch, fan_in)`.
///
/// Weights are initialised with He/Xavier-style scaling chosen by the
/// activation (He for ReLU, Xavier otherwise).
///
/// The forward pass runs as a single fused kernel: the tiled `x · Wᵀ`
/// product applies the bias broadcast and the activation to each output row
/// while it is still cache-hot, and [`Dense::infer_into`] reuses the
/// caller's output buffer, so a steady-state forward pass does not allocate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
}

/// Gradients of a layer's parameters.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// Gradient of the loss with respect to the weight matrix.
    pub d_weights: Matrix,
    /// Gradient of the loss with respect to the bias.
    pub d_bias: Vec<f64>,
}

impl DenseGrads {
    /// Accumulates another shard's gradients: `self += other`.
    ///
    /// Used to reduce per-shard minibatch gradients in a fixed order so
    /// threaded training stays deterministic.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &DenseGrads) {
        self.d_weights.add_in_place(&other.d_weights);
        assert_eq!(
            self.d_bias.len(),
            other.d_bias.len(),
            "bias length mismatch"
        );
        for (a, &b) in self.d_bias.iter_mut().zip(&other.d_bias) {
            *a += b;
        }
    }

    /// Scales all gradients in place.
    pub fn scale_in_place(&mut self, s: f64) {
        self.d_weights.scale_in_place(s);
        for b in &mut self.d_bias {
            *b *= s;
        }
    }
}

impl Dense {
    /// Creates a layer with `fan_in` inputs and `fan_out` outputs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            fan_in > 0 && fan_out > 0,
            "layer dimensions must be positive"
        );
        let std = match activation {
            // He initialisation suits ReLU; Xavier everything else.
            Activation::Relu => (2.0 / fan_in as f64).sqrt(),
            _ => (1.0 / fan_in as f64).sqrt(),
        };
        let normal = Normal::new(0.0, std).expect("valid std");
        let data: Vec<f64> = (0..fan_in * fan_out).map(|_| normal.sample(rng)).collect();
        Dense {
            weights: Matrix::from_vec(fan_out, fan_in, data),
            bias: vec![0.0; fan_out],
            activation,
        }
    }

    /// Input width.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    #[must_use]
    pub fn fan_out(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix, one row per output unit (`fan_out × fan_in`).
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector, one entry per output unit.
    #[must_use]
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.weights.as_slice().len() + self.bias.len()
    }

    /// Forward pass over a batch (fused product + bias + activation).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.fan_in()`.
    #[must_use]
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.infer_into(x, &mut out);
        out
    }

    /// Forward pass into `out`, reusing its buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.fan_in()`.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.fan_in(), "input width mismatch");
        let bias = &self.bias;
        let activation = self.activation;
        x.matmul_transpose_fused_into(&self.weights, out, &|row: &mut [f64]| {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
            activation.apply_row(row);
        });
    }

    /// Backward pass: given the layer's forward `input` and `output` and
    /// `d_out = ∂L/∂y`, returns `(∂L/∂x, parameter gradients)`.
    ///
    /// The caller keeps the forward values (see `Mlp::forward_cached`'s
    /// trace) instead of this layer cloning them into a cache; the output
    /// alone is enough to invert every activation's derivative, and the
    /// pre-activations are never needed.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    #[must_use]
    pub fn backward(
        &self,
        input: &Matrix,
        output: &Matrix,
        d_out: &Matrix,
    ) -> (Matrix, DenseGrads) {
        let mut d_z = d_out.clone();
        self.activation.backward_in_place(output, &mut d_z);
        // z = x · Wᵀ + b  ⇒  dW = d_zᵀ · x, db = column sums, dx = d_z · W.
        let d_weights = d_z.transpose_matmul(input);
        let d_bias = d_z.column_sums();
        let d_input = d_z.matmul(&self.weights);
        (d_input, DenseGrads { d_weights, d_bias })
    }

    /// Immutable views of the parameter buffers: `[weights, bias]`.
    #[must_use]
    pub fn params(&self) -> [&[f64]; 2] {
        [self.weights.as_slice(), &self.bias]
    }

    /// Mutable views of the parameter buffers: `[weights, bias]`.
    pub fn params_mut(&mut self) -> [&mut [f64]; 2] {
        [self.weights.as_mut_slice(), &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shapes() {
        let layer = Dense::new(3, 5, Activation::Relu, &mut rng());
        let x = Matrix::zeros(4, 3);
        let y = layer.infer(&x);
        assert_eq!((y.rows(), y.cols()), (4, 5));
    }

    #[test]
    fn fused_forward_matches_unfused_reference() {
        let layer = Dense::new(5, 4, Activation::Tanh, &mut rng());
        // Batch sizes on both sides of the small-matrix threshold.
        for batch in [1usize, 2, 4, 9, 33] {
            let mut x = Matrix::zeros(batch, 5);
            for r in 0..batch {
                for c in 0..5 {
                    x.set(r, c, ((r * 5 + c) as f64).sin());
                }
            }
            let fused = layer.infer(&x);
            let w = Matrix::from_vec(4, 5, layer.params()[0].to_vec());
            let unfused = layer.activation().forward(
                &x.naive_matmul_transpose(&w)
                    .add_row_broadcast(layer.params()[1]),
            );
            assert_eq!(fused, unfused, "batch {batch}");
        }
    }

    #[test]
    fn infer_into_reuses_buffer() {
        let layer = Dense::new(3, 2, Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[&[0.1, -0.4, 0.7]]);
        let mut out = Matrix::zeros(7, 7);
        layer.infer_into(&x, &mut out);
        assert_eq!(out, layer.infer(&x));
    }

    /// Finite-difference check of every gradient a Dense layer produces.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[-0.1, 0.9, 0.2]]);
        let d_out = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]]);

        let y = layer.infer(&x);
        let (d_input, grads) = layer.backward(&x, &y, &d_out);

        let loss = |l: &Dense, x: &Matrix| -> f64 {
            let y = l.infer(x);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(&a, &b)| a * b)
                .sum()
        };
        let eps = 1e-6;

        // Weight gradients.
        for i in 0..layer.weights.as_slice().len() {
            let orig = layer.weights.as_slice()[i];
            layer.weights.as_mut_slice()[i] = orig + eps;
            let lp = loss(&layer, &x);
            layer.weights.as_mut_slice()[i] = orig - eps;
            let lm = loss(&layer, &x);
            layer.weights.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.d_weights.as_slice()[i];
            assert!((numeric - analytic).abs() < 1e-5, "dW[{i}]");
        }

        // Bias gradients.
        for i in 0..layer.bias.len() {
            let orig = layer.bias[i];
            layer.bias[i] = orig + eps;
            let lp = loss(&layer, &x);
            layer.bias[i] = orig - eps;
            let lm = loss(&layer, &x);
            layer.bias[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grads.d_bias[i]).abs() < 1e-5, "db[{i}]");
        }

        // Input gradients.
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                xm.set(r, c, x.get(r, c) - eps);
                let numeric = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
                assert!((numeric - d_input.get(r, c)).abs() < 1e-5, "dx[{r},{c}]");
            }
        }
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let layer = Dense::new(2, 2, Activation::Linear, &mut rng());
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let y = layer.infer(&x);
        let d_out = Matrix::from_rows(&[&[1.0, -1.0]]);
        let (_, mut g1) = layer.backward(&x, &y, &d_out);
        let (_, g2) = layer.backward(&x, &y, &d_out);
        g1.accumulate(&g2);
        g1.scale_in_place(0.5);
        let (_, g_ref) = layer.backward(&x, &y, &d_out);
        assert_eq!(g1.d_weights, g_ref.d_weights);
        assert_eq!(g1.d_bias, g_ref.d_bias);
    }

    #[test]
    fn he_init_scales_with_fan_in() {
        let wide = Dense::new(1000, 10, Activation::Relu, &mut rng());
        let narrow = Dense::new(10, 10, Activation::Relu, &mut rng());
        let wide_norm =
            wide.weights.frobenius_norm() / (wide.weights.as_slice().len() as f64).sqrt();
        let narrow_norm =
            narrow.weights.frobenius_norm() / (narrow.weights.as_slice().len() as f64).sqrt();
        assert!(wide_norm < narrow_norm);
    }

    #[test]
    fn params_expose_all_buffers() {
        let layer = Dense::new(4, 3, Activation::Linear, &mut rng());
        let [w, b] = layer.params();
        assert_eq!(w.len(), 12);
        assert_eq!(b.len(), 3);
        assert_eq!(layer.num_params(), 15);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let layer = Dense::new(3, 2, Activation::Linear, &mut rng());
        let _ = layer.infer(&Matrix::zeros(1, 4));
    }
}
