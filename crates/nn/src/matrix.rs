//! Row-major dense matrices over `f64`.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64`.
///
/// Rows are samples, columns are features — the layout every layer in this
/// crate assumes.
///
/// # Examples
///
/// ```
/// use nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `1 × n` matrix holding one sample.
    #[must_use]
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // memory in both `rhs` and `out`.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    #[must_use]
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row counts must agree");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let left = &self.data[r * self.cols..(r + 1) * self.cols];
            let right = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (i, &a) in left.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(right) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    #[must_use]
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "column counts must agree");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let left = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let right = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in left.iter().zip(right) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// The transposed matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Scales every element by `s`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `bias` (length = cols) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        out
    }

    /// Column sums as a vector of length `cols`.
    #[must_use]
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all elements; zero for an empty matrix.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// The Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Stacks matrices vertically (same column count).
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched column counts.
    #[must_use]
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "nothing to stack");
        let cols = parts[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "column mismatch in vstack");
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates matrices horizontally (same row count).
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched row counts.
    #[must_use]
    pub fn hconcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "nothing to concatenate");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "row mismatch in hconcat");
                out.data[r * cols + offset..r * cols + offset + p.cols]
                    .copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Returns the sub-matrix of columns `[start, start + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    #[must_use]
    pub fn columns(&self, start: usize, width: usize) -> Matrix {
        assert!(start + width <= self.cols, "column range out of bounds");
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + width]);
        }
        out
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_matmul_equals_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_transpose_equals_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.5]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn hconcat_and_columns_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let joined = Matrix::hconcat(&[&a, &b]);
        assert_eq!(joined.cols(), 3);
        assert_eq!(joined.columns(0, 2), a);
        assert_eq!(joined.columns(2, 1), b);
    }

    #[test]
    fn vstack_stacks_rows() {
        let a = Matrix::row_vector(&[1.0, 2.0]);
        let b = Matrix::row_vector(&[3.0, 4.0]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn broadcast_and_column_sums() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let biased = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(biased, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
    }

    #[test]
    fn norms_and_means() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimensions must agree")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn bad_from_vec_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
